// Async session server: epoll front end over a worker pool.
//
// Architecture — a connection is a state machine, not a thread:
//
//   epoll thread (exactly one)           worker pool (N threads)
//   ------------------------------       ---------------------------
//   accept / refuse                      pop conn from run queue
//   read sockets, parse frames     --->  execute queued ops via the
//   into per-conn op queues              non-blocking Session step API
//   flush per-conn write buffers   <---  append response frames,
//   parked-session deadline ticks        nudge the epoll thread
//
// Per-session state machine: idle -> in-txn -> awaiting-lock /
// committing -> in-txn -> idle. A session whose step returns
// kWouldBlock is PARKED: the worker registers a wake callback on the
// wait token (a lock-table release or WAL fsync completion requeues the
// connection) and moves on to another session. The epoll thread's
// deadline tick requeues parked sessions with no token (DEFERRABLE
// waits) and backstops lost tokens — a wake is only permission to
// retry, so a spurious requeue costs one re-poll.
//
// Scheduling invariant: at most one worker executes a given session at
// a time (Session is not internally synchronized). Conn::sched is a
// 4-state atomic (idle/queued/running/running-requeue): Enqueue CASes
// idle->queued and pushes; a wake hitting a RUNNING conn sets
// running-requeue and the worker loops the conn back itself.
//
// Backpressure — responses are never dropped:
//  - ops: more than `backpressure_ops` parsed-but-unexecuted ops stops
//    the epoll thread from reading that socket (EPOLLIN disarmed) until
//    the worker drains half the queue;
//  - bytes: a write buffer above `write_queue_bytes` (slow reader)
//    pauses op EXECUTION for that session; the epoll thread resumes it
//    once the buffer half-drains.
//
// Lock order (see README table): run-queue mutex and per-conn mutexes
// are LEAVES — no engine lock is ever taken while holding one, and
// wait-token callbacks (which take the run-queue mutex) are always
// invoked with every engine mutex released.
//
// Shutdown: Stop() stops intake, joins workers, joins the epoll
// thread, then single-threadedly aborts every in-flight transaction
// (parked sessions included) and closes the sockets — all before the
// Database may be destroyed.
//
// Degradation (see README "Degradation & retry"):
//  - over max_sessions, accept answers with a kOverloaded frame
//    carrying a retry-after hint (ms) and closes — a refusal is a
//    protocol message, not a silent RST;
//  - sessions idle inside a transaction past idle_in_txn_timeout_us are
//    sent a best-effort error frame, aborted, and torn down, so a
//    vanished client cannot pin OldestActiveSnapshot (off by default);
//  - every event mask carries EPOLLRDHUP, so a half-open connection is
//    caught even while read backpressure has EPOLLIN disarmed.
//
// Chaos failpoints (util/failpoint.h), all counted in
// Stats::faults_injected: "net_accept_refuse" (forced overload refusal),
// "net_read_err" (inbound read becomes a hangup), "net_write_short"
// (frame write truncated to 1 byte this pass — retried, never dropped),
// "net_flush_stall" (flush deferred one loop), "net_drop_before_exec" /
// "net_drop_parked" / "net_drop_after_commit" (connection killed before
// an op runs / instead of parking / after a commit succeeded but before
// its response is flushed — the ack-loss window), "net_wake_delay"
// (token wake swallowed; the deadline tick must recover the session).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "db/session.h"
#include "db/transaction_handle.h"
#include "net/wire.h"
#include "util/status.h"

namespace pgssi::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read the bound port via port()
  // 0 = take the default from EngineConfig (net_workers etc.).
  uint32_t workers = 0;
  uint32_t max_sessions = 0;
  uint32_t backpressure_ops = 0;
  uint32_t write_queue_bytes = 0;
};

class Server {
 public:
  /// `db` is borrowed and must outlive the server (destroy order:
  /// server first — its Stop() drains the sessions the Database's
  /// destruction contract requires gone).
  Server(Database* db, ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  Status Start();
  /// Idempotent. Safe with live parked sessions: their transactions are
  /// aborted during teardown.
  void Stop();

  /// Bound listen port (after Start).
  uint16_t port() const { return port_; }

  struct Stats {
    uint64_t accepted = 0;
    uint64_t refused = 0;        // over max_sessions (kOverloaded frame sent)
    uint64_t ops_executed = 0;   // completed ops (responses written)
    uint64_t would_blocks = 0;   // parks (lock waits + commit gate + def)
    uint64_t read_pauses = 0;    // op-queue backpressure engagements
    uint64_t write_pauses = 0;   // slow-reader backpressure engagements
    uint64_t shutdown_aborts = 0;  // in-flight txns aborted by Stop
    uint64_t idle_reaped = 0;    // idle-in-txn sessions torn down by sweep
    uint64_t rdhup_closes = 0;   // half-open conns caught by EPOLLRDHUP
                                 // while EPOLLIN was disarmed (backpressure)
    uint64_t faults_injected = 0;  // net_* failpoint fires inside the server
  };
  Stats stats() const;
  size_t active_sessions() const;

 private:
  struct Conn;
  using ConnPtr = std::shared_ptr<Conn>;

  void EpollLoop();
  void WorkerLoop();
  void Enqueue(const ConnPtr& c);
  void RunConn(const ConnPtr& c);
  // Executes one parsed request; returns false when the op would-block
  // (parked; do not pop it).
  bool ExecuteOp(const ConnPtr& c, const Request& req);
  void AcceptPending();
  void HandleReadable(const ConnPtr& c);
  void FlushWrites(const ConnPtr& c);
  void CloseConn(const ConnPtr& c);  // epoll thread only
  void NudgeEpoll(const ConnPtr& c);
  void TickParked();
  // idle_in_txn_timeout_us sweep: tears down connections that hold an
  // open transaction but have gone silent (epoll thread only).
  void ReapIdleInTxn(uint64_t now);
  // Failpoint wrapper that also counts the fire in faults_injected.
  bool NetFault(const char* name);

  Database* db_;
  ServerOptions opts_;
  uint32_t backpressure_ops_ = 0;
  uint32_t write_queue_bytes_ = 0;
  uint64_t park_interval_us_ = 0;
  uint64_t idle_txn_timeout_us_ = 0;
  uint32_t overload_retry_after_ms_ = 0;
  uint64_t next_idle_sweep_us_ = 0;  // epoll thread only

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd mailbox: workers -> epoll thread
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::thread epoll_thread_;
  std::vector<std::thread> workers_;

  // Run queue (leaf mutex; wait-token callbacks push here).
  std::mutex run_mu_;
  std::condition_variable run_cv_;
  std::deque<ConnPtr> run_queue_;

  // Live connections, keyed by fd — O(1) event dispatch under
  // connection storms. Epoll thread only (no mutex) while running;
  // Stop() touches it only after the epoll thread is joined.
  std::unordered_map<int, ConnPtr> conns_;

  // Attention list: conns whose write buffers the epoll thread should
  // flush / whose EPOLLIN wants re-arming (leaf mutex).
  std::mutex attn_mu_;
  std::vector<std::weak_ptr<Conn>> attn_;

  // Parked sessions awaiting their deadline tick (leaf mutex).
  std::mutex parked_mu_;
  std::vector<std::weak_ptr<Conn>> parked_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> refused_{0};
  std::atomic<uint64_t> ops_executed_{0};
  std::atomic<uint64_t> would_blocks_{0};
  std::atomic<uint64_t> read_pauses_{0};
  std::atomic<uint64_t> write_pauses_{0};
  std::atomic<uint64_t> shutdown_aborts_{0};
  std::atomic<uint64_t> idle_reaped_{0};
  std::atomic<uint64_t> rdhup_closes_{0};
  std::atomic<uint64_t> faults_injected_{0};
};

}  // namespace pgssi::net
