// Length-prefixed binary wire protocol for the session server.
//
// Request frame:   [u32 len][u8 op][op-specific payload]
// Response frame:  [u32 len][u8 status_code][payload]
// All integers little-endian; `len` counts everything after itself.
// Strings are [u16 len][bytes] (keys/names) or [u32 len][bytes]
// (values). The status_code is the engine's Code enum verbatim
// (kWouldBlock never crosses the wire — the server parks the session
// and answers only when the operation completes). On failure the
// response payload is the error message; on success it is the
// op-specific result:
//   kCreateTable/kOpenTable -> [u32 table_id]   (kCreateTable also
//     returns the id with kAlreadyExists — open-or-create in one round
//     trip)
//   kGet                    -> the raw value bytes (the frame length
//     already delimits them)
//   kScan                   -> [u32 n] n x ([u16 klen][k][u32 vlen][v])
//   kCount                  -> [u64 n]
//   everything else         -> empty
//
// Responses are delivered strictly in request order per connection
// (ops execute sequentially from the session's queue), so pipelining
// needs no request ids.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "db/config.h"
#include "util/status.h"
#include "util/types.h"

namespace pgssi::net {

enum class Op : uint8_t {
  kPing = 0,
  kCreateTable = 1,
  kOpenTable = 2,
  kBegin = 3,
  kGet = 4,
  kPut = 5,
  kInsert = 6,
  kDelete = 7,
  kScan = 8,
  kCount = 9,
  kCommit = 10,
  kAbort = 11,
};

// kBegin flag bits (alongside a u8 IsolationLevel).
inline constexpr uint8_t kBeginReadOnly = 0x01;
inline constexpr uint8_t kBeginDeferrable = 0x02;

// A frame larger than this is a protocol violation; the connection is
// dropped (bounds per-connection parser memory).
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

struct Request {
  Op op = Op::kPing;
  std::string name;       // kCreateTable / kOpenTable
  uint8_t isolation = 0;  // kBegin: IsolationLevel as u8
  uint8_t flags = 0;      // kBegin: kBeginReadOnly | kBeginDeferrable
  TableId table = 0;
  std::string key;    // also scan lo
  std::string value;  // also scan hi
};

// ----- encoding primitives -----

inline void PutU8(std::string* s, uint8_t v) {
  s->push_back(static_cast<char>(v));
}
inline void PutU16(std::string* s, uint16_t v) {
  for (int i = 0; i < 2; i++) s->push_back(static_cast<char>(v >> (8 * i)));
}
inline void PutU32(std::string* s, uint32_t v) {
  for (int i = 0; i < 4; i++) s->push_back(static_cast<char>(v >> (8 * i)));
}
inline void PutU64(std::string* s, uint64_t v) {
  for (int i = 0; i < 8; i++) s->push_back(static_cast<char>(v >> (8 * i)));
}
inline void PutStr16(std::string* s, std::string_view v) {
  PutU16(s, static_cast<uint16_t>(v.size()));
  s->append(v.data(), v.size());
}
inline void PutStr32(std::string* s, std::string_view v) {
  PutU32(s, static_cast<uint32_t>(v.size()));
  s->append(v.data(), v.size());
}

// Bounds-checked sequential reader over one frame body.
struct Reader {
  const char* p;
  size_t n;
  bool ok = true;
  explicit Reader(std::string_view s) : p(s.data()), n(s.size()) {}
  bool Take(void* out, size_t k) {
    if (!ok || n < k) return ok = false;
    std::memcpy(out, p, k);
    p += k;
    n -= k;
    return true;
  }
  uint8_t U8() {
    uint8_t v = 0;
    Take(&v, 1);
    return v;
  }
  uint16_t U16() {
    uint8_t b[2] = {};
    Take(b, 2);
    return static_cast<uint16_t>(b[0] | (b[1] << 8));
  }
  uint32_t U32() {
    uint8_t b[4] = {};
    Take(b, 4);
    return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
           (static_cast<uint32_t>(b[2]) << 16) |
           (static_cast<uint32_t>(b[3]) << 24);
  }
  uint64_t U64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; i++) v |= static_cast<uint64_t>(U8()) << (8 * i);
    return v;
  }
  std::string Str16() {
    const uint16_t k = U16();
    if (!ok || n < k) {
      ok = false;
      return {};
    }
    std::string s(p, k);
    p += k;
    n -= k;
    return s;
  }
  std::string Str32() {
    const uint32_t k = U32();
    if (!ok || n < k) {
      ok = false;
      return {};
    }
    std::string s(p, k);
    p += k;
    n -= k;
    return s;
  }
};

// ----- request framing -----

/// Frame body (everything after the u32 length prefix).
inline std::string EncodeRequestBody(const Request& r) {
  std::string b;
  PutU8(&b, static_cast<uint8_t>(r.op));
  switch (r.op) {
    case Op::kPing:
    case Op::kCommit:
    case Op::kAbort:
      break;
    case Op::kCreateTable:
    case Op::kOpenTable:
      PutStr16(&b, r.name);
      break;
    case Op::kBegin:
      PutU8(&b, r.isolation);
      PutU8(&b, r.flags);
      break;
    case Op::kGet:
    case Op::kDelete:
      PutU32(&b, r.table);
      PutStr16(&b, r.key);
      break;
    case Op::kPut:
    case Op::kInsert:
      PutU32(&b, r.table);
      PutStr16(&b, r.key);
      PutStr32(&b, r.value);
      break;
    case Op::kScan:
    case Op::kCount:
      PutU32(&b, r.table);
      PutStr16(&b, r.key);    // lo
      PutStr16(&b, r.value);  // hi
      break;
  }
  return b;
}

inline std::string EncodeRequest(const Request& r) {
  const std::string body = EncodeRequestBody(r);
  std::string f;
  f.reserve(4 + body.size());
  PutU32(&f, static_cast<uint32_t>(body.size()));
  f += body;
  return f;
}

/// Parses one frame body. False on malformed input (unknown op,
/// truncated field, trailing bytes) — the server drops the connection.
inline bool DecodeRequestBody(std::string_view body, Request* r) {
  Reader rd(body);
  const uint8_t op = rd.U8();
  if (!rd.ok || op > static_cast<uint8_t>(Op::kAbort)) return false;
  r->op = static_cast<Op>(op);
  switch (r->op) {
    case Op::kPing:
    case Op::kCommit:
    case Op::kAbort:
      break;
    case Op::kCreateTable:
    case Op::kOpenTable:
      r->name = rd.Str16();
      break;
    case Op::kBegin:
      r->isolation = rd.U8();
      r->flags = rd.U8();
      break;
    case Op::kGet:
    case Op::kDelete:
      r->table = rd.U32();
      r->key = rd.Str16();
      break;
    case Op::kPut:
    case Op::kInsert:
      r->table = rd.U32();
      r->key = rd.Str16();
      r->value = rd.Str32();
      break;
    case Op::kScan:
    case Op::kCount:
      r->table = rd.U32();
      r->key = rd.Str16();
      r->value = rd.Str16();
      break;
  }
  return rd.ok && rd.n == 0;
}

// ----- response framing -----

inline std::string EncodeResponse(Code code, std::string_view payload) {
  std::string f;
  f.reserve(5 + payload.size());
  PutU32(&f, static_cast<uint32_t>(1 + payload.size()));
  PutU8(&f, static_cast<uint8_t>(code));
  f.append(payload.data(), payload.size());
  return f;
}

inline Status StatusFromWire(uint8_t code, std::string msg) {
  if (code > static_cast<uint8_t>(Code::kWouldBlock)) {
    return Status::Internal("bad status code on wire");
  }
  return Status(static_cast<Code>(code), std::move(msg));
}

// A kOverloaded response (admission refusal at accept time) carries
// [u32 retry_after_ms] instead of an error message: how long the
// server suggests waiting before reconnecting.
inline uint32_t RetryAfterMsFromOverloaded(std::string_view payload) {
  if (payload.size() < 4) return 0;
  Reader rd(payload);
  return rd.U32();
}

inline TxnOptions TxnOptionsFromBegin(const Request& r) {
  TxnOptions o;
  o.isolation = r.isolation == 0 ? IsolationLevel::kRepeatableRead
                                 : IsolationLevel::kSerializable;
  o.read_only = (r.flags & kBeginReadOnly) != 0;
  o.deferrable = (r.flags & kBeginDeferrable) != 0;
  return o;
}

inline Request BeginRequest(const TxnOptions& o) {
  Request r;
  r.op = Op::kBegin;
  r.isolation = o.isolation == IsolationLevel::kSerializable ? 1 : 0;
  r.flags = static_cast<uint8_t>((o.read_only ? kBeginReadOnly : 0) |
                                 (o.deferrable ? kBeginDeferrable : 0));
  return r;
}

}  // namespace pgssi::net
