#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pgssi::net {

WireClient::~WireClient() { Close(); }

Status WireClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Status::IOError("socket: " + std::string(std::strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    Close();
    return Status::IOError("connect: " + std::string(std::strerror(err)));
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

void WireClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status WireClient::WriteAll(const char* p, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd_, p, n);
    if (w > 0) {
      p += w;
      n -= static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return Status::IOError("write: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status WireClient::ReadAll(char* p, size_t n) {
  while (n > 0) {
    const ssize_t r = ::read(fd_, p, n);
    if (r > 0) {
      p += r;
      n -= static_cast<size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r == 0) return Status::IOError("connection closed by server");
    return Status::IOError("read: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status WireClient::Call(const Request& req, std::string* payload) {
  if (fd_ < 0) return Status::IOError("not connected");
  const std::string frame = EncodeRequest(req);
  Status st = WriteAll(frame.data(), frame.size());
  if (!st.ok()) {
    Close();
    return st;
  }
  char lenbuf[4];
  st = ReadAll(lenbuf, 4);
  if (!st.ok()) {
    Close();
    return st;
  }
  uint32_t len = 0;
  std::memcpy(&len, lenbuf, 4);
  if (len == 0 || len > kMaxFrameBytes) {
    Close();
    return Status::IOError("bad response frame length");
  }
  std::string body(len, '\0');
  st = ReadAll(body.data(), len);
  if (!st.ok()) {
    Close();
    return st;
  }
  const uint8_t code = static_cast<uint8_t>(body[0]);
  std::string rest = body.substr(1);
  if (code == static_cast<uint8_t>(Code::kOk)) {
    if (payload) *payload = std::move(rest);
    return Status::OK();
  }
  return StatusFromWire(code, std::move(rest));
}

Status WireClient::Ping() {
  Request r;
  r.op = Op::kPing;
  return Call(r, nullptr);
}

Status WireClient::CreateTable(const std::string& name, TableId* id) {
  Request r;
  r.op = Op::kCreateTable;
  r.name = name;
  std::string payload;
  Status st = Call(r, &payload);
  // The server folds kAlreadyExists into kOk-with-id (open-or-create),
  // so any OK response carries the id.
  if (st.ok() && id) {
    Reader rd(payload);
    *id = rd.U32();
    if (!rd.ok) return Status::Internal("short CreateTable response");
  }
  return st;
}

Status WireClient::OpenTable(const std::string& name, TableId* id) {
  Request r;
  r.op = Op::kOpenTable;
  r.name = name;
  std::string payload;
  Status st = Call(r, &payload);
  if (st.ok() && id) {
    Reader rd(payload);
    *id = rd.U32();
    if (!rd.ok) return Status::Internal("short OpenTable response");
  }
  return st;
}

Status WireClient::Begin(const TxnOptions& opts) {
  return Call(BeginRequest(opts), nullptr);
}

Status WireClient::Get(TableId table, const std::string& key,
                       std::string* value) {
  Request r;
  r.op = Op::kGet;
  r.table = table;
  r.key = key;
  return Call(r, value);
}

Status WireClient::Put(TableId table, const std::string& key,
                       const std::string& value) {
  Request r;
  r.op = Op::kPut;
  r.table = table;
  r.key = key;
  r.value = value;
  return Call(r, nullptr);
}

Status WireClient::Insert(TableId table, const std::string& key,
                          const std::string& value) {
  Request r;
  r.op = Op::kInsert;
  r.table = table;
  r.key = key;
  r.value = value;
  return Call(r, nullptr);
}

Status WireClient::Delete(TableId table, const std::string& key) {
  Request r;
  r.op = Op::kDelete;
  r.table = table;
  r.key = key;
  return Call(r, nullptr);
}

Status WireClient::Scan(TableId table, const std::string& lo,
                        const std::string& hi,
                        std::vector<std::pair<std::string, std::string>>* out) {
  Request r;
  r.op = Op::kScan;
  r.table = table;
  r.key = lo;
  r.value = hi;
  std::string payload;
  Status st = Call(r, &payload);
  if (!st.ok()) return st;
  Reader rd(payload);
  const uint32_t n = rd.U32();
  if (out) out->clear();
  for (uint32_t i = 0; i < n && rd.ok; i++) {
    std::string k = rd.Str16();
    std::string v = rd.Str32();
    if (rd.ok && out) out->emplace_back(std::move(k), std::move(v));
  }
  if (!rd.ok) return Status::Internal("malformed Scan response");
  return Status::OK();
}

Status WireClient::Count(TableId table, const std::string& lo,
                         const std::string& hi, uint64_t* n) {
  Request r;
  r.op = Op::kCount;
  r.table = table;
  r.key = lo;
  r.value = hi;
  std::string payload;
  Status st = Call(r, &payload);
  if (st.ok() && n) {
    Reader rd(payload);
    *n = rd.U64();
    if (!rd.ok) return Status::Internal("short Count response");
  }
  return st;
}

Status WireClient::Commit() {
  Request r;
  r.op = Op::kCommit;
  return Call(r, nullptr);
}

Status WireClient::Abort() {
  Request r;
  r.op = Op::kAbort;
  return Call(r, nullptr);
}

// ----- WireDbClient -----

WireClient* WireDbClient::Conn() {
  const std::thread::id me = std::this_thread::get_id();
  {
    std::lock_guard<std::mutex> l(mu_);
    auto it = conns_.find(me);
    if (it != conns_.end()) return it->second.get();
  }
  auto c = std::make_unique<WireClient>();
  if (!c->Connect(host_, port_).ok()) return nullptr;
  std::lock_guard<std::mutex> l(mu_);
  return conns_.emplace(me, std::move(c)).first->second.get();
}

Status WireDbClient::CreateTable(const std::string& name, TableId* id) {
  WireClient* c = Conn();
  if (!c) return Status::IOError("connect to " + host_ + " failed");
  return c->CreateTable(name, id);  // server folds AlreadyExists into OK+id
}

TableId WireDbClient::GetTableId(const std::string& name) {
  WireClient* c = Conn();
  if (!c) return kInvalidTable;
  TableId id = kInvalidTable;
  if (!c->OpenTable(name, &id).ok()) return kInvalidTable;
  return id;
}

std::unique_ptr<workload::DbTxn> WireDbClient::Begin(const TxnOptions& opts) {
  WireClient* c = Conn();
  if (!c) return nullptr;
  if (!c->Begin(opts).ok()) return nullptr;
  return std::make_unique<WireTxn>(c);
}

}  // namespace pgssi::net
