#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>

#include "util/failpoint.h"

namespace pgssi::net {

namespace {

// Per-thread jitter source for Begin's backoff loop (deterministic per
// thread, no cross-thread locking on the hot retry path).
uint64_t JitterUs(uint64_t backoff_us) {
  thread_local std::mt19937_64 rng(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) ^
      0x5bd1e995u);
  return backoff_us == 0 ? 0 : rng() % backoff_us;
}

void SleepUs(uint64_t us) {
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace

WireClient::~WireClient() { Close(); }

Status WireClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Status::IOError("socket: " + std::string(std::strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    Close();
    return Status::IOError("connect: " + std::string(std::strerror(err)));
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

void WireClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status WireClient::WriteAll(const char* p, size_t n) {
  if (util::FailpointFires("wireclient_write_err")) {
    return Status::IOError("injected client write fault");
  }
  if (util::FailpointFires("wireclient_torn_write")) {
    // Half the frame reaches the server, then the socket dies: the
    // server is left holding a truncated frame and must clean up when
    // the connection closes.
    size_t half = n / 2;
    while (half > 0) {
      const ssize_t w = ::write(fd_, p, half);
      if (w <= 0) break;
      p += w;
      half -= static_cast<size_t>(w);
    }
    return Status::IOError("injected torn client write");
  }
  while (n > 0) {
    const ssize_t w = ::write(fd_, p, n);
    if (w > 0) {
      p += w;
      n -= static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return Status::IOError("write: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status WireClient::ReadAll(char* p, size_t n) {
  if (util::FailpointFires("wireclient_read_err")) {
    // The request may already have executed server-side; losing the
    // response here is the ambiguous-ack window for commits.
    return Status::IOError("injected client read fault");
  }
  while (n > 0) {
    const ssize_t r = ::read(fd_, p, n);
    if (r > 0) {
      p += r;
      n -= static_cast<size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r == 0) return Status::IOError("connection closed by server");
    return Status::IOError("read: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status WireClient::Call(const Request& req, std::string* payload) {
  if (fd_ < 0) return Status::IOError("not connected");
  const std::string frame = EncodeRequest(req);
  Status st = WriteAll(frame.data(), frame.size());
  if (!st.ok()) {
    Close();
    return st;
  }
  char lenbuf[4];
  st = ReadAll(lenbuf, 4);
  if (!st.ok()) {
    Close();
    return st;
  }
  uint32_t len = 0;
  std::memcpy(&len, lenbuf, 4);
  if (len == 0 || len > kMaxFrameBytes) {
    Close();
    return Status::IOError("bad response frame length");
  }
  std::string body(len, '\0');
  st = ReadAll(body.data(), len);
  if (!st.ok()) {
    Close();
    return st;
  }
  const uint8_t code = static_cast<uint8_t>(body[0]);
  std::string rest = body.substr(1);
  if (code == static_cast<uint8_t>(Code::kOk)) {
    if (payload) *payload = std::move(rest);
    return Status::OK();
  }
  if (code == static_cast<uint8_t>(Code::kOverloaded)) {
    // Admission refusal: the payload is a retry-after hint, not an
    // error message, and the server has already closed its side.
    last_retry_after_ms_ = RetryAfterMsFromOverloaded(rest);
    Close();
    return Status::Overloaded("server overloaded; retry after " +
                              std::to_string(last_retry_after_ms_) + "ms");
  }
  return StatusFromWire(code, std::move(rest));
}

Status WireClient::Ping() {
  Request r;
  r.op = Op::kPing;
  return Call(r, nullptr);
}

Status WireClient::CreateTable(const std::string& name, TableId* id) {
  Request r;
  r.op = Op::kCreateTable;
  r.name = name;
  std::string payload;
  Status st = Call(r, &payload);
  // The server folds kAlreadyExists into kOk-with-id (open-or-create),
  // so any OK response carries the id.
  if (st.ok() && id) {
    Reader rd(payload);
    *id = rd.U32();
    if (!rd.ok) return Status::Internal("short CreateTable response");
  }
  return st;
}

Status WireClient::OpenTable(const std::string& name, TableId* id) {
  Request r;
  r.op = Op::kOpenTable;
  r.name = name;
  std::string payload;
  Status st = Call(r, &payload);
  if (st.ok() && id) {
    Reader rd(payload);
    *id = rd.U32();
    if (!rd.ok) return Status::Internal("short OpenTable response");
  }
  return st;
}

Status WireClient::Begin(const TxnOptions& opts) {
  return Call(BeginRequest(opts), nullptr);
}

Status WireClient::Get(TableId table, const std::string& key,
                       std::string* value) {
  Request r;
  r.op = Op::kGet;
  r.table = table;
  r.key = key;
  return Call(r, value);
}

Status WireClient::Put(TableId table, const std::string& key,
                       const std::string& value) {
  Request r;
  r.op = Op::kPut;
  r.table = table;
  r.key = key;
  r.value = value;
  return Call(r, nullptr);
}

Status WireClient::Insert(TableId table, const std::string& key,
                          const std::string& value) {
  Request r;
  r.op = Op::kInsert;
  r.table = table;
  r.key = key;
  r.value = value;
  return Call(r, nullptr);
}

Status WireClient::Delete(TableId table, const std::string& key) {
  Request r;
  r.op = Op::kDelete;
  r.table = table;
  r.key = key;
  return Call(r, nullptr);
}

Status WireClient::Scan(TableId table, const std::string& lo,
                        const std::string& hi,
                        std::vector<std::pair<std::string, std::string>>* out) {
  Request r;
  r.op = Op::kScan;
  r.table = table;
  r.key = lo;
  r.value = hi;
  std::string payload;
  Status st = Call(r, &payload);
  if (!st.ok()) return st;
  Reader rd(payload);
  const uint32_t n = rd.U32();
  if (out) out->clear();
  for (uint32_t i = 0; i < n && rd.ok; i++) {
    std::string k = rd.Str16();
    std::string v = rd.Str32();
    if (rd.ok && out) out->emplace_back(std::move(k), std::move(v));
  }
  if (!rd.ok) return Status::Internal("malformed Scan response");
  return Status::OK();
}

Status WireClient::Count(TableId table, const std::string& lo,
                         const std::string& hi, uint64_t* n) {
  Request r;
  r.op = Op::kCount;
  r.table = table;
  r.key = lo;
  r.value = hi;
  std::string payload;
  Status st = Call(r, &payload);
  if (st.ok() && n) {
    Reader rd(payload);
    *n = rd.U64();
    if (!rd.ok) return Status::Internal("short Count response");
  }
  return st;
}

Status WireClient::Commit() {
  Request r;
  r.op = Op::kCommit;
  return Call(r, nullptr);
}

Status WireClient::Abort() {
  Request r;
  r.op = Op::kAbort;
  return Call(r, nullptr);
}

// ----- WireDbClient -----

WireClient* WireDbClient::Conn() {
  const std::thread::id me = std::this_thread::get_id();
  {
    std::lock_guard<std::mutex> l(mu_);
    auto it = conns_.find(me);
    if (it != conns_.end()) {
      WireClient* c = it->second.get();
      if (c->connected()) return c;
      // The cached connection died (fault, refusal, server-side kill):
      // re-dial in place so the thread keeps its slot.
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      if (!c->Connect(host_, port_).ok()) return nullptr;
      return c;
    }
  }
  auto c = std::make_unique<WireClient>();
  if (!c->Connect(host_, port_).ok()) return nullptr;
  std::lock_guard<std::mutex> l(mu_);
  return conns_.emplace(me, std::move(c)).first->second.get();
}

Status WireDbClient::CreateTable(const std::string& name, TableId* id) {
  WireClient* c = Conn();
  if (!c) return Status::IOError("connect to " + host_ + " failed");
  return c->CreateTable(name, id);  // server folds AlreadyExists into OK+id
}

TableId WireDbClient::GetTableId(const std::string& name) {
  WireClient* c = Conn();
  if (!c) return kInvalidTable;
  TableId id = kInvalidTable;
  if (!c->OpenTable(name, &id).ok()) return kInvalidTable;
  return id;
}

std::unique_ptr<workload::DbTxn> WireDbClient::Begin(const TxnOptions& opts) {
  uint64_t backoff_us = retry_.base_backoff_us;
  const uint32_t attempts = std::max<uint32_t>(1, retry_.max_attempts);
  for (uint32_t attempt = 0; attempt < attempts; attempt++) {
    if (attempt > 0) {
      SleepUs(backoff_us + JitterUs(backoff_us));
      backoff_us = std::min(backoff_us * 2, retry_.max_backoff_us);
    }
    WireClient* c = Conn();
    if (!c) continue;  // connect refused/failed: back off and re-dial
    const Status st = c->Begin(opts);
    if (st.ok()) return std::make_unique<WireTxn>(c);
    if (st.code() == Code::kOverloaded) {
      overload_refusals_.fetch_add(1, std::memory_order_relaxed);
      // Honor the server's hint when it exceeds our own backoff.
      backoff_us = std::max(backoff_us,
                            uint64_t{c->last_retry_after_ms()} * 1000);
      backoff_us = std::min(backoff_us, retry_.max_backoff_us);
      continue;
    }
    if (st.code() == Code::kIOError) {
      continue;  // dead conn: Conn() re-dials next lap
    }
    return nullptr;  // non-retryable engine error
  }
  return nullptr;
}

}  // namespace pgssi::net
