// Blocking wire client for the session server.
//
// WireClient owns one TCP connection = one server-side session. It is a
// simple one-outstanding-RPC client: Call() writes a request frame,
// then blocks reading exactly one response frame (the server answers in
// request order, and a parked session simply delays the response — the
// client never sees kWouldBlock). NOT thread-safe; one thread per
// client, which is exactly the shape the workload drivers use to put
// many connections over few server workers.
//
// Degradation behavior:
//  - a kOverloaded response (admission refusal) surfaces as
//    Status::Overloaded with the server's retry-after hint readable via
//    last_retry_after_ms(); the connection is spent (server closed it).
//  - WireDbClient::Begin auto-retries overload refusals and transport
//    failures with capped exponential backoff + jitter, reconnecting as
//    needed (safe: Begin carries no transaction state yet). Transaction
//    BODIES are retried by the workload driver's RetryPolicy, not here.
//
// Client-side chaos failpoints (util/failpoint.h), independent of the
// server's: "wireclient_write_err" (request write fails outright),
// "wireclient_torn_write" (half the frame reaches the server, then the
// socket dies — the server must cope with the truncated frame),
// "wireclient_read_err" (response lost after the server processed the
// request — for commits, the classic ambiguous-ack window).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "db/config.h"
#include "net/wire.h"
#include "util/status.h"
#include "util/types.h"
#include "workload/client.h"

namespace pgssi::net {

class WireClient {
 public:
  WireClient() = default;
  ~WireClient();
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One RPC: sends `req`, blocks for the matching response. On success
  /// `*payload` holds the op-specific result bytes; on engine error the
  /// returned Status carries the server's code and message. An IOError
  /// means the connection is dead (Close()d as a side effect).
  Status Call(const Request& req, std::string* payload);

  // ----- typed convenience wrappers -----
  Status Ping();
  /// Open-or-create: sets `*id` on both kOk and kAlreadyExists.
  Status CreateTable(const std::string& name, TableId* id);
  Status OpenTable(const std::string& name, TableId* id);
  Status Begin(const TxnOptions& opts = {});
  Status Get(TableId table, const std::string& key, std::string* value);
  Status Put(TableId table, const std::string& key, const std::string& value);
  Status Insert(TableId table, const std::string& key,
                const std::string& value);
  Status Delete(TableId table, const std::string& key);
  Status Scan(TableId table, const std::string& lo, const std::string& hi,
              std::vector<std::pair<std::string, std::string>>* out);
  Status Count(TableId table, const std::string& lo, const std::string& hi,
               uint64_t* n);
  Status Commit();
  Status Abort();

  /// Retry-after hint (ms) from the most recent kOverloaded response.
  uint32_t last_retry_after_ms() const { return last_retry_after_ms_; }

 private:
  Status WriteAll(const char* p, size_t n);
  Status ReadAll(char* p, size_t n);

  int fd_ = -1;
  uint32_t last_retry_after_ms_ = 0;
};

// ----- workload::DbClient over the wire -----

/// One server-side transaction on a borrowed connection. Destruction
/// sends kAbort unless Commit/Abort was called (matching EmbeddedTxn).
class WireTxn final : public workload::DbTxn {
 public:
  explicit WireTxn(WireClient* c) : c_(c) {}
  ~WireTxn() override {
    if (!finished_ && c_->connected()) (void)c_->Abort();
  }

  Status Get(TableId table, const std::string& key,
             std::string* value) override {
    return c_->Get(table, key, value);
  }
  Status Put(TableId table, const std::string& key,
             const std::string& value) override {
    return c_->Put(table, key, value);
  }
  Status Insert(TableId table, const std::string& key,
                const std::string& value) override {
    return c_->Insert(table, key, value);
  }
  Status Delete(TableId table, const std::string& key) override {
    return c_->Delete(table, key);
  }
  Status Scan(TableId table, const std::string& lo, const std::string& hi,
              std::vector<std::pair<std::string, std::string>>* out) override {
    return c_->Scan(table, lo, hi, out);
  }
  Status Count(TableId table, const std::string& lo, const std::string& hi,
               uint64_t* n) override {
    return c_->Count(table, lo, hi, n);
  }
  Status Commit() override {
    finished_ = true;
    return c_->Commit();
  }
  Status Abort() override {
    finished_ = true;
    return c_->Abort();
  }

 private:
  WireClient* c_;
  bool finished_ = false;
};

/// Connection-level retry shape for WireDbClient::Begin: capped
/// exponential backoff with jitter. Retries cover overload refusals
/// (waiting at least the server's retry-after hint) and transport
/// failures; max_attempts = 1 disables retrying entirely.
struct WireRetryPolicy {
  uint32_t max_attempts = 8;
  uint64_t base_backoff_us = 500;
  uint64_t max_backoff_us = 50'000;
};

/// Connection-per-driver-thread wire client: every thread that calls
/// Begin/CreateTable/GetTableId gets its own lazily-opened connection
/// (= its own server-side session), so a driver with 32 threads puts 32
/// connections over however few workers the server runs. A thread whose
/// connection died is transparently reconnected on the next Begin.
class WireDbClient final : public workload::DbClient {
 public:
  WireDbClient(std::string host, uint16_t port, WireRetryPolicy retry = {})
      : host_(std::move(host)), port_(port), retry_(retry) {}

  Status CreateTable(const std::string& name, TableId* id) override;
  TableId GetTableId(const std::string& name) override;
  /// Null only when every retry attempt was exhausted (connection
  /// cannot be established, refusals persisted) or Begin failed with a
  /// non-retryable engine error.
  std::unique_ptr<workload::DbTxn> Begin(const TxnOptions& opts) override;

  /// kOverloaded refusals absorbed by Begin's backoff loop.
  uint64_t overload_refusals() const {
    return overload_refusals_.load(std::memory_order_relaxed);
  }
  /// Re-Connect() calls after a dead or refused connection.
  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }

 private:
  // This thread's connection, opened on first use (null on connect
  // failure). A cached-but-dead connection is re-dialed here.
  WireClient* Conn();

  std::string host_;
  uint16_t port_;
  WireRetryPolicy retry_;
  std::mutex mu_;
  std::unordered_map<std::thread::id, std::unique_ptr<WireClient>> conns_;
  std::atomic<uint64_t> overload_refusals_{0};
  std::atomic<uint64_t> reconnects_{0};
};

}  // namespace pgssi::net
