// Blocking wire client for the session server.
//
// WireClient owns one TCP connection = one server-side session. It is a
// simple one-outstanding-RPC client: Call() writes a request frame,
// then blocks reading exactly one response frame (the server answers in
// request order, and a parked session simply delays the response — the
// client never sees kWouldBlock). NOT thread-safe; one thread per
// client, which is exactly the shape the workload drivers use to put
// many connections over few server workers.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "db/config.h"
#include "net/wire.h"
#include "util/status.h"
#include "util/types.h"
#include "workload/client.h"

namespace pgssi::net {

class WireClient {
 public:
  WireClient() = default;
  ~WireClient();
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One RPC: sends `req`, blocks for the matching response. On success
  /// `*payload` holds the op-specific result bytes; on engine error the
  /// returned Status carries the server's code and message. An IOError
  /// means the connection is dead (Close()d as a side effect).
  Status Call(const Request& req, std::string* payload);

  // ----- typed convenience wrappers -----
  Status Ping();
  /// Open-or-create: sets `*id` on both kOk and kAlreadyExists.
  Status CreateTable(const std::string& name, TableId* id);
  Status OpenTable(const std::string& name, TableId* id);
  Status Begin(const TxnOptions& opts = {});
  Status Get(TableId table, const std::string& key, std::string* value);
  Status Put(TableId table, const std::string& key, const std::string& value);
  Status Insert(TableId table, const std::string& key,
                const std::string& value);
  Status Delete(TableId table, const std::string& key);
  Status Scan(TableId table, const std::string& lo, const std::string& hi,
              std::vector<std::pair<std::string, std::string>>* out);
  Status Count(TableId table, const std::string& lo, const std::string& hi,
               uint64_t* n);
  Status Commit();
  Status Abort();

 private:
  Status WriteAll(const char* p, size_t n);
  Status ReadAll(char* p, size_t n);

  int fd_ = -1;
};

// ----- workload::DbClient over the wire -----

/// One server-side transaction on a borrowed connection. Destruction
/// sends kAbort unless Commit/Abort was called (matching EmbeddedTxn).
class WireTxn final : public workload::DbTxn {
 public:
  explicit WireTxn(WireClient* c) : c_(c) {}
  ~WireTxn() override {
    if (!finished_ && c_->connected()) (void)c_->Abort();
  }

  Status Get(TableId table, const std::string& key,
             std::string* value) override {
    return c_->Get(table, key, value);
  }
  Status Put(TableId table, const std::string& key,
             const std::string& value) override {
    return c_->Put(table, key, value);
  }
  Status Insert(TableId table, const std::string& key,
                const std::string& value) override {
    return c_->Insert(table, key, value);
  }
  Status Delete(TableId table, const std::string& key) override {
    return c_->Delete(table, key);
  }
  Status Scan(TableId table, const std::string& lo, const std::string& hi,
              std::vector<std::pair<std::string, std::string>>* out) override {
    return c_->Scan(table, lo, hi, out);
  }
  Status Count(TableId table, const std::string& lo, const std::string& hi,
               uint64_t* n) override {
    return c_->Count(table, lo, hi, n);
  }
  Status Commit() override {
    finished_ = true;
    return c_->Commit();
  }
  Status Abort() override {
    finished_ = true;
    return c_->Abort();
  }

 private:
  WireClient* c_;
  bool finished_ = false;
};

/// Connection-per-driver-thread wire client: every thread that calls
/// Begin/CreateTable/GetTableId gets its own lazily-opened connection
/// (= its own server-side session), so a driver with 32 threads puts 32
/// connections over however few workers the server runs.
class WireDbClient final : public workload::DbClient {
 public:
  WireDbClient(std::string host, uint16_t port)
      : host_(std::move(host)), port_(port) {}

  Status CreateTable(const std::string& name, TableId* id) override;
  TableId GetTableId(const std::string& name) override;
  /// Null if the connection cannot be established or Begin fails on the
  /// wire.
  std::unique_ptr<workload::DbTxn> Begin(const TxnOptions& opts) override;

 private:
  // This thread's connection, opened on first use (null on failure).
  WireClient* Conn();

  std::string host_;
  uint16_t port_;
  std::mutex mu_;
  std::unordered_map<std::thread::id, std::unique_ptr<WireClient>> conns_;
};

}  // namespace pgssi::net
