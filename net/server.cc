#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "util/clock.h"
#include "util/failpoint.h"

namespace pgssi::net {

namespace {
constexpr int kEpollBatch = 64;
constexpr size_t kReadChunk = 64 * 1024;
}  // namespace

struct Server::Conn {
  explicit Conn(Database* db) : session(db) {}

  int fd = -1;
  Session session;

  // Scheduling states (see header comment).
  enum : int { kIdle = 0, kQueued = 1, kRunning = 2, kRunningRequeue = 3 };
  std::atomic<int> sched{kIdle};
  // Parked on a would-block; exactly one of {token callback, deadline
  // tick} wins the exchange(false) and requeues.
  std::atomic<bool> parked{false};
  uint64_t park_deadline_us = 0;  // written before the parked_ push
  // Socket gone (EOF/error/protocol violation): the next worker pass
  // aborts the session and drops the remaining ops.
  std::atomic<bool> closing{false};

  // Parsed requests: epoll thread pushes, worker pops (ops_mu).
  std::mutex ops_mu;
  std::deque<Request> ops;
  bool read_paused = false;  // epoll thread only
  std::atomic<bool> want_read_rearm{false};

  std::string in;  // unparsed inbound bytes; epoll thread only

  // Outbound responses (out_mu): worker appends, epoll thread consumes.
  std::mutex out_mu;
  std::string out;
  size_t out_off = 0;
  bool epollout_armed = false;  // epoll thread only
  std::atomic<bool> write_paused{false};
  // Dedups attention-list pushes (reset by the epoll thread).
  std::atomic<bool> attn_pending{false};

  // idle -> in-txn -> awaiting-lock / committing (introspection only).
  enum class Phase : int { kIdle = 0, kInTxn, kAwaitingLock, kCommitting };
  std::atomic<int> phase{static_cast<int>(Phase::kIdle)};

  // Last inbound traffic or completed op, for the idle-in-txn sweep.
  std::atomic<uint64_t> last_activity_us{0};
};

Server::Server(Database* db, ServerOptions opts)
    : db_(db), opts_(std::move(opts)) {
  const EngineConfig& eng = db_->options().engine;
  if (opts_.workers == 0) opts_.workers = eng.net_workers;
  if (opts_.workers == 0) opts_.workers = 1;
  if (opts_.max_sessions == 0) opts_.max_sessions = eng.net_max_sessions;
  backpressure_ops_ =
      opts_.backpressure_ops ? opts_.backpressure_ops : eng.net_backpressure_ops;
  if (backpressure_ops_ == 0) backpressure_ops_ = 1;
  write_queue_bytes_ = opts_.write_queue_bytes ? opts_.write_queue_bytes
                                               : eng.net_write_queue_bytes;
  if (write_queue_bytes_ == 0) write_queue_bytes_ = 64 * 1024;
  park_interval_us_ = eng.deadlock_check_interval_us;
  if (park_interval_us_ == 0) park_interval_us_ = 1000;
  idle_txn_timeout_us_ = eng.idle_in_txn_timeout_us;
  overload_retry_after_ms_ = eng.net_overload_retry_after_ms;
}

bool Server::NetFault(const char* name) {
  if (!util::FailpointFires(name)) return false;
  faults_injected_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load()) return Status::Internal("server already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::IOError("socket: " + std::string(std::strerror(errno)));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host " + opts_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 512) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("bind/listen: " + std::string(std::strerror(err)));
  }
  socklen_t alen = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Stop();
    return Status::IOError("epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  stopping_.store(false);
  running_.store(true);
  epoll_thread_ = std::thread([this] { EpollLoop(); });
  workers_.reserve(opts_.workers);
  for (uint32_t i = 0; i < opts_.workers; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void Server::Stop() {
  if (!running_.exchange(false)) {
    // Never started (or already stopped): still release a half-built
    // listener from a failed Start.
    if (listen_fd_ >= 0) { ::close(listen_fd_); listen_fd_ = -1; }
    if (epoll_fd_ >= 0) { ::close(epoll_fd_); epoll_fd_ = -1; }
    if (wake_fd_ >= 0) { ::close(wake_fd_); wake_fd_ = -1; }
    return;
  }
  stopping_.store(true);
  {
    std::lock_guard<std::mutex> l(run_mu_);
  }
  run_cv_.notify_all();
  uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
  for (auto& w : workers_) w.join();
  workers_.clear();
  epoll_thread_.join();

  // Single-threaded teardown: every remaining session — live, parked,
  // or queued — gets its in-flight transaction aborted BEFORE the
  // caller may destroy the Database. Token callbacks firing during the
  // aborts (a released lock waking another parked session) only push
  // onto a run queue nobody drains anymore.
  std::unordered_set<Conn*> seen;
  std::vector<ConnPtr> all;
  for (auto& [fd, c] : conns_) {
    if (seen.insert(c.get()).second) all.push_back(c);
  }
  {
    std::lock_guard<std::mutex> l(run_mu_);
    for (auto& c : run_queue_) {
      if (seen.insert(c.get()).second) all.push_back(c);
    }
    run_queue_.clear();
  }
  {
    std::lock_guard<std::mutex> l(parked_mu_);
    for (auto& w : parked_) {
      if (auto c = w.lock()) {
        if (seen.insert(c.get()).second) all.push_back(c);
      }
    }
    parked_.clear();
  }
  for (auto& c : all) {
    if (c->session.in_txn() || c->session.begin_pending()) {
      shutdown_aborts_.fetch_add(1, std::memory_order_relaxed);
    }
    (void)c->session.Abort();
    if (c->fd >= 0) {
      ::close(c->fd);
      c->fd = -1;
    }
  }
  conns_.clear();
  {
    std::lock_guard<std::mutex> l(attn_mu_);
    attn_.clear();
  }
  if (listen_fd_ >= 0) { ::close(listen_fd_); listen_fd_ = -1; }
  if (epoll_fd_ >= 0) { ::close(epoll_fd_); epoll_fd_ = -1; }
  if (wake_fd_ >= 0) { ::close(wake_fd_); wake_fd_ = -1; }
}

Server::Stats Server::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.refused = refused_.load(std::memory_order_relaxed);
  s.ops_executed = ops_executed_.load(std::memory_order_relaxed);
  s.would_blocks = would_blocks_.load(std::memory_order_relaxed);
  s.read_pauses = read_pauses_.load(std::memory_order_relaxed);
  s.write_pauses = write_pauses_.load(std::memory_order_relaxed);
  s.shutdown_aborts = shutdown_aborts_.load(std::memory_order_relaxed);
  s.idle_reaped = idle_reaped_.load(std::memory_order_relaxed);
  s.rdhup_closes = rdhup_closes_.load(std::memory_order_relaxed);
  s.faults_injected = faults_injected_.load(std::memory_order_relaxed);
  return s;
}

size_t Server::active_sessions() const {
  // Approximate (epoll thread owns conns_); used by tests after quiesce.
  return conns_.size();
}

// ---------------------------------------------------------------------------
// epoll thread
// ---------------------------------------------------------------------------

void Server::EpollLoop() {
  epoll_event evs[kEpollBatch];
  while (!stopping_.load(std::memory_order_acquire)) {
    int timeout_ms = -1;
    {
      std::lock_guard<std::mutex> l(parked_mu_);
      if (!parked_.empty()) {
        timeout_ms = static_cast<int>(park_interval_us_ / 1000);
        if (timeout_ms < 1) timeout_ms = 1;
      }
    }
    if (idle_txn_timeout_us_ > 0 && !conns_.empty()) {
      // The idle-in-txn sweep needs the loop to tick even when no
      // session is parked and no socket is active.
      int sweep_ms = static_cast<int>(idle_txn_timeout_us_ / 4000);
      if (sweep_ms < 1) sweep_ms = 1;
      if (timeout_ms < 0 || sweep_ms < timeout_ms) timeout_ms = sweep_ms;
    }
    const int n = ::epoll_wait(epoll_fd_, evs, kEpollBatch, timeout_ms);
    if (stopping_.load(std::memory_order_acquire)) break;
    for (int i = 0; i < n; i++) {
      const int fd = evs[i].data.fd;
      if (fd == listen_fd_) {
        AcceptPending();
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t junk;
        while (::read(wake_fd_, &junk, sizeof(junk)) > 0) {
        }
        continue;  // attention list processed below
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // already closed
      ConnPtr c = it->second;
      if (evs[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConn(c);
        continue;
      }
      if ((evs[i].events & EPOLLRDHUP) && !(evs[i].events & EPOLLIN)) {
        // Peer shut down its write side and EPOLLIN is disarmed (read
        // backpressure) — RDHUP is the ONLY signal; without it a
        // vanished client whose queue tripped backpressure would hold
        // its transaction forever. (With EPOLLIN armed the read path
        // drains any final frames and sees EOF itself.)
        rdhup_closes_.fetch_add(1, std::memory_order_relaxed);
        CloseConn(c);
        continue;
      }
      if (evs[i].events & EPOLLOUT) FlushWrites(c);
      if (c->fd >= 0 && (evs[i].events & EPOLLIN)) HandleReadable(c);
    }
    // Attention list: flush worker-produced responses, re-arm paused
    // reads, resume write-paused sessions.
    std::vector<std::weak_ptr<Conn>> attn;
    {
      std::lock_guard<std::mutex> l(attn_mu_);
      attn.swap(attn_);
    }
    for (auto& w : attn) {
      ConnPtr c = w.lock();
      if (!c) continue;
      c->attn_pending.store(false, std::memory_order_release);
      if (c->fd < 0) continue;
      if (c->want_read_rearm.exchange(false) && c->read_paused) {
        c->read_paused = false;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLRDHUP | (c->epollout_armed ? EPOLLOUT : 0u);
        ev.data.fd = c->fd;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev);
      }
      FlushWrites(c);
    }
    TickParked();
    ReapIdleInTxn(NowMicros());
  }
}

void Server::AcceptPending() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: back to epoll
    if (conns_.size() >= opts_.max_sessions ||
        NetFault("net_accept_refuse")) {
      // Refuse loudly: a kOverloaded frame with a retry-after hint (ms)
      // instead of a silent close, so clients can distinguish "come
      // back later" from a network fault. The socket buffer of a
      // just-accepted connection is empty, so the single best-effort
      // write does not block the epoll thread.
      refused_.fetch_add(1, std::memory_order_relaxed);
      std::string hint;
      PutU32(&hint, overload_retry_after_ms_);
      const std::string frame = EncodeResponse(Code::kOverloaded, hint);
      (void)!::write(fd, frame.data(), frame.size());
      // Drain whatever the client already pipelined (typically its
      // Begin frame) before closing: unread inbound bytes at close()
      // turn into an RST that discards the refusal frame client-side.
      // Non-blocking fd, so this terminates at EAGAIN immediately.
      ::shutdown(fd, SHUT_WR);
      char junk[512];
      while (::read(fd, junk, sizeof(junk)) > 0) {
      }
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto c = std::make_shared<Conn>(db_);
    c->fd = fd;
    c->last_activity_us.store(NowMicros(), std::memory_order_relaxed);
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, std::move(c));
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::HandleReadable(const ConnPtr& c) {
  char buf[kReadChunk];
  bool eof = NetFault("net_read_err");  // injected hard read error
  for (; !eof;) {
    const ssize_t r = ::read(c->fd, buf, sizeof(buf));
    if (r > 0) {
      c->in.append(buf, static_cast<size_t>(r));
      c->last_activity_us.store(NowMicros(), std::memory_order_relaxed);
      if (static_cast<size_t>(r) < sizeof(buf)) break;
      continue;
    }
    if (r == 0) {
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    eof = true;  // hard error: treat as hangup
    break;
  }
  // Parse complete frames.
  size_t off = 0;
  size_t pushed = 0;
  bool protocol_error = false;
  while (c->in.size() - off >= 4) {
    uint32_t len = 0;
    std::memcpy(&len, c->in.data() + off, 4);
    if (len == 0 || len > kMaxFrameBytes) {
      protocol_error = true;
      break;
    }
    if (c->in.size() - off - 4 < len) break;
    Request req;
    if (!DecodeRequestBody({c->in.data() + off + 4, len}, &req)) {
      protocol_error = true;
      break;
    }
    off += 4 + len;
    {
      std::lock_guard<std::mutex> l(c->ops_mu);
      c->ops.push_back(std::move(req));
    }
    pushed++;
  }
  if (off > 0) c->in.erase(0, off);
  if (protocol_error || eof) {
    CloseConn(c);  // enqueues the conn so a worker aborts its session
    return;
  }
  size_t qn;
  {
    std::lock_guard<std::mutex> l(c->ops_mu);
    qn = c->ops.size();
  }
  if (qn >= backpressure_ops_ && !c->read_paused) {
    c->read_paused = true;
    read_pauses_.fetch_add(1, std::memory_order_relaxed);
    epoll_event ev{};
    // EPOLLRDHUP stays armed: a client that vanishes while paused must
    // still be detected (the half-open case).
    ev.events = EPOLLRDHUP | (c->epollout_armed ? EPOLLOUT : 0u);
    ev.data.fd = c->fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev);
  }
  if (pushed > 0) Enqueue(c);
}

void Server::FlushWrites(const ConnPtr& c) {
  if (c->fd < 0) return;
  if (!c->closing.load(std::memory_order_acquire) &&
      NetFault("net_flush_stall")) {
    // Stalled flush: skip this pass entirely; the self-nudge retries on
    // the next loop iteration (responses are delayed, never dropped).
    NudgeEpoll(c);
    return;
  }
  bool drained_below_pause = false;
  {
    std::lock_guard<std::mutex> l(c->out_mu);
    while (c->out_off < c->out.size()) {
      // Torn/short frame write: push a single byte this pass, then stop
      // — the remainder stays queued and EPOLLOUT re-arms below, so the
      // client sees a frame arrive in arbitrary fragments.
      const size_t cap =
          NetFault("net_write_short") ? 1 : c->out.size() - c->out_off;
      const ssize_t w = ::write(c->fd, c->out.data() + c->out_off, cap);
      if (w > 0 && static_cast<size_t>(w) == cap && cap == 1 &&
          c->out_off + 1 < c->out.size()) {
        c->out_off += 1;
        break;  // deliberately leave the rest for the next pass
      }
      if (w > 0) {
        c->out_off += static_cast<size_t>(w);
        continue;
      }
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (w < 0 && errno == EINTR) continue;
      // Hard write error: drop outside the out_mu scope.
      c->out.clear();
      c->out_off = 0;
      c->closing.store(true, std::memory_order_release);
      break;
    }
    if (c->out_off == c->out.size()) {
      c->out.clear();
      c->out_off = 0;
    }
    const size_t pending = c->out.size() - c->out_off;
    const bool want_out = pending > 0;
    if (want_out != c->epollout_armed) {
      c->epollout_armed = want_out;
      epoll_event ev{};
      ev.events = EPOLLRDHUP | (c->read_paused ? 0u : EPOLLIN) |
                  (want_out ? EPOLLOUT : 0u);
      ev.data.fd = c->fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev);
    }
    if (c->write_paused.load(std::memory_order_acquire) &&
        pending < write_queue_bytes_ / 2) {
      c->write_paused.store(false, std::memory_order_release);
      drained_below_pause = true;
    }
  }
  if (c->closing.load(std::memory_order_acquire)) {
    CloseConn(c);
    return;
  }
  if (drained_below_pause) Enqueue(c);
}

void Server::CloseConn(const ConnPtr& c) {
  if (c->fd >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->fd, nullptr);
    ::close(c->fd);
    conns_.erase(c->fd);
    c->fd = -1;
  }
  c->closing.store(true, std::memory_order_release);
  // A worker pass aborts the session and drops its ops. If the conn is
  // parked, the exchange steals it from the pending wake.
  c->parked.store(false, std::memory_order_release);
  Enqueue(c);
}

void Server::TickParked() {
  const uint64_t now = NowMicros();
  std::vector<ConnPtr> due;
  {
    std::lock_guard<std::mutex> l(parked_mu_);
    size_t keep = 0;
    for (size_t i = 0; i < parked_.size(); i++) {
      ConnPtr c = parked_[i].lock();
      if (!c || !c->parked.load(std::memory_order_acquire)) continue;
      if (now >= c->park_deadline_us) {
        due.push_back(std::move(c));
        continue;
      }
      // Guard against self-move: weak_ptr move-assignment onto itself
      // empties the entry and the parked session is silently forgotten.
      if (keep != i) parked_[keep] = std::move(parked_[i]);
      keep++;
    }
    parked_.resize(keep);
  }
  for (auto& c : due) {
    if (c->parked.exchange(false)) Enqueue(c);
  }
}

void Server::ReapIdleInTxn(uint64_t now) {
  if (idle_txn_timeout_us_ == 0) return;
  if (now < next_idle_sweep_us_) return;
  next_idle_sweep_us_ = now + (idle_txn_timeout_us_ / 4 > park_interval_us_
                                   ? idle_txn_timeout_us_ / 4
                                   : park_interval_us_);
  std::vector<ConnPtr> reap;
  for (auto& [fd, c] : conns_) {
    // A connection is idle-in-txn when its session holds a transaction
    // and nothing whatsoever is happening for it: not running or queued
    // on a worker, not parked on a wait, no pipelined ops buffered, no
    // inbound traffic. On the epoll thread those checks are stable —
    // every re-activation path (reads, token wakes, the deadline tick)
    // either runs on this thread or requires parked == true.
    if (c->phase.load(std::memory_order_relaxed) !=
        static_cast<int>(Conn::Phase::kInTxn)) {
      continue;
    }
    if (c->parked.load(std::memory_order_acquire)) continue;
    if (c->sched.load(std::memory_order_acquire) != Conn::kIdle) continue;
    {
      std::lock_guard<std::mutex> l(c->ops_mu);
      if (!c->ops.empty()) continue;
    }
    if (now - c->last_activity_us.load(std::memory_order_relaxed) <
        idle_txn_timeout_us_) {
      continue;
    }
    reap.push_back(c);
  }
  for (auto& c : reap) {
    idle_reaped_.fetch_add(1, std::memory_order_relaxed);
    // Best-effort FATAL-style frame (PostgreSQL's
    // idle_in_transaction_session_timeout analogue), then teardown: the
    // worker pass triggered by CloseConn aborts the transaction, which
    // releases its row locks and un-pins the snapshot horizon.
    {
      std::lock_guard<std::mutex> l(c->out_mu);
      c->out += EncodeResponse(Code::kSerializationFailure,
                               "idle-in-transaction timeout");
    }
    FlushWrites(c);
    CloseConn(c);
  }
}

void Server::NudgeEpoll(const ConnPtr& c) {
  if (c->attn_pending.exchange(true)) return;  // already listed
  {
    std::lock_guard<std::mutex> l(attn_mu_);
    attn_.push_back(c);
  }
  uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

// ---------------------------------------------------------------------------
// workers
// ---------------------------------------------------------------------------

void Server::WorkerLoop() {
  for (;;) {
    ConnPtr c;
    {
      std::unique_lock<std::mutex> l(run_mu_);
      run_cv_.wait(l, [&] {
        return stopping_.load(std::memory_order_acquire) ||
               !run_queue_.empty();
      });
      if (stopping_.load(std::memory_order_acquire)) return;
      c = std::move(run_queue_.front());
      run_queue_.pop_front();
    }
    c->sched.store(Conn::kRunning, std::memory_order_release);
    RunConn(c);
    int expected = Conn::kRunning;
    if (!c->sched.compare_exchange_strong(expected, Conn::kIdle)) {
      // A wake arrived while we ran: loop it back through the queue.
      c->sched.store(Conn::kQueued, std::memory_order_release);
      {
        std::lock_guard<std::mutex> l(run_mu_);
        run_queue_.push_back(std::move(c));
      }
      run_cv_.notify_one();
    }
  }
}

void Server::Enqueue(const ConnPtr& c) {
  for (;;) {
    int s = c->sched.load(std::memory_order_acquire);
    if (s == Conn::kQueued || s == Conn::kRunningRequeue) return;
    if (s == Conn::kIdle) {
      if (c->sched.compare_exchange_weak(s, Conn::kQueued)) {
        {
          std::lock_guard<std::mutex> l(run_mu_);
          run_queue_.push_back(c);
        }
        run_cv_.notify_one();
        return;
      }
    } else {  // kRunning
      if (c->sched.compare_exchange_weak(s, Conn::kRunningRequeue)) return;
    }
  }
}

void Server::RunConn(const ConnPtr& c) {
  for (;;) {
    if (c->closing.load(std::memory_order_acquire)) {
      // Socket gone: abort the in-flight transaction (releases its
      // locks, waking any session parked behind them) and drop the
      // remaining pipeline.
      (void)c->session.Abort();
      std::lock_guard<std::mutex> l(c->ops_mu);
      c->ops.clear();
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    if (c->write_paused.load(std::memory_order_acquire)) {
      write_pauses_.fetch_add(1, std::memory_order_relaxed);
      return;  // resumed by FlushWrites once the reader catches up
    }
    Request req;
    {
      std::lock_guard<std::mutex> l(c->ops_mu);
      if (c->ops.empty()) return;
      req = c->ops.front();  // copy: pop only after completion
    }
    if (NetFault("net_drop_before_exec")) {
      // Connection dies with the request parsed but unexecuted: loop to
      // the closing branch (abort + drop the pipeline); the epoll
      // thread closes the fd via the attention list.
      c->closing.store(true, std::memory_order_release);
      NudgeEpoll(c);
      continue;
    }
    if (!ExecuteOp(c, req)) return;  // parked
    size_t qn;
    {
      std::lock_guard<std::mutex> l(c->ops_mu);
      c->ops.pop_front();
      qn = c->ops.size();
    }
    ops_executed_.fetch_add(1, std::memory_order_relaxed);
    c->last_activity_us.store(NowMicros(), std::memory_order_relaxed);
    // Response bytes are waiting; if the intake was paused and we have
    // drained half the queue, ask for more.
    if (qn <= backpressure_ops_ / 2) {
      c->want_read_rearm.store(true, std::memory_order_release);
    }
    NudgeEpoll(c);
  }
}

bool Server::ExecuteOp(const ConnPtr& c, const Request& req) {
  Session& s = c->session;
  Status st;
  std::string payload;
  switch (req.op) {
    case Op::kPing:
      break;
    case Op::kCreateTable: {
      TableId id = kInvalidTable;
      st = db_->CreateTable(req.name, &id);
      // Open-or-create: AlreadyExists still reports the id.
      if (st.ok() || st.code() == Code::kAlreadyExists) {
        payload.clear();
        PutU32(&payload, id);
        st = Status::OK();
      }
      break;
    }
    case Op::kOpenTable: {
      const TableId id = db_->GetTableId(req.name);
      if (id == kInvalidTable) {
        st = Status::NotFound("table " + req.name);
      } else {
        PutU32(&payload, id);
      }
      break;
    }
    case Op::kBegin:
      st = s.TryBegin(TxnOptionsFromBegin(req));
      break;
    case Op::kGet: {
      std::string v;
      st = s.TryGet(req.table, req.key, &v);
      if (st.ok()) payload = std::move(v);
      break;
    }
    case Op::kPut:
      st = s.TryPut(req.table, req.key, req.value);
      break;
    case Op::kInsert:
      st = s.TryInsert(req.table, req.key, req.value);
      break;
    case Op::kDelete:
      st = s.TryDelete(req.table, req.key);
      break;
    case Op::kScan: {
      std::vector<std::pair<std::string, std::string>> rows;
      st = s.TryScan(req.table, req.key, req.value, &rows);
      if (st.ok()) {
        PutU32(&payload, static_cast<uint32_t>(rows.size()));
        for (const auto& [k, v] : rows) {
          PutStr16(&payload, k);
          PutStr32(&payload, v);
        }
      }
      break;
    }
    case Op::kCount: {
      uint64_t cnt = 0;
      st = s.TryCount(req.table, req.key, req.value, &cnt);
      if (st.ok()) PutU64(&payload, cnt);
      break;
    }
    case Op::kCommit:
      c->phase.store(static_cast<int>(Conn::Phase::kCommitting),
                     std::memory_order_relaxed);
      st = s.TryCommit();
      break;
    case Op::kAbort:
      st = s.Abort();
      break;
  }

  if (st.IsWouldBlock()) {
    would_blocks_.fetch_add(1, std::memory_order_relaxed);
    if (NetFault("net_drop_parked")) {
      // Connection dies exactly where it would have parked — the wait
      // registration must unwind cleanly through the abort path.
      c->closing.store(true, std::memory_order_release);
      NudgeEpoll(c);
      return true;  // RunConn's closing branch takes it from here
    }
    c->phase.store(static_cast<int>(req.op == Op::kCommit
                                        ? Conn::Phase::kCommitting
                                        : Conn::Phase::kAwaitingLock),
                   std::memory_order_relaxed);
    // Park. Order matters: mark parked, register the deadline tick,
    // THEN hook the token — a token that already fired runs the
    // callback inline and wins the exchange immediately.
    c->park_deadline_us = NowMicros() + s.retry_interval_us();
    c->parked.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> l(parked_mu_);
      parked_.push_back(c);
    }
    // Kick the epoll thread out of a possibly-indefinite epoll_wait: on
    // a quiet server it must switch to the parked-tick timeout NOW, or
    // this session's deadline (lock wait, commit gate) never fires.
    NudgeEpoll(c);
    if (auto token = s.wait_token()) {
      std::weak_ptr<Conn> w = c;
      token->OnSignal([this, w] {
        if (ConnPtr cc = w.lock()) {
          // Delayed/lost wake: swallow the signal and let the epoll
          // thread's deadline tick backstop the re-poll.
          if (NetFault("net_wake_delay")) return;
          if (cc->parked.exchange(false)) Enqueue(cc);
        }
      });
    }
    return false;
  }

  if (req.op == Op::kCommit && NetFault("net_drop_after_commit")) {
    // The ack-loss window: the transaction's fate is decided (commit
    // durably applied, or a definite error) but the connection dies
    // before the response frame is queued. The client MUST treat a
    // dropped commit as ambiguous — its retry observes the committed
    // state (e.g. kAlreadyExists on a re-insert) rather than an ack.
    c->closing.store(true, std::memory_order_release);
    NudgeEpoll(c);
    return true;
  }

  c->phase.store(static_cast<int>(s.in_txn() ? Conn::Phase::kInTxn
                                             : Conn::Phase::kIdle),
                 std::memory_order_relaxed);
  const std::string frame =
      EncodeResponse(st.code(), st.ok() ? payload : st.message());
  {
    std::lock_guard<std::mutex> l(c->out_mu);
    c->out += frame;
    if (c->out.size() - c->out_off > write_queue_bytes_) {
      c->write_paused.store(true, std::memory_order_release);
    }
  }
  return true;
}

}  // namespace pgssi::net
