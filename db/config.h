// Engine configuration knobs, isolation levels, and SSI statistics.
//
// EngineConfig mirrors the PostgreSQL GUCs the paper discusses:
// max_locks_per_page / max_pages_per_relation drive multi-granularity
// SIREAD promotion (Section 5.1), enable_read_only_opt gates the
// Section 4 read-only optimizations, enable_commit_ordering_opt gates the
// Section 3.3.1 commit-ordering refinement of the dangerous-structure
// test, and enable_safe_retry selects the Section 5.4 victim policy.
#pragma once

#include <cstdint>
#include <string>

#include "util/types.h"

namespace pgssi {

// Default SIREAD lock-table partition count (see EngineConfig).
inline constexpr uint32_t kLockPartitions = 16;

// Default per-table heap-latch stripe count (see EngineConfig).
inline constexpr uint32_t kHeapStripes = 64;

enum class IsolationLevel {
  kRepeatableRead,  // plain snapshot isolation
  kSerializable,    // SSI (or S2PL, per DatabaseOptions::serializable_impl)
};

enum class SerializableImpl {
  kSSI,   // serializable snapshot isolation (the paper's contribution)
  kS2PL,  // strict two-phase locking baseline, as in the figure benches
};

enum class IndexGapLocking {
  kPage,     // lock B+-tree leaf pages read by scans (shipping, Section 5.2.1)
  kNextKey,  // next-key tuple granularity (stated future work)
};

// WAL durability barrier on commit (the analogue of PostgreSQL's
// synchronous_commit / group-commit settings; see wal/wal_writer.h).
enum class WalFsyncMode : uint32_t {
  kOff,     // append the commit record, never fsync on commit: an
            // acknowledged commit survives process death only if the OS
            // flushed it (synchronous_commit=off). Clean Close still
            // syncs.
  kBatch,   // group commit: the fsync leader accumulates up to
            // wal_fsync_batch commit records (bounded wait, only while
            // sibling commits are in flight), fsyncs once, and the whole
            // batch publishes through the completion ring together —
            // one fsync per published watermark batch.
  kAlways,  // every commit blocks on an fsync covering its own record
            // (batch target 1); concurrent commits still coalesce
            // behind an in-progress fsync, which never weakens the
            // guarantee — the data was already durable.
};

struct EngineConfig {
  // SIREAD lock promotion thresholds (tuple -> page -> relation).
  uint32_t max_locks_per_page = 16;
  uint32_t max_pages_per_relation = 64;

  // Number of independent SIREAD lock-table partitions (hash of the lock
  // granule), the analogue of PostgreSQL's NUM_PREDICATELOCK_PARTITIONS.
  // Rounded up to a power of two internally; 1 reproduces the old
  // single-global-mutex behavior (the bench_lockmgr A/B baseline).
  uint32_t lock_partitions = kLockPartitions;

  // Number of heap-latch stripes per table. Version chains hash (by
  // TupleId) onto stripes, so writers of independent keys take
  // independent latches; only structural index operations (new-key
  // insert, leaf split, aborted-insert removal) serialize on the
  // table's index latch. Rounded up to a power of two internally;
  // 1 reproduces the old one-latch-per-table behavior (the
  // bench_sibench --heap-stripes=1 A/B baseline).
  uint32_t heap_stripes = kHeapStripes;

  // Conflict-graph locking (the rw-antidependency edge lists, sticky
  // summary flags, and dangerous-structure tests). 1 (default) = the
  // PostgreSQL-style fine-grained design: a per-SerializableXact edge
  // lock, acquired in ascending-xid order for the <=2 parties of an
  // edge, with the registry lock taken shared on the flagging path and
  // exclusive only for xact registration/teardown. 0 = the old design:
  // one global mutex around every conflict-graph operation, kept as a
  // same-binary A/B baseline (bench_lockmgr --conflict-lock-mode=0).
  uint32_t conflict_lock_mode = 1;

  // Section 4: read-only snapshot ordering / safe snapshot optimizations.
  bool enable_read_only_opt = true;

  // Section 3.3.1: only abort a pivot whose outgoing edge leads to a
  // *committed* transaction; off = abort on any in+out flag pair.
  bool enable_commit_ordering_opt = true;

  // Section 5.4: prefer victims whose retry cannot immediately fail again
  // (wait until the conflicting transaction has committed). Off aborts a
  // pivot eagerly as soon as the structure forms.
  bool enable_safe_retry = true;

  // Section 7.3: a write by the same transaction supersedes its own SIREAD
  // lock on that tuple (the write set is tracked anyway).
  bool enable_write_supersedes_siread = true;

  // Optimistic lock coupling for index access. 1 (default) = latch-free
  // B+-tree descent with version validation: readers and single-leaf
  // inserts never touch the per-table index latch (index_mu); SIREAD
  // acquisition follows the acquire-then-validate protocol (see
  // index/btree.h) and aborted-insert index GC is deferred to
  // RunSireadCleanup. 0 = the old regime: every index access wraps in
  // index_mu (shared for reads/chain writes, exclusive for new-key
  // insert and abort GC), kept as a same-binary A/B baseline
  // (bench_sibench --index-olc=0).
  uint32_t index_olc = 1;

  // Epoch-based reclamation for conflict-graph xacts and index objects.
  // 1 (default) = teardown unlinks under shared/sharded locks and hands
  // freed memory to a grace-period limbo (util/epoch.h): Abort and
  // Cleanup never take the xact-registry lock exclusive, and the OLC
  // tree's retired entries / dead leaves are actually freed once every
  // thread has passed the epoch. 0 = the old regime — exclusive
  // registry teardown sweeps and type-stable index memory retired until
  // tree destruction — kept as a same-binary A/B baseline
  // (bench_lockmgr --epoch-reclaim=0).
  uint32_t epoch_reclaim = 1;

  // Index-gap (phantom) lock granularity for scans.
  IndexGapLocking index_gap_locking = IndexGapLocking::kPage;

  // ----- durability (wal/) -----
  // Off by default: the engine stays memory-only unless a WAL directory
  // is configured, which keeps every non-durability benchmark and test
  // on the zero-I/O path.
  bool wal_enabled = false;
  // Directory holding wal.log; created if absent. Required (non-empty)
  // when wal_enabled.
  std::string wal_dir;
  // Commit-time durability barrier; see WalFsyncMode. The three modes
  // are a same-binary A/B for bench_dbt2_disk.
  WalFsyncMode wal_fsync = WalFsyncMode::kBatch;
  // Group-commit accumulation target: the fsync leader waits (bounded,
  // and only while other commits are in flight) until this many commit
  // records are unsynced before paying the fsync. 1 degenerates to
  // per-commit fsync.
  uint32_t wal_fsync_batch = 64;

  // Per-heap-access stall, used by the disk-bound bench configurations.
  uint64_t simulated_io_delay_us = 0;

  // B+-tree leaf/inner fanout.
  uint32_t btree_fanout = 64;

  // Row-lock wait ceiling (fallback; the wait-for graph detects real
  // deadlocks much sooner).
  uint64_t lock_wait_timeout_us = 2'000'000;
  // How often a blocked locker re-runs deadlock detection. Also the
  // deadline-poll interval for parked sessions with no wait token
  // (DEFERRABLE safe-snapshot waits) and the net server's parked-session
  // re-check backstop.
  uint64_t deadlock_check_interval_us = 2'000;

  // ----- network front end (net/) -----
  // Worker threads executing session steps — sized to cores, NOT to
  // connections (sessions are state machines multiplexed over this
  // pool; a parked session costs no thread).
  uint32_t net_workers = 4;
  // Accept ceiling: connections beyond this are refused at accept time.
  uint32_t net_max_sessions = 4096;
  // Per-session backpressure: max parsed-but-unexecuted pipelined ops
  // buffered engine-side; past this the server stops reading the
  // connection's socket until the queue drains (responses are never
  // dropped).
  uint32_t net_backpressure_ops = 32;
  // Per-session outbound byte cap for slow readers: while a session's
  // write queue exceeds this, the server pauses executing its ops (the
  // kernel socket buffer plus this queue bound total memory per slow
  // client).
  uint32_t net_write_queue_bytes = 256 * 1024;
  // Idle-in-transaction reaping (PostgreSQL's
  // idle_in_transaction_session_timeout): a connection that holds an
  // open transaction but has had no traffic for this long is sent a
  // best-effort error frame, its session aborted, and the connection
  // closed — a vanished/stalled client cannot pin OldestActiveSnapshot
  // or hold row locks forever. 0 (default) disables the sweep: an idle
  // open transaction is then allowed to pin the horizon indefinitely,
  // exactly like PostgreSQL with the GUC unset.
  uint64_t idle_in_txn_timeout_us = 0;
  // Retry-after hint (milliseconds) carried by the kOverloaded refusal
  // frame when a connection is declined over net_max_sessions. Purely
  // advisory; well-behaved clients (WireDbClient) back off at least
  // this long before reconnecting.
  uint32_t net_overload_retry_after_ms = 50;
};

struct DatabaseOptions {
  EngineConfig engine;
  SerializableImpl serializable_impl = SerializableImpl::kSSI;
};

struct TxnOptions {
  IsolationLevel isolation = IsolationLevel::kRepeatableRead;
  bool read_only = false;
  // DEFERRABLE read-only serializable transaction: block at Begin until a
  // safe snapshot (Section 4 / Section 8.4) is available, then run with no
  // SSI tracking at all.
  bool deferrable = false;
};

struct SsiStats {
  uint64_t ssi_aborts = 0;            // dangerous-structure aborts
  uint64_t ww_aborts = 0;             // first-updater-wins conflicts
  uint64_t s2pl_deadlocks = 0;        // deadlock victims (S2PL mode)
  uint64_t page_promotions = 0;       // tuple -> page SIREAD promotions
  uint64_t relation_promotions = 0;   // page -> relation SIREAD promotions
  uint64_t safe_snapshots = 0;        // read-only txns granted safe snapshots
  uint64_t deferrable_retries = 0;    // unsafe snapshots discarded at Begin
};

}  // namespace pgssi
