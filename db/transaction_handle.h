// Public engine API: Database and Transaction handles.
//
// Database::Open builds an MVCC storage engine with:
//  - REPEATABLE READ = plain snapshot isolation (commit-seq snapshots,
//    blocking first-updater-wins write conflicts);
//  - SERIALIZABLE = SSI (SIREAD locks + rw-antidependency tracking with
//    dangerous-structure aborts) or, when
//    DatabaseOptions::serializable_impl == SerializableImpl::kS2PL,
//    strict two-phase locking.
// Transactions are single-threaded handles; the Database is safe for
// concurrent use from many threads, each with its own Transaction.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "db/config.h"
#include "db/lock_table.h"
#include "index/btree.h"
#include "ssi/siread_lock_manager.h"
#include "txn/txn_manager.h"
#include "util/epoch.h"
#include "util/status.h"
#include "util/striped_latch.h"
#include "util/wait_token.h"
#include "util/wp_shared_mutex.h"
#include "util/types.h"
#include "wal/wal_recovery.h"
#include "wal/wal_writer.h"

namespace pgssi {

class Transaction;
class Session;

class Database {
 public:
  /// Destruction contract: the owner must ensure no Transaction or
  /// Session outlives the Database (the net server drains its sessions
  /// in Stop() before the Database dies). ~Database then quiesces the
  /// epoch limbo and closes the WAL explicitly, so every subsystem that
  /// retires memory through the EpochManager (first member, destroyed
  /// last) tears down while the manager is still fully alive.
  ///
  /// With EngineConfig::wal_enabled, Open runs crash recovery first:
  /// scan wal_dir/wal.log up to the first torn/CRC-failing record,
  /// rebuild tables + tuple chains + index from the committed prefix
  /// (abort-marked seqs skipped), restart the xid/seq allocators past
  /// the recovered maximum, truncate the torn tail, and resume
  /// appending. SIREAD/conflict-graph state is deliberately NOT logged:
  /// no transaction survives a crash, so per the paper's PostgreSQL
  /// integration it recovers empty (see README "Durability").
  /// Returns nullptr (with `*status` set, if given) when the WAL cannot
  /// be opened or recovered.
  static std::unique_ptr<Database> Open(const DatabaseOptions& opts = {},
                                        Status* status = nullptr);
  ~Database();

  Status CreateTable(const std::string& name, TableId* id);
  /// kInvalidTable when the name is unknown.
  TableId GetTableId(const std::string& name) const;

  std::unique_ptr<Transaction> Begin(const TxnOptions& opts = {});

  SsiStats GetSsiStats() const;
  const DatabaseOptions& options() const { return opts_; }

  // ----- test/debug introspection -----
  /// Chains holding at least one version (i.e. not recycled/empty).
  size_t LiveTupleChainCount(TableId table) const;
  /// Entries currently present in the table's B+-tree.
  size_t IndexEntryCount(TableId table) const;
  /// Leaves currently linked into the table's B+-tree chain (the
  /// empty-leaf recycling regression asserts this stays bounded).
  size_t IndexLeafCount(TableId table) const;
  /// Test-only: force the next `n` index insert attempts on `table` to
  /// restart after their gap probe (exercises the OLC restart path).
  void TestForceIndexInsertRestarts(TableId table, int n);
  /// Cross-checks the SIREAD lock tables against holder bookkeeping.
  bool CheckSsiLockConsistency() const { return siread_.CheckConsistency(); }
  /// SIREAD lock-table entry counts (the gap-transfer growth-bound
  /// regression asserts on these).
  size_t SireadTupleLockCount() const { return siread_.TupleLockCount(); }
  size_t SireadPageLockCount() const { return siread_.PageLockCount(); }
  /// Commit watermark (recovery restarts it past the recovered log).
  uint64_t LastCommittedSeq() const { return txn_mgr_.LastCommittedSeq(); }
  /// Smallest snapshot among active transactions (UINT64_MAX when none):
  /// what a slow/stalled wire session pins — the slow-client test
  /// asserts a parked session stretches this exactly like an embedded
  /// transaction would.
  uint64_t OldestActiveSnapshot() const {
    return txn_mgr_.OldestActiveSnapshot();
  }
  /// Distinct keys currently held or waited on in the row-lock table
  /// (drains to 0 after every session finishes — shutdown regressions).
  size_t RowLockCount() const { return row_locks_.LockedKeyCount(); }
  /// fsyncs issued by the WAL writer (0 when WAL is disabled) — the
  /// bench's fsyncs-per-commit metric and the group-commit regressions.
  uint64_t WalFsyncCount() const { return wal_ ? wal_->fsync_count() : 0; }
  /// Epoch-reclamation introspection: objects sitting in the grace-period
  /// limbo right now (xacts, SIREAD granule sets, index entries/leaves)
  /// and the cumulative freed-for-real count. The reclamation regression
  /// asserts retired drains to 0 after quiesce; the bench samples it as
  /// a retired-memory gauge.
  size_t EpochRetiredObjectCount() const {
    return epoch_.RetiredObjectCount() + IndexRetiredObjectCount();
  }
  uint64_t EpochFreedObjectCount() const { return epoch_.FreedObjectCount(); }
  /// Exclusive acquisitions of the SIREAD xact-registry lock — the
  /// epoch-mode audit counter (must not grow during teardown churn).
  uint64_t SireadRegistryExclusiveAcquires() const {
    return siread_.registry_exclusive_acquires();
  }
  /// Objects (retired index entries + dead leaves) every table's tree is
  /// still holding: limbo-resident in epoch mode, type-stable-retained
  /// in legacy mode.
  size_t IndexRetiredObjectCount() const;
  /// Drive the epoch machinery to a fully drained limbo. Quiescent
  /// points only (no concurrent transactions).
  void QuiesceEpochs();

 private:
  friend class Transaction;
  friend class Session;

  struct Version {
    std::string value;
    XactId xid;           // writer
    uint64_t commit_seq;  // 0 while uncommitted
    bool deleted;
  };
  // The heap keeps no (page, slot) copy: the index owns granule
  // coordinates, and every SIREAD acquire/probe uses what the index
  // reports for that access — a stored copy would go stale when a leaf
  // split relocates the entry.
  struct TupleChain {
    std::string key;
    std::vector<Version> versions;  // oldest first
  };
  // Lock-free-read segmented chain storage (replaces std::deque):
  // resolving a TupleId is two atomic loads and never takes a latch, so
  // OLC-mode inserts can append chains while readers resolve others.
  // Segments are allocated under Table::alloc_mu and never freed or
  // moved until destruction; a TupleId resolved once stays valid.
  class ChainStore {
   public:
    static constexpr size_t kSegBits = 13;
    static constexpr size_t kSegSize = size_t{1} << kSegBits;
    static constexpr size_t kMaxSegs = size_t{1} << 13;  // 67M chains
    ChainStore() {
      for (auto& s : segs_) s.store(nullptr, std::memory_order_relaxed);
    }
    ~ChainStore() {
      for (auto& s : segs_) delete[] s.load(std::memory_order_relaxed);
    }
    TupleChain& operator[](TupleId tid) const {
      return segs_[static_cast<size_t>(tid) >> kSegBits].load(
          std::memory_order_acquire)[static_cast<size_t>(tid) &
                                     (kSegSize - 1)];
    }
    size_t size() const { return size_.load(std::memory_order_acquire); }
    /// Appends one empty chain. Caller holds Table::alloc_mu.
    TupleId Append() {
      const size_t n = size_.load(std::memory_order_relaxed);
      auto& seg = segs_[n >> kSegBits];
      if (seg.load(std::memory_order_relaxed) == nullptr) {
        seg.store(new TupleChain[kSegSize], std::memory_order_release);
      }
      size_.store(n + 1, std::memory_order_release);
      return static_cast<TupleId>(n);
    }

   private:
    mutable std::array<std::atomic<TupleChain*>, kMaxSegs> segs_;
    std::atomic<size_t> size_{0};
  };
  // Table latching (lock order, outermost first: row locks > index_mu
  // [index_olc=0 only] > heap stripe > B+-tree structure lock > leaf
  // version locks (chain order) > alloc_mu > SIREAD partition >
  // per-xact spinlocks/edge locks):
  //  - index_mu exists for the index_olc=0 A/B baseline only: readers
  //    and single-chain writers take it SHARED, structural operations
  //    (new-key insert, aborted-insert GC) take it exclusive. It is a
  //    WRITER-PREFERRING latch (util/wp_shared_mutex.h): glibc's
  //    reader-preferring rwlock let free-running scanners starve an
  //    insert forever, and the starved insert's open snapshot froze the
  //    SIREAD cleanup bound — unbounded holder-list growth, livelock.
  //    Its shared scopes must stay flat (no recursive shared
  //    acquisition) — see the contract in wp_shared_mutex.h. With
  //    index_olc=1 nothing acquires it: descent is latch-free and
  //    validated, inserts lock only the touched leaves (see
  //    index/btree.h for the acquire-then-validate protocol).
  //  - heap_latch stripes (hash of TupleId) guard chain content: chain
  //    readers take their stripe shared, chain writers exclusive. This
  //    is what lets writers of independent keys run concurrently.
  //  - alloc_mu guards ChainStore::Append and free_chains. free_chains
  //    recycles TupleIds of chains whose creating insert aborted; a
  //    chain enters it only AFTER its index entry is gone (inline with
  //    rollback when index_olc=0, in DrainIndexGc when index_olc=1).
  //  - epoch pins (EngineConfig::epoch_reclaim, not locks, no order):
  //    every region that descends or validates against the B+-tree, and
  //    every tree-mutating region, runs under an EpochManager::Pin so
  //    epoch-retired entries/nodes stay dereferenceable until the region
  //    ends. Pins are never held across a blocking row-lock wait (that
  //    would stall reclamation for the whole engine).
  struct Table {
    Table(TableId i, std::string n, uint32_t fanout, uint32_t stripes,
          util::EpochManager* epoch)
        : id(i),
          name(std::move(n)),
          index(fanout, epoch),
          heap_latch(stripes) {}
    TableId id;
    std::string name;
    mutable util::WpSharedMutex index_mu;
    BTree index;  // key -> TupleId (+ page/slot granule)
    ChainStore tuples;
    std::mutex alloc_mu;
    std::vector<TupleId> free_chains;
    StripedLatch heap_latch;
  };

  explicit Database(const DatabaseOptions& opts);
  Table* GetTable(TableId id) const;
  void RunSireadCleanup();
  /// The manager tree descents must pin against, or null when epoch
  /// reclamation is off (legacy type-stable memory needs no pins).
  util::EpochManager* EpochForPins() {
    return opts_.engine.epoch_reclaim != 0 ? &epoch_ : nullptr;
  }

  // ----- durability (wal/) -----
  // Scan + replay + writer reopen; called once from Open, before any
  // transaction exists (replay therefore mutates tables without
  // latches). wal_ stays null when wal_enabled is off OR until replay
  // succeeds, so recovery-time CreateTable never re-logs records.
  Status InitWal();
  Status ReplayRecovered(const wal::WalScanResult& scan);

  // Deferred aborted-insert index GC (index_olc=1): rollback of a
  // created chain only empties it and enqueues a record here; the erase
  // (+ coverage transfer + chain recycle) happens in DrainIndexGc, off
  // the insert path. A record whose chain got re-populated meanwhile is
  // re-enqueued (uncommitted writer) or dropped (committed — the chain
  // is live again).
  struct IndexGcRec {
    TableId table;
    TupleId tid;
  };
  void EnqueueIndexGc(TableId table, TupleId tid);
  void DrainIndexGc();
  BTree::EraseHooks MakeEraseHooks(Table* tbl);

  // Declared FIRST so it is destroyed LAST: the SIREAD manager and every
  // table's tree hand memory to the limbo from their own destructors.
  util::EpochManager epoch_;
  DatabaseOptions opts_;
  txn::TxnManager txn_mgr_;
  ssi::SireadLockManager siread_;
  LockTable row_locks_;
  // Null unless wal_enabled and recovery succeeded. The writer's own
  // mutex is a LEAF in the lock order: Transaction::Commit appends while
  // holding no engine lock (the redo payload is built, and versions are
  // stamped, under heap stripes released in between); CreateTable is
  // the one caller that appends under another lock (tables_mu_, to keep
  // log order == id order), and nothing ever takes tables_mu_ while
  // holding the WAL mutex.
  std::unique_ptr<wal::WalWriter> wal_;
  // Commits currently inside the write path; the group-commit leader
  // only dwells for stragglers when this exceeds 1 (the commit_delay /
  // commit_siblings analogue).
  std::atomic<uint32_t> wal_commits_in_flight_{0};

  mutable std::shared_mutex tables_mu_;
  std::vector<std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, TableId> table_names_;

  std::mutex gc_mu_;
  std::vector<IndexGcRec> gc_queue_;

  std::atomic<uint64_t> ww_aborts_{0};
  std::atomic<uint64_t> s2pl_deadlocks_{0};
  std::atomic<uint64_t> safe_snapshots_{0};
  std::atomic<uint64_t> deferrable_retries_{0};
};

class Transaction {
 public:
  ~Transaction();
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  Status Get(TableId table, const std::string& key, std::string* value);
  /// Upsert.
  Status Put(TableId table, const std::string& key, const std::string& value);
  /// Fails with kAlreadyExists if a (visible) row exists.
  Status Insert(TableId table, const std::string& key,
                const std::string& value);
  Status Delete(TableId table, const std::string& key);
  /// Inclusive range scan of visible rows, in key order.
  Status Scan(TableId table, const std::string& lo, const std::string& hi,
              std::vector<std::pair<std::string, std::string>>* out);
  Status Count(TableId table, const std::string& lo, const std::string& hi,
               uint64_t* n);

  Status Commit();
  /// Idempotent; a failed statement has already rolled the txn back.
  Status Abort();

  XactId xid() const { return xid_; }
  IsolationLevel isolation() const { return opts_.isolation; }
  bool read_only() const { return opts_.read_only; }
  bool finished() const { return finished_; }

 private:
  friend class Database;
  friend class Session;
  Transaction(Database* db, const TxnOptions& opts);

  /// Runs the Begin work (snapshot, registration, DEFERRABLE safe-
  /// snapshot machinery). Blocking callers (Database::Begin) pass
  /// non_blocking=false and always get kOk. Sessions pass true: a
  /// DEFERRABLE begin that must wait out concurrent rw transactions
  /// returns kWouldBlock with the pending state parked in def_* members
  /// — re-calling Start resumes the state machine. Idempotent once
  /// started.
  Status Start(bool non_blocking);

  struct WriteRec {
    TableId table;
    TupleId tid;
    // This statement created the chain (new-key insert): rollback must
    // also remove the index entry and recycle the chain.
    bool created = false;
  };

  Status CheckActive();
  void AbortInternal();
  /// All five row-lock call sites funnel through here. Blocking mode
  /// wraps LockTable::Acquire unchanged. Non-blocking mode (sessions)
  /// uses AcquireAsync: on conflict it parks a fresh WaitToken in
  /// wait_token_ and returns kWouldBlock — crucially BEFORE any
  /// mutation, epoch pin, or latch is taken, so the caller can simply
  /// re-issue the same operation after the token fires (Acquire is
  /// re-entrant; already-granted locks are kept). The lock-wait
  /// deadline spans suspensions via wait_started_us_.
  Status AcquireRowLock(TableId table, const std::string& key,
                        LockTable::Mode mode);
  // Serializes this transaction's write set into a kCommit payload (seq
  // left as a placeholder; *seq_offset feeds wal::PatchCommitSeq inside
  // the stamp callback, where the seq finally exists).
  void BuildWalCommitPayload(std::string* payload, size_t* seq_offset);
  // Shared read/SSI-tracking core for Get/Scan/Count.
  Status ScanInternal(
      TableId table, const std::string& lo, const std::string& hi,
      const std::function<void(const std::string&, const std::string&)>& fn);
  Status WriteInternal(TableId table, const std::string& key,
                       const std::string& value, bool deleted, bool upsert);
  // Picks the version visible to this txn; returns index into the chain or
  // -1. Also reports whether any *later* (invisible) version exists.
  int VisibleVersion(const Database::TupleChain& chain) const;
  // `page`/`slot` must be the granule coordinates the index reported for
  // this access, so SIREAD locks land where writers will probe them even
  // after leaf splits relocate entries.
  void TrackRead(Database::Table* tbl, const Database::TupleChain& chain,
                 int visible_idx, PageId page, uint32_t slot);
  // SIREAD-lock the gap `key` falls into (next-key tuple or leaf page,
  // per EngineConfig::index_gap_locking). Self-validating: resolves the
  // gap optimistically, acquires, then validates the index view and
  // retries on mismatch (a no-op spin when index_olc=0, where the
  // caller's shared index latch excludes structural changes).
  void AcquireGapLock(Database::Table* tbl, const std::string& key);

  Database* db_;
  TxnOptions opts_;
  XactId xid_ = kInvalidXact;
  uint64_t snapshot_seq_ = 0;
  bool use_ssi_ = false;   // SERIALIZABLE via SSI
  bool use_s2pl_ = false;  // SERIALIZABLE via strict 2PL
  ssi::SerializableXact* sxact_ = nullptr;
  bool finished_ = false;
  std::vector<WriteRec> writes_;

  // ----- non-blocking session mode (db/session.h) -----
  bool non_blocking_ = false;
  bool started_ = false;
  // Token for the most recent kWouldBlock (null => no wakeup source;
  // the caller deadline-polls, e.g. DEFERRABLE begin waits).
  util::WaitTokenPtr wait_token_;
  // First would-block instant of the currently-retried operation; the
  // lock-wait timeout is enforced against it across suspensions — for
  // row-lock waits and for WAL commit-gate parks alike (a stalled fsync
  // otherwise parks a committer forever). Reset on every successful
  // lock acquisition batch completion (op finishes) and when the gate
  // opens.
  uint64_t wait_started_us_ = 0;
  // DEFERRABLE resumable state: a begun-but-unproven snapshot waiting
  // out def_concurrent_.
  bool def_pending_ = false;
  txn::TxnManager::BeginResult def_begin_{};
  std::vector<XactId> def_concurrent_;
};

}  // namespace pgssi
