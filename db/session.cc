#include "db/session.h"

namespace pgssi {

Session::~Session() { (void)Abort(); }

Status Session::TryBegin(const TxnOptions& opts) {
  if (in_txn()) {
    return Status::InvalidArgument("transaction already open");
  }
  if (!begin_pending()) {
    // Fresh begin. A finished txn handle (committed/aborted) is simply
    // replaced.
    txn_.reset(new Transaction(db_, opts));
  }
  // (Resumed TryBegin keeps the caller's original options: the pending
  // DEFERRABLE state lives inside the existing handle.)
  return txn_->Start(/*non_blocking=*/true);
}

Status Session::Precheck() {
  if (begin_pending()) {
    return Status::InvalidArgument("begin still pending (re-call TryBegin)");
  }
  if (!in_txn()) {
    return Status::InvalidArgument("no open transaction");
  }
  return Status::OK();
}

Status Session::TryGet(TableId table, const std::string& key,
                       std::string* value) {
  Status st = Precheck();
  return st.ok() ? txn_->Get(table, key, value) : st;
}

Status Session::TryPut(TableId table, const std::string& key,
                       const std::string& value) {
  Status st = Precheck();
  return st.ok() ? txn_->Put(table, key, value) : st;
}

Status Session::TryInsert(TableId table, const std::string& key,
                          const std::string& value) {
  Status st = Precheck();
  return st.ok() ? txn_->Insert(table, key, value) : st;
}

Status Session::TryDelete(TableId table, const std::string& key) {
  Status st = Precheck();
  return st.ok() ? txn_->Delete(table, key) : st;
}

Status Session::TryScan(TableId table, const std::string& lo,
                        const std::string& hi,
                        std::vector<std::pair<std::string, std::string>>* out) {
  Status st = Precheck();
  return st.ok() ? txn_->Scan(table, lo, hi, out) : st;
}

Status Session::TryCount(TableId table, const std::string& lo,
                         const std::string& hi, uint64_t* n) {
  Status st = Precheck();
  return st.ok() ? txn_->Count(table, lo, hi, n) : st;
}

Status Session::TryCommit() {
  Status st = Precheck();
  return st.ok() ? txn_->Commit() : st;
}

Status Session::Abort() {
  if (!txn_) return Status::OK();
  // Covers all three states: open (rolls back), mid-begin (deregisters
  // the pending DEFERRABLE xid via the !started_ path), finished
  // (no-op). A parked lock wait deregisters inside ReleaseAll.
  Status st = txn_->Abort();
  txn_.reset();
  return st;
}

}  // namespace pgssi
