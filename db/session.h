// Session: a detachable, non-blocking transaction handle.
//
// A Transaction is a thread-bound blocking handle; a Session wraps one
// in a *step API* — every call either completes immediately or returns
// kWouldBlock without suspending the calling thread. That is what lets
// the net server multiplex thousands of sessions over a handful of
// workers: a worker that hits kWouldBlock parks the session (on the
// accompanying wait token, or on a deadline poll when wait_token() is
// null) and picks up another session; ANY thread may later re-issue the
// same call — sessions are not pinned to the thread that created them.
//
// Step contract:
//  - On kWouldBlock, re-issue the *same* call with the same arguments
//    once wait_token() fires (or after retry_interval_us()). Every
//    would-block site in the engine sits BEFORE the operation's first
//    mutation, epoch pin, or latch, so re-issuing is always safe: row
//    locks already granted are simply re-entered, and out-parameters
//    are reset by the retried call.
//  - A wake is permission to retry, not a grant — the retry may
//    would-block again on a fresh token.
//  - Suspended sessions hold NO epoch pin and NO latch (pins are
//    function-scoped and taken only after all blocking acquisition
//    points — the "pins never across blocking waits" rule extends to
//    suspension). They DO hold their granted row locks (2PL requires
//    it); the wait-for graph covers deadlocks among parked sessions.
//  - Any non-would-block error from a step means the statement aborted
//    the transaction (exactly like the blocking API); the session is
//    then idle and a new TryBegin starts fresh.
//  - Abort() never blocks and is always legal.
//
// A Session is NOT internally synchronized: callers must serialize
// steps on a session (the net server's per-connection scheduling state
// guarantees single-worker execution; a session is never stepped by two
// threads at once).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "db/transaction_handle.h"
#include "util/wait_token.h"

namespace pgssi {

class Session {
 public:
  explicit Session(Database* db) : db_(db) {}
  /// Aborts any open (or mid-begin) transaction.
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Opens a transaction. kWouldBlock only for DEFERRABLE begins that
  /// must wait out concurrent read-write serializable transactions
  /// (wait_token() is null for those — deadline-poll); re-call TryBegin
  /// to resume.
  Status TryBegin(const TxnOptions& opts = {});

  Status TryGet(TableId table, const std::string& key, std::string* value);
  Status TryPut(TableId table, const std::string& key,
                const std::string& value);
  Status TryInsert(TableId table, const std::string& key,
                   const std::string& value);
  Status TryDelete(TableId table, const std::string& key);
  Status TryScan(TableId table, const std::string& lo, const std::string& hi,
                 std::vector<std::pair<std::string, std::string>>* out);
  Status TryCount(TableId table, const std::string& lo, const std::string& hi,
                  uint64_t* n);
  /// kWouldBlock at most once per commit, when a WAL group fsync is in
  /// flight (the commit gate); the retried commit runs to completion.
  Status TryCommit();
  /// Never blocks; idempotent.
  Status Abort();

  /// Begun and neither committed nor aborted (false while a DEFERRABLE
  /// begin is still pending).
  bool in_txn() const {
    return txn_ != nullptr && txn_->started_ && !txn_->finished_;
  }
  bool begin_pending() const {
    return txn_ != nullptr && !txn_->started_ && !txn_->finished_;
  }
  XactId xid() const { return txn_ ? txn_->xid() : kInvalidXact; }

  /// Wake-up source for the most recent kWouldBlock; null means there
  /// is no event source — poll at retry_interval_us(). Valid until the
  /// next step call.
  util::WaitTokenPtr wait_token() const {
    return txn_ ? txn_->wait_token_ : nullptr;
  }
  /// Backstop/poll interval for parked sessions: bounds deadlock- and
  /// deadline-detection latency even when a token never fires.
  uint64_t retry_interval_us() const {
    return db_->options().engine.deadlock_check_interval_us;
  }

 private:
  // Shared precheck for every post-begin step.
  Status Precheck();

  Database* db_;
  std::unique_ptr<Transaction> txn_;
};

}  // namespace pgssi
