// Blocking row-lock table.
//
// Used two ways:
//  - SI/SSI writers take per-key exclusive locks, giving PostgreSQL-style
//    first-updater-wins *blocking* (the second writer waits; if the first
//    commits, the waiter then fails its version check with a
//    serialization failure rather than failing instantly).
//  - In S2PL mode, reads additionally take shared locks and scans take a
//    coarse table-gap lock, all held to commit — the strict two-phase
//    locking baseline of the paper's figures.
//
// Deadlocks are detected by each blocked locker on its wakeup ticks: it
// computes its strongly connected component of the wait-for graph, which
// covers every cycle it participates in; the victim is the youngest
// (highest xid) member, which returns kSerializationFailure.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/status.h"
#include "util/types.h"
#include "util/wait_token.h"

namespace pgssi {

class LockTable {
 public:
  enum class Mode { kShared, kExclusive };

  /// Blocks until granted, deadlock victimhood, or timeout. Re-entrant;
  /// shared->exclusive upgrade is supported (sole sharer upgrades in
  /// place; otherwise waits for the other sharers).
  Status Acquire(XactId xid, TableId table, const std::string& key, Mode mode,
                 uint64_t timeout_us, uint64_t check_interval_us);

  /// Non-blocking grant-or-register: grants immediately when possible,
  /// otherwise registers `token` as an async waiter on the key and
  /// returns kWouldBlock. The token is signaled (once) when a holder
  /// releases the key — a wake is permission to retry AcquireAsync, not
  /// a grant. Deadlocks are checked at registration time: if the caller
  /// is the cycle victim it fails immediately; if another *parked async*
  /// xact is the victim, that xact's token is signaled so it wakes,
  /// retries, and discovers its own victimhood (blocked threads in the
  /// blocking path re-check on their own wakeup ticks). Callers enforce
  /// their own lock-wait deadline by passing `timed_out`, which converts
  /// a would-block into a serialization failure.
  Status AcquireAsync(XactId xid, TableId table, const std::string& key,
                      Mode mode, bool timed_out,
                      const util::WaitTokenPtr& token);

  void ReleaseAll(XactId xid);

  size_t LockedKeyCount() const;

 private:
  struct Entry {
    XactId exclusive = 0;
    std::unordered_set<XactId> sharers;
    int waiters = 0;
    // Parked sessions (one op in flight per session, so at most one
    // registration per xid engine-wide, tracked in async_wait_key_).
    std::unordered_map<XactId, util::WaitTokenPtr> async_waiters;
  };
  using Key = std::pair<TableId, std::string>;

  bool CanGrant(const Entry& e, XactId xid, Mode mode) const;
  // Blockers of `xid` on entry `e` right now.
  void Blockers(const Entry& e, XactId xid, std::vector<XactId>* out) const;
  // Victim xid of the wait-for cycle through `self`, or 0 if `self` is
  // not on any cycle. Every member of a deadlock computes the same
  // victim (max xid of the strongly connected component).
  XactId CycleVictim(XactId self) const;
  bool IsDeadlockVictim(XactId self) const {
    return CycleVictim(self) == self;
  }
  // Removes xid's async registration (entry waiter slot + index + wait
  // edges). Caller holds mu_.
  void DeregisterAsyncLocked(XactId xid);
  void MaybeEraseLocked(const Key& k);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<Key, Entry> locks_;
  std::unordered_map<XactId, std::vector<Key>> held_;
  std::unordered_map<XactId, std::vector<XactId>> waits_for_;
  // xid -> key it is async-parked on (at most one per xid).
  std::unordered_map<XactId, Key> async_wait_key_;
};

}  // namespace pgssi
