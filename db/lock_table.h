// Blocking row-lock table.
//
// Used two ways:
//  - SI/SSI writers take per-key exclusive locks, giving PostgreSQL-style
//    first-updater-wins *blocking* (the second writer waits; if the first
//    commits, the waiter then fails its version check with a
//    serialization failure rather than failing instantly).
//  - In S2PL mode, reads additionally take shared locks and scans take a
//    coarse table-gap lock, all held to commit — the strict two-phase
//    locking baseline of the paper's figures.
//
// Deadlocks are detected by each blocked locker on its wakeup ticks: it
// computes its strongly connected component of the wait-for graph, which
// covers every cycle it participates in; the victim is the youngest
// (highest xid) member, which returns kSerializationFailure.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/status.h"
#include "util/types.h"

namespace pgssi {

class LockTable {
 public:
  enum class Mode { kShared, kExclusive };

  /// Blocks until granted, deadlock victimhood, or timeout. Re-entrant;
  /// shared->exclusive upgrade is supported (sole sharer upgrades in
  /// place; otherwise waits for the other sharers).
  Status Acquire(XactId xid, TableId table, const std::string& key, Mode mode,
                 uint64_t timeout_us, uint64_t check_interval_us);

  void ReleaseAll(XactId xid);

  size_t LockedKeyCount() const;

 private:
  struct Entry {
    XactId exclusive = 0;
    std::unordered_set<XactId> sharers;
    int waiters = 0;
  };
  using Key = std::pair<TableId, std::string>;

  bool CanGrant(const Entry& e, XactId xid, Mode mode) const;
  // Blockers of `xid` on entry `e` right now.
  void Blockers(const Entry& e, XactId xid, std::vector<XactId>* out) const;
  // True if `self` is on a wait-for cycle AND is the cycle's chosen victim.
  bool IsDeadlockVictim(XactId self) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<Key, Entry> locks_;
  std::unordered_map<XactId, std::vector<Key>> held_;
  std::unordered_map<XactId, std::vector<XactId>> waits_for_;
};

}  // namespace pgssi
