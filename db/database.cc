#include "db/transaction_handle.h"

#include <algorithm>
#include <cassert>
#include <filesystem>
#include <functional>
#include <limits>
#include <optional>

#include "util/clock.h"
#include "util/failpoint.h"
#include "wal/wal_format.h"

namespace pgssi {

namespace {
constexpr uint64_t kInfSeq = std::numeric_limits<uint64_t>::max();
constexpr uint32_t kNoSlot = std::numeric_limits<uint32_t>::max();
// Coarse table-gap lock key used by the S2PL phantom stub: scans take it
// shared, inserts/deletes exclusive. User keys never collide with it
// because it starts with a 0x01 control byte.
const std::string kGapLockKey = std::string("\x01", 1) + "gap";
// Keep hot version chains short: prune once they exceed this.
constexpr size_t kPruneChainLength = 8;
// Group-commit leader dwell while sibling commits are in flight — the
// hardcoded analogue of PostgreSQL's commit_delay (EngineConfig::
// wal_fsync_batch plays commit_siblings' batching role).
constexpr uint32_t kWalGroupWaitUs = 100;

// RAII epoch-pin for tree descent/validate regions. Engaged only when the
// database hands out a manager (epoch_reclaim != 0); in legacy mode the
// tree's type-stable retained lists make pins unnecessary. Never hold one
// of these across a blocking row-lock wait — a pinned-but-parked thread
// stalls reclamation engine-wide.
struct EpochPinScope {
  explicit EpochPinScope(util::EpochManager* em) {
    if (em != nullptr) pin.emplace(em);
  }
  std::optional<util::EpochManager::Pin> pin;
};
}  // namespace

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

Database::Database(const DatabaseOptions& opts)
    : opts_(opts), siread_(opts.engine, &epoch_) {}

Database::~Database() {
  // Shutdown ordering (the server has already drained its sessions; no
  // transaction is live): flush deferred GC and drain the epoch limbo
  // while every subsystem that frees through the EpochManager is still
  // alive, then close the WAL so the final fsync happens before any
  // member teardown. epoch_ is the FIRST member, so it is destroyed
  // last — after the SIREAD manager and the trees have retired their
  // remaining memory through it.
  QuiesceEpochs();
  if (wal_) wal_->Close();
}

std::unique_ptr<Database> Database::Open(const DatabaseOptions& opts,
                                         Status* status) {
  auto db = std::unique_ptr<Database>(new Database(opts));
  Status s = db->InitWal();
  if (status) *status = s;
  if (!s.ok()) return nullptr;
  return db;
}

Status Database::InitWal() {
  const EngineConfig& eng = opts_.engine;
  if (!eng.wal_enabled) return Status::OK();
  if (eng.wal_dir.empty()) {
    return Status::InvalidArgument("wal_enabled requires wal_dir");
  }
  std::error_code ec;
  std::filesystem::create_directories(eng.wal_dir, ec);
  if (ec) {
    return Status::IOError("cannot create wal_dir " + eng.wal_dir + ": " +
                           ec.message());
  }
  const std::string path = eng.wal_dir + "/wal.log";
  wal::WalScanResult scan;
  Status s = wal::ScanWal(path, &scan);
  if (!s.ok()) return s;
  s = ReplayRecovered(scan);
  if (!s.ok()) return s;
  auto writer = std::make_unique<wal::WalWriter>();
  s = writer->Open(path, scan.valid_bytes);
  if (!s.ok()) return s;
  wal_ = std::move(writer);  // only now does CreateTable start logging
  return Status::OK();
}

Status Database::ReplayRecovered(const wal::WalScanResult& scan) {
  // Runs before any Transaction exists, so plain mutation is safe; the
  // latches below are taken anyway for uniformity (they are all
  // uncontended).
  for (const auto& [logged_id, name] : scan.tables) {
    TableId id;
    Status s = CreateTable(name, &id);
    if (!s.ok()) return s;
    if (id != logged_id) {
      return Status::Internal("wal recovery: table id mismatch for " + name);
    }
  }
  // Replay in commit-seq order. Only the newest version per chain is
  // materialized: every post-recovery snapshot starts at max_seq, so no
  // older version could ever be visible again.
  for (const auto& [seq, commit] : scan.commits) {
    for (const wal::CommitEntry& e : commit.entries) {
      Table* tbl = GetTable(e.table);
      if (!tbl) {
        return Status::Internal("wal recovery: commit references table " +
                                std::to_string(e.table) + " with no create "
                                "record in the valid prefix");
      }
      Version v{e.value, commit.xid, seq, e.deleted};
      TupleId tid;
      PageId page;
      if (tbl->index.Lookup(e.key, &tid, &page)) {
        std::unique_lock<std::shared_mutex> sl(tbl->heap_latch.For(tid));
        TupleChain& chain = tbl->tuples[tid];
        chain.versions.clear();
        chain.versions.push_back(std::move(v));
      } else {
        {
          std::lock_guard<std::mutex> al(tbl->alloc_mu);
          tid = tbl->tuples.Append();
        }
        {
          std::unique_lock<std::shared_mutex> sl(tbl->heap_latch.For(tid));
          TupleChain& chain = tbl->tuples[tid];
          chain.key = e.key;
          chain.versions.push_back(std::move(v));
        }
        PageId page;
        if (!tbl->index.Insert(e.key, tid, &page)) {
          return Status::Internal("wal recovery: duplicate index entry for " +
                                  e.key);
        }
      }
    }
  }
  if (scan.max_seq > 0 || scan.max_xid > 0) {
    txn_mgr_.BootstrapRecovered(scan.max_xid + 1, scan.max_seq);
  }
  return Status::OK();
}

Status Database::CreateTable(const std::string& name, TableId* id) {
  std::unique_lock<std::shared_mutex> l(tables_mu_);
  auto it = table_names_.find(name);
  if (it != table_names_.end()) {
    if (id) *id = it->second;
    return Status::AlreadyExists("table " + name);
  }
  TableId tid = static_cast<TableId>(tables_.size() + 1);
  auto t = std::make_unique<Table>(tid, name, opts_.engine.btree_fanout,
                                   opts_.engine.heap_stripes, EpochForPins());
  // Section 5.2.2: leaf splits transfer SIREAD predicate locks so moved
  // granules stay covered.
  t->index.SetSplitListener(
      [this, tid](PageId oldp, PageId newp, const std::vector<uint32_t>& moved) {
        siread_.OnPageSplit(tid, oldp, newp, moved);
      });
  // Log-and-sync BEFORE registering, still under tables_mu_ (log order
  // == id order, which recovery's id-match check relies on). A failed
  // append/sync means the table was never created — no metadata that a
  // crash could lose. The WAL mutex is a leaf; see the wal_ member doc.
  if (wal_) {
    uint64_t end = 0;
    Status ws = wal_->Append(wal::EncodeCreateTable(tid, name), &end);
    if (ws.ok()) ws = wal_->Sync(end, /*batch_target=*/1, /*max_wait_us=*/0);
    if (!ws.ok()) return ws;
  }
  tables_.push_back(std::move(t));
  table_names_[name] = tid;
  if (id) *id = tid;
  return Status::OK();
}

TableId Database::GetTableId(const std::string& name) const {
  std::shared_lock<std::shared_mutex> l(tables_mu_);
  auto it = table_names_.find(name);
  return it == table_names_.end() ? kInvalidTable : it->second;
}

Database::Table* Database::GetTable(TableId id) const {
  std::shared_lock<std::shared_mutex> l(tables_mu_);
  if (id == kInvalidTable || id > tables_.size()) return nullptr;
  return tables_[id - 1].get();
}

std::unique_ptr<Transaction> Database::Begin(const TxnOptions& opts) {
  auto t = std::unique_ptr<Transaction>(new Transaction(this, opts));
  // Blocking mode never fails Start (the DEFERRABLE loop runs to
  // completion inside).
  (void)t->Start(/*non_blocking=*/false);
  return t;
}

void Database::RunSireadCleanup() {
  // Deferred aborted-insert GC rides along with Section 5.3 cleanup, so
  // abort storms stop re-serializing inserts on the index latch.
  if (opts_.engine.index_olc != 0) DrainIndexGc();
  // Section 5.3 cleanup threshold; see TxnManager::CleanupBound for the
  // ordering argument that makes this safe to apply late.
  siread_.Cleanup(txn_mgr_.CleanupBound());
}

size_t Database::IndexRetiredObjectCount() const {
  std::shared_lock<std::shared_mutex> l(tables_mu_);
  size_t n = 0;
  for (const auto& t : tables_) n += t->index.RetiredObjectCount();
  return n;
}

void Database::QuiesceEpochs() {
  // Flush the deferred index GC first — it retires entries/leaves that
  // would otherwise still be queued (not yet in the limbo) when the
  // epoch manager sweeps.
  if (opts_.engine.index_olc != 0) DrainIndexGc();
  siread_.Cleanup(txn_mgr_.CleanupBound());
  epoch_.Quiesce();
}

BTree::EraseHooks Database::MakeEraseHooks(Table* tbl) {
  BTree::EraseHooks h;
  const TableId table = tbl->id;
  const bool next_key =
      opts_.engine.index_gap_locking == IndexGapLocking::kNextKey;
  h.transfer = [this, table, next_key](PageId erased_page, uint32_t erased_slot,
                                       bool has_next, PageId next_page,
                                       uint32_t next_slot) {
    // Readers that tracked the erased granule (a Get miss, or coverage
    // transferred onto it) keep their gap coverage: move it onto the
    // key's successor entry, or onto the erased page's page granule —
    // the erased key still routes to that leaf, so future inserts of it
    // probe there. The rejoin mirror of the insert-time gap split.
    if (next_key && has_next) {
      siread_.OnGapTransfer(table, erased_page, erased_slot, next_page,
                            next_slot);
    } else {
      siread_.OnGapTransferToPage(table, erased_page, erased_slot,
                                  erased_page);
    }
  };
  h.recycled = [this, table](PageId dead_page, PageId prev_page,
                             PageId next_page) {
    // The dead leaf vanishes from every future gap-probe span (its
    // PageId is never reused): its page-granule holders must cover the
    // neighbours the rejoined gap now spans instead.
    siread_.OnGapTransferToPage(table, dead_page, kNoSlot, prev_page);
    if (next_page != 0) {
      siread_.OnGapTransferToPage(table, dead_page, kNoSlot, next_page);
    }
  };
  return h;
}

void Database::EnqueueIndexGc(TableId table, TupleId tid) {
  std::lock_guard<std::mutex> l(gc_mu_);
  gc_queue_.push_back(IndexGcRec{table, tid});
}

void Database::DrainIndexGc() {
  std::vector<IndexGcRec> q;
  {
    std::lock_guard<std::mutex> l(gc_mu_);
    if (gc_queue_.empty()) return;
    q.swap(gc_queue_);
  }
  std::vector<IndexGcRec> requeue;
  // Erase() descends optimistically before locking leaves; the descent
  // must be pinned so concurrently-retired nodes stay dereferenceable.
  EpochPinScope pin(EpochForPins());
  for (const IndexGcRec& rec : q) {
    Table* tbl = GetTable(rec.table);
    if (!tbl) continue;
    std::unique_lock<std::shared_mutex> sl(tbl->heap_latch.For(rec.tid));
    TupleChain& chain = tbl->tuples[rec.tid];
    bool committed = false;
    for (const Version& v : chain.versions) {
      if (v.commit_seq != 0) {
        committed = true;
        break;
      }
    }
    if (committed) continue;  // re-populated and committed: live again
    if (!chain.versions.empty()) {
      requeue.push_back(rec);  // an uncommitted writer owns it: retry later
      continue;
    }
    // Empty: erase the index entry (if it still maps here) and recycle
    // the chain. The stripe is held ACROSS the erase so a concurrent
    // writer of this key — which resolves the entry, locks this stripe,
    // then validates its index view — either blocks here until the
    // erase's leaf-version bump lands (and restarts on validation) or
    // appended its version first (and this record was re-enqueued).
    if (!chain.key.empty()) {
      tbl->index.Erase(chain.key, rec.tid, MakeEraseHooks(tbl));
      chain.key.clear();
    }
    sl.unlock();
    std::lock_guard<std::mutex> al(tbl->alloc_mu);
    tbl->free_chains.push_back(rec.tid);
  }
  if (!requeue.empty()) {
    std::lock_guard<std::mutex> l(gc_mu_);
    gc_queue_.insert(gc_queue_.end(), requeue.begin(), requeue.end());
  }
}

size_t Database::LiveTupleChainCount(TableId table) const {
  Table* tbl = GetTable(table);
  if (!tbl) return 0;
  size_t n = 0;
  const size_t cnt = tbl->tuples.size();
  for (TupleId tid = 0; tid < cnt; tid++) {
    std::shared_lock<std::shared_mutex> sl(tbl->heap_latch.For(tid));
    if (!tbl->tuples[tid].versions.empty()) n++;
  }
  return n;
}

size_t Database::IndexEntryCount(TableId table) const {
  Table* tbl = GetTable(table);
  if (!tbl) return 0;
  return tbl->index.size();
}

size_t Database::IndexLeafCount(TableId table) const {
  Table* tbl = GetTable(table);
  if (!tbl) return 0;
  return tbl->index.LeafCount();
}

void Database::TestForceIndexInsertRestarts(TableId table, int n) {
  Table* tbl = GetTable(table);
  if (tbl) tbl->index.TestForceInsertRestarts(n);
}

SsiStats Database::GetSsiStats() const {
  SsiStats s;
  s.ssi_aborts = siread_.ssi_aborts();
  s.ww_aborts = ww_aborts_.load(std::memory_order_relaxed);
  s.s2pl_deadlocks = s2pl_deadlocks_.load(std::memory_order_relaxed);
  s.page_promotions = siread_.page_promotions();
  s.relation_promotions = siread_.relation_promotions();
  s.safe_snapshots = safe_snapshots_.load(std::memory_order_relaxed);
  s.deferrable_retries = deferrable_retries_.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// Transaction lifecycle
// ---------------------------------------------------------------------------

Transaction::Transaction(Database* db, const TxnOptions& opts)
    : db_(db), opts_(opts) {
  const bool serializable = opts.isolation == IsolationLevel::kSerializable;
  use_s2pl_ = serializable &&
              db_->opts_.serializable_impl == SerializableImpl::kS2PL;
  use_ssi_ = serializable && !use_s2pl_;
}

Status Transaction::Start(bool non_blocking) {
  if (started_) return Status::OK();
  non_blocking_ = non_blocking;

  if (use_ssi_ && opts_.read_only && opts_.deferrable) {
    // DEFERRABLE: loop until a snapshot is retroactively proven safe
    // (Section 4 / Section 8.4). Take a snapshot, wait out every
    // read-write serializable transaction concurrent with it, and check
    // none of them committed with a dangerous out-edge. In non-blocking
    // mode the "wait out" leg is a resumable state machine: the begun
    // snapshot parks in def_* and kWouldBlock tells the session to
    // re-call Start later (no wait token — the caller deadline-polls;
    // wiring per-xid finish notifications isn't worth it for a begin
    // path that is rare by construction).
    for (;;) {
      if (!def_pending_) {
        def_begin_ = db_->txn_mgr_.Begin(/*serializable_rw=*/false);
        def_concurrent_ = db_->txn_mgr_.ActiveSerializableRW();
        def_pending_ = true;
      }
      if (non_blocking_) {
        if (db_->txn_mgr_.AnyActive(def_concurrent_)) {
          wait_token_ = nullptr;
          return Status(Code::kWouldBlock, "deferrable safe-snapshot wait");
        }
      } else {
        db_->txn_mgr_.WaitForFinish(def_concurrent_);
      }
      bool unsafe = false;
      for (XactId x : def_concurrent_) {
        if (db_->siread_.CommittedWithDangerousOut(x, def_begin_.snapshot_seq)) {
          unsafe = true;
          break;
        }
      }
      if (unsafe) {
        db_->txn_mgr_.Abort(def_begin_.xid);
        db_->deferrable_retries_.fetch_add(1, std::memory_order_relaxed);
        def_pending_ = false;
        continue;
      }
      xid_ = def_begin_.xid;
      snapshot_seq_ = def_begin_.snapshot_seq;
      sxact_ = db_->siread_.Register(xid_, snapshot_seq_, /*read_only=*/true);
      sxact_->safe_snapshot.store(true, std::memory_order_release);
      db_->safe_snapshots_.fetch_add(1, std::memory_order_relaxed);
      def_pending_ = false;
      def_concurrent_.clear();
      started_ = true;
      return Status::OK();
    }
  }

  auto r =
      db_->txn_mgr_.Begin(/*serializable_rw=*/use_ssi_ && !opts_.read_only);
  xid_ = r.xid;
  snapshot_seq_ = use_s2pl_ ? kInfSeq : r.snapshot_seq;
  if (use_ssi_) {
    sxact_ = db_->siread_.Register(xid_, r.snapshot_seq, opts_.read_only);
    if (opts_.read_only && db_->opts_.engine.enable_read_only_opt &&
        !db_->txn_mgr_.AnyActiveSerializableRW()) {
      // Opportunistic safe snapshot: with no concurrent read-write
      // serializable transaction, Theorem 4 makes this snapshot safe
      // immediately, so the reader can skip SIREAD tracking entirely.
      sxact_->safe_snapshot.store(true, std::memory_order_release);
      db_->safe_snapshots_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  started_ = true;
  return Status::OK();
}

Status Transaction::AcquireRowLock(TableId table, const std::string& key,
                                   LockTable::Mode mode) {
  const EngineConfig& eng = db_->opts_.engine;
  if (!non_blocking_) {
    return db_->row_locks_.Acquire(xid_, table, key, mode,
                                   eng.lock_wait_timeout_us,
                                   eng.deadlock_check_interval_us);
  }
  // Session mode. The wait deadline spans suspensions: it anchors at the
  // first would-block of this operation and is cleared when any lock
  // acquisition for the op succeeds (on success the op either finishes
  // or would-blocks on a LATER lock, restarting the clock — each lock in
  // a multi-lock op gets its own full timeout, same as the blocking
  // path).
  const uint64_t now = NowMicros();
  const bool timed_out = wait_started_us_ != 0 &&
                         now > wait_started_us_ + eng.lock_wait_timeout_us;
  auto token = std::make_shared<util::WaitToken>();
  Status st =
      db_->row_locks_.AcquireAsync(xid_, table, key, mode, timed_out, token);
  if (st.code() == Code::kWouldBlock) {
    if (wait_started_us_ == 0) wait_started_us_ = now;
    wait_token_ = std::move(token);
  } else {
    wait_started_us_ = 0;
    wait_token_ = nullptr;
  }
  return st;
}

Transaction::~Transaction() {
  if (!finished_) AbortInternal();
}

Status Transaction::CheckActive() {
  if (finished_) return Status::Internal("transaction already finished");
  if (sxact_ && db_->siread_.Doomed(sxact_)) {
    AbortInternal();
    return Status::SerializationFailure(
        "canceled due to rw-antidependency conflict");
  }
  return Status::OK();
}

void Transaction::AbortInternal() {
  if (!started_) {
    // A session tore down mid-begin. A parked DEFERRABLE begin has a
    // registered (snapshot-pinning) xid that must deregister, but no
    // writes, locks, or SIREAD state exist yet.
    if (def_pending_) {
      db_->txn_mgr_.Abort(def_begin_.xid);
      def_pending_ = false;
    }
    finished_ = true;
    return;
  }
  // Roll back uncommitted versions. Chains this transaction created
  // (new-key inserts) are garbage-collected: the index entry is erased
  // and the chain recycled — leaking them would bloat the heap forever
  // and distort next-key gap granules for every later reader.
  auto erase_own = [this](std::vector<Database::Version>& vs) {
    vs.erase(std::remove_if(vs.begin(), vs.end(),
                            [this](const Database::Version& v) {
                              return v.xid == xid_ && v.commit_seq == 0;
                            }),
             vs.end());
  };
  const bool olc = db_->opts_.engine.index_olc != 0;
  // Pin scoped to the rollback loop only (the inline index_olc=0 Erase
  // descends the tree); released before RunSireadCleanup below so the
  // cleanup's sweep isn't blocked by our own pin.
  EpochPinScope pin(db_->EpochForPins());
  for (const WriteRec& w : writes_) {
    Database::Table* tbl = db_->GetTable(w.table);
    if (!tbl) continue;
    if (!w.created) {
      std::unique_lock<std::shared_mutex> sl(tbl->heap_latch.For(w.tid));
      erase_own(tbl->tuples[w.tid].versions);
      continue;
    }
    if (olc) {
      // Deferred GC: only empty the chain here; the index erase (with
      // its coverage transfer and chain recycle) runs in DrainIndexGc,
      // off every other transaction's insert path.
      {
        std::unique_lock<std::shared_mutex> sl(tbl->heap_latch.For(w.tid));
        erase_own(tbl->tuples[w.tid].versions);
      }
      db_->EnqueueIndexGc(w.table, w.tid);
      continue;
    }
    // index_olc=0: inline GC under the exclusive index latch (which also
    // excludes every chain reader/writer). Only this transaction ever
    // wrote the chain — the key's exclusive row lock is still held — so
    // an empty chain after rollback means the entry can go. Erase is
    // tid-guarded and runs the coverage-transfer hooks itself.
    std::unique_lock<util::WpSharedMutex> il(tbl->index_mu);
    Database::TupleChain& chain = tbl->tuples[w.tid];
    erase_own(chain.versions);
    if (!chain.versions.empty()) continue;
    tbl->index.Erase(chain.key, w.tid, db_->MakeEraseHooks(tbl));
    chain.key.clear();
    {
      std::lock_guard<std::mutex> al(tbl->alloc_mu);
      tbl->free_chains.push_back(w.tid);
    }
  }
  pin.pin.reset();  // unpin before cleanup so the sweep can advance
  writes_.clear();
  if (sxact_) {
    db_->siread_.Abort(sxact_);  // frees the xact
    sxact_ = nullptr;
  }
  db_->row_locks_.ReleaseAll(xid_);
  db_->txn_mgr_.Abort(xid_);
  if (use_ssi_) {
    db_->RunSireadCleanup();
  } else if (olc) {
    db_->DrainIndexGc();  // SI aborts must not strand their GC records
  }
  if (db_->opts_.engine.epoch_reclaim != 0) db_->epoch_.AmortizedTick();
  finished_ = true;
}

Status Transaction::Abort() {
  if (finished_) return Status::OK();
  AbortInternal();
  return Status::OK();
}

Status Transaction::Commit() {
  if (finished_) return Status::Internal("transaction already finished");
  if (non_blocking_ && !writes_.empty() && db_->wal_ != nullptr &&
      db_->opts_.engine.wal_fsync != WalFsyncMode::kOff) {
    // WAL commit gate: if a group fsync is in flight RIGHT NOW, a
    // commit started here would queue behind it and block the worker
    // for a whole device sync. Park instead; when the token fires the
    // batch we join is fresh. The park is re-entered as long as the
    // gate stays closed, but never past the lock-wait deadline
    // (wait_started_us_ spans the parks): a stalled fsync device
    // converts into a RETRYABLE abort here, with the transaction's
    // locks released — not a worker pinned forever behind the gate.
    // Safe because nothing has been appended for this commit yet.
    const uint64_t now = NowMicros();
    if (wait_started_us_ != 0 &&
        now > wait_started_us_ + db_->opts_.engine.lock_wait_timeout_us) {
      wait_started_us_ = 0;
      AbortInternal();
      return Status::SerializationFailure(
          "wal commit gate timeout: fsync stalled; retry the transaction");
    }
    auto token = std::make_shared<util::WaitToken>();
    if (db_->wal_->RegisterSyncWaiter(token)) {
      if (wait_started_us_ == 0) wait_started_us_ = now;
      wait_token_ = std::move(token);
      return Status(Code::kWouldBlock, "wal group fsync in flight");
    }
    wait_started_us_ = 0;
  }
  if (sxact_ && db_->siread_.Doomed(sxact_)) {
    AbortInternal();
    return Status::SerializationFailure(
        "canceled due to rw-antidependency conflict");
  }
  if (sxact_) {
    // Commit-time dangerous-structure test (Section 3.3).
    Status st = db_->siread_.PreCommit(sxact_);
    if (!st.ok()) {
      AbortInternal();
      return st;
    }
  }

  if (writes_.empty()) {
    // Read-only commit: no new commit sequence number needed. The xact
    // stays registered in the lock manager (its SIREAD locks may still
    // matter) until cleanup decides otherwise.
    if (sxact_) {
      // Never 0: commit_seq 0 means commit-pending to the lock manager.
      db_->siread_.MarkCommitted(
          sxact_, std::max<uint64_t>(1, db_->txn_mgr_.LastCommittedSeq()));
      sxact_ = nullptr;
    }
    db_->txn_mgr_.Abort(xid_);  // deregister only; nothing to stamp
  } else {
    // Durability-before-visibility: the redo payload is built (and the
    // in-flight counter bumped) before the seq exists; inside the stamp
    // callback the record is appended and — per wal_fsync — made durable
    // STRICTLY BEFORE any version carries the seq or the watermark can
    // publish it. A WAL failure returns false from the stamp: nothing
    // was stamped, TxnManager publishes the seq as a no-op (the
    // watermark never sticks), Commit returns 0, and we abort below
    // while the writes are still invisible to every snapshot.
    std::string payload;
    size_t seq_offset = 0;
    Status wal_status;
    const bool wal_on = db_->wal_ != nullptr;
    if (wal_on) {
      BuildWalCommitPayload(&payload, &seq_offset);
      db_->wal_commits_in_flight_.fetch_add(1, std::memory_order_relaxed);
    }
    uint64_t seq = db_->txn_mgr_.Commit(xid_, [&](uint64_t s) -> bool {
      if (wal_on) {
        wal::PatchCommitSeq(&payload, seq_offset, s);
        const EngineConfig& eng = db_->opts_.engine;
        // Dwell for stragglers only when a sibling commit is in flight
        // (the commit_delay/commit_siblings analogue); a lone committer
        // fsyncs immediately.
        const uint32_t wait =
            db_->wal_commits_in_flight_.load(std::memory_order_relaxed) > 1
                ? kWalGroupWaitUs
                : 0;
        wal_status = db_->wal_->AppendCommit(payload, s, eng.wal_fsync,
                                             eng.wal_fsync_batch, wait);
        if (!wal_status.ok()) return false;
      }
      for (const WriteRec& w : writes_) {
        Database::Table* tbl = db_->GetTable(w.table);
        std::unique_lock<std::shared_mutex> sl(tbl->heap_latch.For(w.tid));
        for (auto& v : tbl->tuples[w.tid].versions) {
          if (v.xid == xid_ && v.commit_seq == 0) v.commit_seq = s;
        }
      }
      return true;
    });
    if (wal_on) {
      db_->wal_commits_in_flight_.fetch_sub(1, std::memory_order_relaxed);
    }
    if (seq == 0) {
      // WAL append/fsync failed; the seq was consumed-but-unused and no
      // version was stamped. Roll back exactly like any pre-publication
      // abort (SSI edges dissolve conservatively — PreCommit already
      // marked us commit-pending, and Abort handles that).
      AbortInternal();
      return wal_status.ok() ? Status::IOError("wal commit failed")
                             : wal_status;
    }
    // Commit is published (durable + visible) but not yet acknowledged:
    // the crash-window the torture test drives (recovery MUST replay it
    // even though no client saw an ack).
    if (util::FailpointFires("commit_published")) {
      // kErr is meaningless here — the commit already happened; only
      // kCrash (handled inside FailpointFires) is interesting.
    }
    if (sxact_) {
      db_->siread_.MarkCommitted(sxact_, seq);
      sxact_ = nullptr;
    }
  }
  db_->row_locks_.ReleaseAll(xid_);
  if (use_ssi_) {
    // Section 5.3: committed xacts (and their SIREAD locks) are freed once
    // every transaction concurrent with them has finished.
    db_->RunSireadCleanup();
  }
  // SI-mode commits never reach Section 5.3 cleanup (the epoch sweep's
  // main driver), so nudge the limbo here too; amortized, O(1) usually.
  if (db_->opts_.engine.epoch_reclaim != 0) db_->epoch_.AmortizedTick();
  finished_ = true;
  return Status::OK();
}

void Transaction::BuildWalCommitPayload(std::string* payload,
                                        size_t* seq_offset) {
  // One WriteRec per (table, tid) is guaranteed — the exclusive row lock
  // plus own-version overwrite collapse repeated writes — so the chain's
  // single uncommitted version with our xid IS the final value. Scan
  // from the back: our version is the newest.
  wal::CommitRecord rec;
  rec.xid = xid_;
  rec.entries.reserve(writes_.size());
  for (const WriteRec& w : writes_) {
    Database::Table* tbl = db_->GetTable(w.table);
    std::shared_lock<std::shared_mutex> sl(tbl->heap_latch.For(w.tid));
    const Database::TupleChain& chain = tbl->tuples[w.tid];
    for (int i = static_cast<int>(chain.versions.size()) - 1; i >= 0; --i) {
      const Database::Version& v = chain.versions[static_cast<size_t>(i)];
      if (v.xid == xid_ && v.commit_seq == 0) {
        wal::CommitEntry e;
        e.table = w.table;
        e.deleted = v.deleted;
        e.key = chain.key;
        e.value = v.value;
        rec.entries.push_back(std::move(e));
        break;
      }
    }
  }
  *payload = wal::EncodeCommit(rec, seq_offset);
}

// ---------------------------------------------------------------------------
// Visibility + SSI read tracking
// ---------------------------------------------------------------------------

int Transaction::VisibleVersion(const Database::TupleChain& chain) const {
  const auto& vs = chain.versions;
  for (int i = static_cast<int>(vs.size()) - 1; i >= 0; --i) {
    const Database::Version& v = vs[static_cast<size_t>(i)];
    if (v.xid == xid_) return i;  // own write
    if (v.commit_seq != 0 && v.commit_seq <= snapshot_seq_) return i;
  }
  return -1;
}

void Transaction::TrackRead(Database::Table* tbl,
                            const Database::TupleChain& chain,
                            int visible_idx, PageId page, uint32_t slot) {
  if (!sxact_ || sxact_->safe_snapshot) return;
  db_->siread_.AcquireTuple(sxact_, tbl->id, page, slot);
  // Any version newer than the one we read is an rw-antidependency:
  // we (reader) -rw-> its writer.
  const auto& vs = chain.versions;
  for (size_t j = visible_idx < 0 ? 0 : static_cast<size_t>(visible_idx) + 1;
       j < vs.size(); ++j) {
    if (vs[j].xid != xid_) {
      db_->siread_.FlagRwConflictWithWriter(sxact_, vs[j].xid);
    }
  }
}

void Transaction::AcquireGapLock(Database::Table* tbl,
                                 const std::string& key) {
  if (!sxact_ || sxact_->safe_snapshot) return;
  // Acquire-then-validate: resolve the gap granule optimistically,
  // acquire the SIREAD lock, then validate the index view and retry on
  // mismatch. The lock lands BEFORE validation, so at every instant the
  // reader either holds coverage on a granule a concurrent structural
  // change will transfer correctly (splits/erases move coverage from
  // exactly these granules) or is about to retry; a failed attempt's
  // lock is a conservative leftover, never a hole. With index_olc=0 the
  // caller's shared index latch excludes structural changes and
  // validation passes first try.
  const bool next_key_mode =
      db_->opts_.engine.index_gap_locking == IndexGapLocking::kNextKey;
  // Pin across resolve→acquire→Validate: Validate dereferences the nodes
  // the ReadView witnessed, so the pin must span the whole attempt (and
  // nests harmlessly under a caller's pin).
  EpochPinScope pin(db_->EpochForPins());
  for (;;) {
    BTree::ReadView rv;
    if (next_key_mode) {
      std::string nk;
      TupleId ntid;
      PageId npage;
      uint32_t nslot;
      if (tbl->index.NextKey(key, &nk, &ntid, &npage, &nslot, &rv)) {
        db_->siread_.AcquireTuple(sxact_, tbl->id, npage, nslot);
        if (tbl->index.Validate(rv)) return;
        continue;
      }
      // No successor: fall through to a page lock on the tail leaf. rv
      // witnessed the (empty) successor walk; rv2 the page resolution.
      BTree::ReadView rv2;
      PageId pg = tbl->index.PageFor(key, &rv2);
      db_->siread_.AcquirePage(sxact_, tbl->id, pg);
      if (tbl->index.Validate(rv) && tbl->index.Validate(rv2)) return;
      continue;
    }
    PageId pg = tbl->index.PageFor(key, &rv);
    db_->siread_.AcquirePage(sxact_, tbl->id, pg);
    if (tbl->index.Validate(rv)) return;
  }
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

Status Transaction::Get(TableId table, const std::string& key,
                        std::string* value) {
  Status st = CheckActive();
  if (!st.ok()) return st;
  Database::Table* tbl = db_->GetTable(table);
  if (!tbl) return Status::InvalidArgument("no such table");
  SimulatedIoDelay(db_->opts_.engine.simulated_io_delay_us);

  if (use_s2pl_) {
    st = AcquireRowLock(table, key, LockTable::Mode::kShared);
    // Would-block: return BEFORE any mutation/pin/latch — the session
    // re-issues this Get verbatim after the wait token fires.
    if (st.IsWouldBlock()) return st;
    if (!st.ok()) {
      db_->s2pl_deadlocks_.fetch_add(1, std::memory_order_relaxed);
      AbortInternal();
      return st;
    }
  }

  const bool olc = db_->opts_.engine.index_olc != 0;
  // Pin the whole lookup→track→Validate region (taken after the blocking
  // row-lock wait above, never across it).
  EpochPinScope pin(db_->EpochForPins());
  for (;;) {
    std::shared_lock<util::WpSharedMutex> il;
    if (!olc) il = std::shared_lock<util::WpSharedMutex>(tbl->index_mu);
    BTree::ReadView rv;
    TupleId tid;
    PageId page;
    uint32_t slot;
    if (!tbl->index.Lookup(key, &tid, &page, &slot, &rv)) {
      // Phantom protection for a miss: lock the gap the key would occupy
      // (self-validating), then confirm the miss itself wasn't raced by
      // an insert of this very key.
      AcquireGapLock(tbl, key);
      if (olc && !tbl->index.Validate(rv)) continue;
      return Status::NotFound("key " + key);
    }
    std::shared_lock<std::shared_mutex> sl(tbl->heap_latch.For(tid));
    const Database::TupleChain& chain = tbl->tuples[tid];
    int vi = VisibleVersion(chain);
    TrackRead(tbl, chain, vi, page, slot);
    // Validate AFTER the SIREAD acquire: if a split moved the granule
    // meanwhile, the lock just taken was transferred (or is a harmless
    // conservative leftover) and the retry re-locks the new coordinates.
    if (olc && !tbl->index.Validate(rv)) continue;
    if (vi < 0 || chain.versions[static_cast<size_t>(vi)].deleted) {
      return Status::NotFound("key " + key);
    }
    if (value) *value = chain.versions[static_cast<size_t>(vi)].value;
    return Status::OK();
  }
}

Status Transaction::ScanInternal(
    TableId table, const std::string& lo, const std::string& hi,
    const std::function<void(const std::string&, const std::string&)>& fn) {
  Status st = CheckActive();
  if (!st.ok()) return st;
  Database::Table* tbl = db_->GetTable(table);
  if (!tbl) return Status::InvalidArgument("no such table");
  SimulatedIoDelay(db_->opts_.engine.simulated_io_delay_us);

  if (use_s2pl_) {
    // Phantom stub: the table-gap lock blocks concurrent inserts/deletes.
    st = AcquireRowLock(table, kGapLockKey, LockTable::Mode::kShared);
    if (st.IsWouldBlock()) return st;
    if (!st.ok()) {
      db_->s2pl_deadlocks_.fetch_add(1, std::memory_order_relaxed);
      AbortInternal();
      return st;
    }
    // Two-phase: collect the (now stable) key set, lock each key shared,
    // then re-read values under the locks.
    std::vector<std::string> keys;
    {
      EpochPinScope pin(db_->EpochForPins());
      std::shared_lock<util::WpSharedMutex> il(tbl->index_mu);
      tbl->index.Scan(lo, hi,
                      [&](const std::string& k, TupleId, PageId, uint32_t) {
                        keys.push_back(k);
                        return true;
                      });
    }
    for (const std::string& k : keys) {
      st = AcquireRowLock(table, k, LockTable::Mode::kShared);
      // Safe to re-issue the whole scan: the shared table-gap lock
      // (already held) pins the key set, per-key Acquires are
      // re-entrant, and nothing was emitted yet.
      if (st.IsWouldBlock()) return st;
      if (!st.ok()) {
        db_->s2pl_deadlocks_.fetch_add(1, std::memory_order_relaxed);
        AbortInternal();
        return st;
      }
    }
    // Pinned re-read; the blocking per-key lock waits above stay
    // unpinned.
    EpochPinScope pin(db_->EpochForPins());
    std::shared_lock<util::WpSharedMutex> il(tbl->index_mu);
    for (const std::string& k : keys) {
      TupleId tid;
      PageId page;
      uint32_t slot;
      if (!tbl->index.Lookup(k, &tid, &page, &slot)) continue;
      std::shared_lock<std::shared_mutex> sl(tbl->heap_latch.For(tid));
      const Database::TupleChain& chain = tbl->tuples[tid];
      int vi = VisibleVersion(chain);
      if (vi >= 0 && !chain.versions[static_cast<size_t>(vi)].deleted) {
        fn(k, chain.versions[static_cast<size_t>(vi)].value);
      }
    }
    return Status::OK();
  }

  // Leaf-at-a-time scan: each ScanLeaf batch is a point-in-time-
  // consistent snapshot of one leaf, witnessed by a ReadView. SIREAD
  // tracking follows acquire-then-validate — locks land before the view
  // is validated, results are emitted only after it passes, and a failed
  // validation redoes the same batch (cur is unchanged). With
  // index_olc=0 the shared index latch excludes structural changes and
  // every validation passes first try.
  const bool olc = db_->opts_.engine.index_olc != 0;
  // One pin for the whole scan: a long scan stretches grace periods
  // rather than risking a batch's ReadView outliving its leaf.
  EpochPinScope pin(db_->EpochForPins());
  std::shared_lock<util::WpSharedMutex> il;
  if (!olc) il = std::shared_lock<util::WpSharedMutex>(tbl->index_mu);
  const bool track = sxact_ && !sxact_->safe_snapshot;
  const bool next_key_mode =
      db_->opts_.engine.index_gap_locking == IndexGapLocking::kNextKey;
  std::string cur = lo;
  BTree::LeafBatch batch;
  BTree::ReadView rv;
  std::vector<std::pair<std::string, std::string>> emit;
  for (;;) {
    const bool more = tbl->index.ScanLeaf(cur, hi, &batch, &rv);
    emit.clear();
    for (size_t i = 0; i < batch.keys.size(); i++) {
      const TupleId tid = batch.tids[i];
      std::shared_lock<std::shared_mutex> sl(tbl->heap_latch.For(tid));
      const Database::TupleChain& chain = tbl->tuples[tid];
      int vi = VisibleVersion(chain);
      if (track) TrackRead(tbl, chain, vi, batch.page, batch.slots[i]);
      if (vi >= 0 && !chain.versions[static_cast<size_t>(vi)].deleted) {
        emit.emplace_back(batch.keys[i],
                          chain.versions[static_cast<size_t>(vi)].value);
      }
    }
    if (track && !next_key_mode && !batch.keys.empty()) {
      // Page-granularity gap lock on the visited leaf.
      db_->siread_.AcquirePage(sxact_, table, batch.page);
    }
    if (!more && track) {
      if (next_key_mode) {
        // Lock the key that bounds the range on the right (phantoms
        // there). Self-validating, idempotent across batch retries.
        AcquireGapLock(tbl, hi);
      } else {
        // Boundary leaves (covers empty ranges too).
        AcquireGapLock(tbl, lo);
        AcquireGapLock(tbl, hi);
      }
    }
    if (olc && !tbl->index.Validate(rv)) continue;  // redo this batch
    for (const auto& kv : emit) fn(kv.first, kv.second);
    if (!more) return Status::OK();
    cur = batch.keys.back() + '\0';
  }
}

Status Transaction::Scan(TableId table, const std::string& lo,
                         const std::string& hi,
                         std::vector<std::pair<std::string, std::string>>* out) {
  if (out) out->clear();
  return ScanInternal(table, lo, hi,
                      [out](const std::string& k, const std::string& v) {
                        if (out) out->emplace_back(k, v);
                      });
}

Status Transaction::Count(TableId table, const std::string& lo,
                          const std::string& hi, uint64_t* n) {
  uint64_t c = 0;
  Status st = ScanInternal(table, lo, hi,
                           [&c](const std::string&, const std::string&) { c++; });
  if (n) *n = c;
  return st;
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

Status Transaction::WriteInternal(TableId table, const std::string& key,
                                  const std::string& value, bool deleted,
                                  bool upsert) {
  Status st = CheckActive();
  if (!st.ok()) return st;
  if (opts_.read_only) {
    return Status::InvalidArgument("write in read-only transaction");
  }
  Database::Table* tbl = db_->GetTable(table);
  if (!tbl) return Status::InvalidArgument("no such table");
  SimulatedIoDelay(db_->opts_.engine.simulated_io_delay_us);

  // Row lock first (never while holding the index latch or a stripe). For
  // SI/SSI this
  // is the blocking half of first-updater-wins; for S2PL it is the
  // exclusive lock held to commit.
  st = AcquireRowLock(table, key, LockTable::Mode::kExclusive);
  // Would-block precedes every mutation: the session re-issues this
  // write verbatim on wakeup (the key lock, once granted, stays held).
  if (st.IsWouldBlock()) return st;
  if (!st.ok()) {
    if (use_s2pl_) db_->s2pl_deadlocks_.fetch_add(1, std::memory_order_relaxed);
    AbortInternal();
    return st;
  }
  if (use_s2pl_) {
    // Inserting or deleting changes scan results: take the table-gap lock
    // exclusively (conflicts with S2PL scans). Existence is stable here
    // because we already hold the key's exclusive lock.
    bool exists;
    {
      std::shared_lock<util::WpSharedMutex> il(tbl->index_mu);
      exists = tbl->index.Lookup(key, nullptr, nullptr, nullptr);
    }
    if (!exists || deleted) {
      st = AcquireRowLock(table, kGapLockKey, LockTable::Mode::kExclusive);
      if (st.IsWouldBlock()) return st;
      if (!st.ok()) {
        db_->s2pl_deadlocks_.fetch_add(1, std::memory_order_relaxed);
        AbortInternal();
        return st;
      }
    }
  }

  // Existing chain: a single-chain write — the chain's stripe held
  // exclusively (plus, with index_olc=0, a shared index pass). Writers
  // of independent keys land on independent stripes and run
  // concurrently. With index_olc=1 the lookup is validated after the
  // stripe is taken: a GC erase of this key's aborted entry holds the
  // stripe across its Erase, so a stale hit either blocks until the
  // erase's version bump lands (and restarts into the new-key path) or
  // won the stripe first (and the GC record gets re-enqueued).
  const bool olc = db_->opts_.engine.index_olc != 0;
  // Pin from here to the end of the function: the existing-chain loop's
  // ReadView spans lookup→probe→Validate, and the new-key path's
  // InsertGuarded descends optimistically. The blocking row-lock waits
  // all happened above, so the pin never parks.
  EpochPinScope pin(db_->EpochForPins());
  for (;;) {
    std::shared_lock<util::WpSharedMutex> il;
    if (!olc) il = std::shared_lock<util::WpSharedMutex>(tbl->index_mu);
    BTree::ReadView rv;
    TupleId tid;
    PageId page;
    uint32_t slot;
    if (!tbl->index.Lookup(key, &tid, &page, &slot, &rv)) {
      if (deleted) {
        // Failed Delete of an absent key: the statement read the gap the
        // key would occupy — lock it exactly as a Get miss does, so a
        // concurrent insert of this key produces the required rw edge.
        AcquireGapLock(tbl, key);
        if (olc && !tbl->index.Validate(rv)) continue;
        return Status::NotFound("key " + key);
      }
      break;  // new key: fall through to the insert path
    }
    std::unique_lock<std::shared_mutex> sl(tbl->heap_latch.For(tid));
    if (olc && !tbl->index.Validate(rv)) continue;  // entry moved/erased
    Database::TupleChain& chain = tbl->tuples[tid];
    if (!use_s2pl_) {
      // First-updater-wins: a version committed after our snapshot means
      // a concurrent writer beat us.
      for (const auto& v : chain.versions) {
        if (v.commit_seq > snapshot_seq_ && v.commit_seq != 0) {
          sl.unlock();
          if (il.owns_lock()) il.unlock();
          db_->ww_aborts_.fetch_add(1, std::memory_order_relaxed);
          AbortInternal();
          return Status::SerializationFailure(
              "could not serialize access due to concurrent update");
        }
      }
    }
    int vi = VisibleVersion(chain);
    bool visible_live =
        vi >= 0 && !chain.versions[static_cast<size_t>(vi)].deleted;
    if ((!upsert && !deleted && visible_live) || (deleted && !visible_live)) {
      // Statement-level failure — but the statement still READ the
      // row's (non)existence to fail. Leave exactly the SIREAD lock and
      // rw-antidependency flags a Get would (Section 5.2: every read,
      // including reads performed implicitly by writes, must be
      // tracked), or a concurrent delete/insert of this key misses the
      // required rw edge and write skew can commit.
      TrackRead(tbl, chain, vi, page, slot);
      if (olc && !tbl->index.Validate(rv)) {
        sl.unlock();
        continue;  // granule moved mid-track: re-resolve and re-lock
      }
      return visible_live ? Status::AlreadyExists("key " + key)
                          : Status::NotFound("key " + key);
    }
    if (sxact_) {
      // Probe at the index-reported coordinates: readers lock the
      // granule the index reports, and a leaf split may have moved the
      // entry since the chain was created.
      auto probe = db_->siread_.ProbeHeapWrite(table, page, slot);
      for (XactId h : probe.holder_xids) {
        if (h != xid_) db_->siread_.FlagRwConflictWithReader(h, sxact_);
      }
      if (db_->opts_.engine.enable_write_supersedes_siread) {
        db_->siread_.ReleaseOwnTuple(sxact_, table, page, slot);
      }
      if (db_->siread_.Doomed(sxact_)) {
        sl.unlock();
        if (il.owns_lock()) il.unlock();
        AbortInternal();
        return Status::SerializationFailure(
            "canceled due to rw-antidependency conflict");
      }
      if (olc && !tbl->index.Validate(rv)) {
        // A split relocated the granule mid-probe: the probe may have
        // missed a reader that locked the NEW coordinates. Redo it.
        sl.unlock();
        continue;
      }
    }
    if (!chain.versions.empty() && chain.versions.back().xid == xid_ &&
        chain.versions.back().commit_seq == 0) {
      chain.versions.back().value = value;
      chain.versions.back().deleted = deleted;
    } else {
      chain.versions.push_back(Database::Version{value, xid_, 0, deleted});
      writes_.push_back(WriteRec{table, tid, /*created=*/false});
    }
    // Prune stale history nobody can see anymore (lock-free bound).
    if (chain.versions.size() > kPruneChainLength) {
      uint64_t oldest = db_->txn_mgr_.OldestActiveSnapshot();
      auto& vs = chain.versions;
      while (vs.size() > 1 && vs[1].commit_seq != 0 &&
             vs[1].commit_seq <= oldest) {
        vs.erase(vs.begin());
      }
    }
    return Status::OK();
  }

  // New key: a structural change (index insert, possible leaf split, gap
  // probes). The key's exclusive row lock (held since the preamble) pins
  // its (non)existence, so the miss observed above cannot have been
  // raced by another inserter of the SAME key. With index_olc=1 this
  // path never touches index_mu: InsertGuarded locks only the gap's
  // leaves and runs the SIREAD gap probe + coverage transfer under those
  // leaf locks (probe may run multiple times across restarts —
  // idempotent; transfer runs exactly once). With index_olc=0 the
  // exclusive index latch reproduces the old serialization.
  const bool next_key_mode =
      db_->opts_.engine.index_gap_locking == IndexGapLocking::kNextKey;
  // Chain first, index second: the chain must be fully populated before
  // the index entry is published, because latch-free readers resolve the
  // entry and read the chain with no index latch. The stripe is NOT held
  // across InsertGuarded (stripe orders before leaf locks).
  TupleId tid2;
  {
    std::lock_guard<std::mutex> al(tbl->alloc_mu);
    if (!tbl->free_chains.empty()) {
      // Recycle a chain whose creating insert aborted (its index entry
      // is already gone — the free-list invariant).
      tid2 = tbl->free_chains.back();
      tbl->free_chains.pop_back();
    } else {
      tid2 = static_cast<TupleId>(tbl->tuples.Append());
    }
  }
  {
    std::unique_lock<std::shared_mutex> sl(tbl->heap_latch.For(tid2));
    Database::TupleChain& chain = tbl->tuples[tid2];
    chain.key = key;
    chain.versions.push_back(Database::Version{value, xid_, 0, false});
  }
  std::unique_lock<util::WpSharedMutex> il2;
  if (!olc) il2 = std::unique_lock<util::WpSharedMutex>(tbl->index_mu);
  BTree::InsertHooks hooks;
  if (sxact_) {
    hooks.probe = [&](const std::vector<PageId>& probe_pages, bool has_next,
                      PageId npage, uint32_t nslot) {
      // Gap probe: does any reader hold a predicate lock covering the
      // spot this key lands in? Runs under the gap's leaf locks, so a
      // reader's acquire-then-validate either made its lock visible here
      // or will fail validation and retry against the new entry.
      if (next_key_mode && has_next) {
        auto probe = db_->siread_.ProbeHeapWrite(table, npage, nslot);
        for (XactId h : probe.holder_xids) {
          if (h != xid_) db_->siread_.FlagRwConflictWithReader(h, sxact_);
        }
      }
      // Page-granule probe over every leaf this key's gap can span: with
      // erases leaving empty leaves behind, a reader's boundary page
      // lock (or coverage transferred off an erased granule) may sit on
      // a later leaf than the one the insert lands on.
      for (PageId pp : probe_pages) {
        auto probe = db_->siread_.ProbeHeapWrite(table, pp, kNoSlot);
        for (XactId h : probe.holder_xids) {
          if (h != xid_) db_->siread_.FlagRwConflictWithReader(h, sxact_);
        }
      }
      return !db_->siread_.Doomed(sxact_);
    };
  }
  if (next_key_mode) {
    hooks.transfer = [&](PageId npage, uint32_t nslot, PageId newp,
                         uint32_t news) {
      // This insert split the gap it landed in: a reader's next-key gap
      // lock sits on the OLD successor's granule, but a second insert
      // into the lower sub-gap will probe the NEW entry instead. Mirror
      // OnPageSplit: copy the old next-key granule's holders onto the
      // new entry's granule. Runs under the leaf locks, so the
      // successor cannot be relocated mid-transfer.
      db_->siread_.OnGapTransfer(table, npage, nslot, newp, news);
    };
  }
  PageId ipage;
  uint32_t islot;
  const BTree::InsertResult res =
      tbl->index.InsertGuarded(key, tid2, &ipage, &islot, hooks);
  if (res != BTree::InsertResult::kInserted) {
    // kAborted: the gap probe found us doomed. (kExists is unreachable —
    // the row lock pins absence — but is handled the same, defensively.)
    // Unwind the unpublished chain and recycle it directly: its index
    // entry never existed, so no GC record is needed.
    {
      std::unique_lock<std::shared_mutex> sl(tbl->heap_latch.For(tid2));
      Database::TupleChain& chain = tbl->tuples[tid2];
      chain.versions.clear();
      chain.key.clear();
    }
    {
      std::lock_guard<std::mutex> al(tbl->alloc_mu);
      tbl->free_chains.push_back(tid2);
    }
    if (il2.owns_lock()) il2.unlock();
    AbortInternal();
    return Status::SerializationFailure(
        "canceled due to rw-antidependency conflict");
  }
  writes_.push_back(WriteRec{table, tid2, /*created=*/true});
  return Status::OK();
}

Status Transaction::Put(TableId table, const std::string& key,
                        const std::string& value) {
  return WriteInternal(table, key, value, /*deleted=*/false, /*upsert=*/true);
}

Status Transaction::Insert(TableId table, const std::string& key,
                           const std::string& value) {
  return WriteInternal(table, key, value, /*deleted=*/false, /*upsert=*/false);
}

Status Transaction::Delete(TableId table, const std::string& key) {
  return WriteInternal(table, key, "", /*deleted=*/true, /*upsert=*/true);
}

}  // namespace pgssi
