#include "db/transaction_handle.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <limits>
#include <set>

#include "util/clock.h"

namespace pgssi {

namespace {
constexpr uint64_t kInfSeq = std::numeric_limits<uint64_t>::max();
constexpr uint32_t kNoSlot = std::numeric_limits<uint32_t>::max();
// Coarse table-gap lock key used by the S2PL phantom stub: scans take it
// shared, inserts/deletes exclusive. User keys never collide with it
// because it starts with a 0x01 control byte.
const std::string kGapLockKey = std::string("\x01", 1) + "gap";
// Keep hot version chains short: prune once they exceed this.
constexpr size_t kPruneChainLength = 8;
}  // namespace

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

Database::Database(const DatabaseOptions& opts)
    : opts_(opts), siread_(opts.engine) {}

Database::~Database() = default;

std::unique_ptr<Database> Database::Open(const DatabaseOptions& opts) {
  return std::unique_ptr<Database>(new Database(opts));
}

Status Database::CreateTable(const std::string& name, TableId* id) {
  std::unique_lock<std::shared_mutex> l(tables_mu_);
  auto it = table_names_.find(name);
  if (it != table_names_.end()) {
    if (id) *id = it->second;
    return Status::AlreadyExists("table " + name);
  }
  TableId tid = static_cast<TableId>(tables_.size() + 1);
  auto t = std::make_unique<Table>(tid, name, opts_.engine.btree_fanout,
                                   opts_.engine.heap_stripes);
  // Section 5.2.2: leaf splits transfer SIREAD predicate locks so moved
  // granules stay covered.
  t->index.SetSplitListener(
      [this, tid](PageId oldp, PageId newp, const std::vector<uint32_t>& moved) {
        siread_.OnPageSplit(tid, oldp, newp, moved);
      });
  tables_.push_back(std::move(t));
  table_names_[name] = tid;
  if (id) *id = tid;
  return Status::OK();
}

TableId Database::GetTableId(const std::string& name) const {
  std::shared_lock<std::shared_mutex> l(tables_mu_);
  auto it = table_names_.find(name);
  return it == table_names_.end() ? kInvalidTable : it->second;
}

Database::Table* Database::GetTable(TableId id) const {
  std::shared_lock<std::shared_mutex> l(tables_mu_);
  if (id == kInvalidTable || id > tables_.size()) return nullptr;
  return tables_[id - 1].get();
}

std::unique_ptr<Transaction> Database::Begin(const TxnOptions& opts) {
  return std::unique_ptr<Transaction>(new Transaction(this, opts));
}

void Database::RunSireadCleanup() {
  // Section 5.3 cleanup threshold. The bound must be computed carefully:
  // read LastCommittedSeq FIRST, then OldestActiveSnapshot, and clamp the
  // threshold to their minimum. A bare OldestActiveSnapshot is racy — a
  // thread can compute it (say, infinity, with nothing active), stall,
  // and apply it much later, freeing SIREAD state of transactions that
  // committed in the meantime while a concurrent reader is live. Any
  // transaction with commit_seq <= the pre-read bound was published
  // before the bound was read; a transaction the registry scan then
  // missed registered after the scan visited its shard, so its snapshot
  // reload (ordered after registration by the shard mutex) observed a
  // watermark >= the bound — it is not concurrent with anything freed.
  uint64_t bound = txn_mgr_.LastCommittedSeq();
  uint64_t oldest = txn_mgr_.OldestActiveSnapshot();
  siread_.Cleanup(std::min(bound, oldest));
}

size_t Database::LiveTupleChainCount(TableId table) const {
  Table* tbl = GetTable(table);
  if (!tbl) return 0;
  std::shared_lock<std::shared_mutex> il(tbl->index_mu);
  size_t n = 0;
  for (TupleId tid = 0; tid < tbl->tuples.size(); tid++) {
    std::shared_lock<std::shared_mutex> sl(tbl->heap_latch.For(tid));
    if (!tbl->tuples[tid].versions.empty()) n++;
  }
  return n;
}

size_t Database::IndexEntryCount(TableId table) const {
  Table* tbl = GetTable(table);
  if (!tbl) return 0;
  std::shared_lock<std::shared_mutex> il(tbl->index_mu);
  return tbl->index.size();
}

SsiStats Database::GetSsiStats() const {
  SsiStats s;
  s.ssi_aborts = siread_.ssi_aborts();
  s.ww_aborts = ww_aborts_.load(std::memory_order_relaxed);
  s.s2pl_deadlocks = s2pl_deadlocks_.load(std::memory_order_relaxed);
  s.page_promotions = siread_.page_promotions();
  s.relation_promotions = siread_.relation_promotions();
  s.safe_snapshots = safe_snapshots_.load(std::memory_order_relaxed);
  s.deferrable_retries = deferrable_retries_.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// Transaction lifecycle
// ---------------------------------------------------------------------------

Transaction::Transaction(Database* db, const TxnOptions& opts)
    : db_(db), opts_(opts) {
  const bool serializable = opts.isolation == IsolationLevel::kSerializable;
  use_s2pl_ = serializable &&
              db_->opts_.serializable_impl == SerializableImpl::kS2PL;
  use_ssi_ = serializable && !use_s2pl_;

  if (use_ssi_ && opts.read_only && opts.deferrable) {
    // DEFERRABLE: loop until a snapshot is retroactively proven safe
    // (Section 4 / Section 8.4). Take a snapshot, wait out every
    // read-write serializable transaction concurrent with it, and check
    // none of them committed with a dangerous out-edge.
    for (;;) {
      auto r = db_->txn_mgr_.Begin(/*serializable_rw=*/false);
      auto concurrent = db_->txn_mgr_.ActiveSerializableRW();
      db_->txn_mgr_.WaitForFinish(concurrent);
      bool unsafe = false;
      for (XactId x : concurrent) {
        if (db_->siread_.CommittedWithDangerousOut(x, r.snapshot_seq)) {
          unsafe = true;
          break;
        }
      }
      if (unsafe) {
        db_->txn_mgr_.Abort(r.xid);
        db_->deferrable_retries_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      xid_ = r.xid;
      snapshot_seq_ = r.snapshot_seq;
      sxact_ = db_->siread_.Register(xid_, snapshot_seq_, /*read_only=*/true);
      sxact_->safe_snapshot.store(true, std::memory_order_release);
      db_->safe_snapshots_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }

  auto r = db_->txn_mgr_.Begin(/*serializable_rw=*/use_ssi_ && !opts.read_only);
  xid_ = r.xid;
  snapshot_seq_ = use_s2pl_ ? kInfSeq : r.snapshot_seq;
  if (use_ssi_) {
    sxact_ = db_->siread_.Register(xid_, r.snapshot_seq, opts.read_only);
    if (opts.read_only && db_->opts_.engine.enable_read_only_opt &&
        !db_->txn_mgr_.AnyActiveSerializableRW()) {
      // Opportunistic safe snapshot: with no concurrent read-write
      // serializable transaction, Theorem 4 makes this snapshot safe
      // immediately, so the reader can skip SIREAD tracking entirely.
      sxact_->safe_snapshot.store(true, std::memory_order_release);
      db_->safe_snapshots_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

Transaction::~Transaction() {
  if (!finished_) AbortInternal();
}

Status Transaction::CheckActive() {
  if (finished_) return Status::Internal("transaction already finished");
  if (sxact_ && db_->siread_.Doomed(sxact_)) {
    AbortInternal();
    return Status::SerializationFailure(
        "canceled due to rw-antidependency conflict");
  }
  return Status::OK();
}

void Transaction::AbortInternal() {
  // Roll back uncommitted versions. Chains this transaction created
  // (new-key inserts) are garbage-collected: the index entry is erased
  // and the chain recycled — leaking them would bloat the heap forever
  // and distort next-key gap granules for every later reader.
  auto erase_own = [this](std::vector<Database::Version>& vs) {
    vs.erase(std::remove_if(vs.begin(), vs.end(),
                            [this](const Database::Version& v) {
                              return v.xid == xid_ && v.commit_seq == 0;
                            }),
             vs.end());
  };
  for (const WriteRec& w : writes_) {
    Database::Table* tbl = db_->GetTable(w.table);
    if (!tbl) continue;
    if (!w.created) {
      std::shared_lock<std::shared_mutex> il(tbl->index_mu);
      std::unique_lock<std::shared_mutex> sl(tbl->heap_latch.For(w.tid));
      erase_own(tbl->tuples[w.tid].versions);
      continue;
    }
    // Structural: removing the index entry needs the index latch
    // exclusively (which also excludes every chain reader/writer, so no
    // stripe is needed). Only this transaction ever wrote the chain —
    // the key's exclusive row lock is still held — so an empty chain
    // after rollback means the entry can go.
    std::unique_lock<std::shared_mutex> il(tbl->index_mu);
    Database::TupleChain& chain = tbl->tuples[w.tid];
    erase_own(chain.versions);
    if (!chain.versions.empty()) continue;
    TupleId itid;
    PageId page;
    uint32_t slot;
    if (tbl->index.Lookup(chain.key, &itid, &page, &slot) && itid == w.tid) {
      tbl->index.Erase(chain.key);
      // Readers that looked this key up (and found nothing visible) hold
      // SIREAD locks on the erased granule; future inserts of the key
      // will probe the gap instead, so transfer the coverage there —
      // the rejoin mirror of the insert-time gap split.
      std::string nk;
      TupleId ntid;
      PageId npage;
      uint32_t nslot;
      if (db_->opts_.engine.index_gap_locking == IndexGapLocking::kNextKey &&
          tbl->index.NextKey(chain.key, &nk, &ntid, &npage, &nslot)) {
        db_->siread_.OnGapTransfer(w.table, page, slot, npage, nslot);
      } else {
        db_->siread_.OnGapTransferToPage(w.table, page, slot,
                                         tbl->index.PageFor(chain.key));
      }
    }
    chain.key.clear();
    tbl->free_chains.push_back(w.tid);
  }
  writes_.clear();
  if (sxact_) {
    db_->siread_.Abort(sxact_);  // frees the xact
    sxact_ = nullptr;
  }
  db_->row_locks_.ReleaseAll(xid_);
  db_->txn_mgr_.Abort(xid_);
  if (use_ssi_) {
    db_->RunSireadCleanup();
  }
  finished_ = true;
}

Status Transaction::Abort() {
  if (finished_) return Status::OK();
  AbortInternal();
  return Status::OK();
}

Status Transaction::Commit() {
  if (finished_) return Status::Internal("transaction already finished");
  if (sxact_ && db_->siread_.Doomed(sxact_)) {
    AbortInternal();
    return Status::SerializationFailure(
        "canceled due to rw-antidependency conflict");
  }
  if (sxact_) {
    // Commit-time dangerous-structure test (Section 3.3).
    Status st = db_->siread_.PreCommit(sxact_);
    if (!st.ok()) {
      AbortInternal();
      return st;
    }
  }

  if (writes_.empty()) {
    // Read-only commit: no new commit sequence number needed. The xact
    // stays registered in the lock manager (its SIREAD locks may still
    // matter) until cleanup decides otherwise.
    if (sxact_) {
      // Never 0: commit_seq 0 means commit-pending to the lock manager.
      db_->siread_.MarkCommitted(
          sxact_, std::max<uint64_t>(1, db_->txn_mgr_.LastCommittedSeq()));
      sxact_ = nullptr;
    }
    db_->txn_mgr_.Abort(xid_);  // deregister only; nothing to stamp
  } else {
    uint64_t seq = db_->txn_mgr_.Commit(xid_, [this](uint64_t s) {
      for (const WriteRec& w : writes_) {
        Database::Table* tbl = db_->GetTable(w.table);
        std::shared_lock<std::shared_mutex> il(tbl->index_mu);
        std::unique_lock<std::shared_mutex> sl(tbl->heap_latch.For(w.tid));
        for (auto& v : tbl->tuples[w.tid].versions) {
          if (v.xid == xid_ && v.commit_seq == 0) v.commit_seq = s;
        }
      }
    });
    if (sxact_) {
      db_->siread_.MarkCommitted(sxact_, seq);
      sxact_ = nullptr;
    }
  }
  db_->row_locks_.ReleaseAll(xid_);
  if (use_ssi_) {
    // Section 5.3: committed xacts (and their SIREAD locks) are freed once
    // every transaction concurrent with them has finished.
    db_->RunSireadCleanup();
  }
  finished_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Visibility + SSI read tracking
// ---------------------------------------------------------------------------

int Transaction::VisibleVersion(const Database::TupleChain& chain) const {
  const auto& vs = chain.versions;
  for (int i = static_cast<int>(vs.size()) - 1; i >= 0; --i) {
    const Database::Version& v = vs[static_cast<size_t>(i)];
    if (v.xid == xid_) return i;  // own write
    if (v.commit_seq != 0 && v.commit_seq <= snapshot_seq_) return i;
  }
  return -1;
}

void Transaction::TrackRead(Database::Table* tbl,
                            const Database::TupleChain& chain,
                            int visible_idx, PageId page, uint32_t slot) {
  if (!sxact_ || sxact_->safe_snapshot) return;
  db_->siread_.AcquireTuple(sxact_, tbl->id, page, slot);
  // Any version newer than the one we read is an rw-antidependency:
  // we (reader) -rw-> its writer.
  const auto& vs = chain.versions;
  for (size_t j = visible_idx < 0 ? 0 : static_cast<size_t>(visible_idx) + 1;
       j < vs.size(); ++j) {
    if (vs[j].xid != xid_) {
      db_->siread_.FlagRwConflictWithWriter(sxact_, vs[j].xid);
    }
  }
}

void Transaction::AcquireGapLock(Database::Table* tbl,
                                 const std::string& key) {
  if (!sxact_ || sxact_->safe_snapshot) return;
  if (db_->opts_.engine.index_gap_locking == IndexGapLocking::kNextKey) {
    std::string nk;
    TupleId ntid;
    PageId npage;
    uint32_t nslot;
    if (tbl->index.NextKey(key, &nk, &ntid, &npage, &nslot)) {
      db_->siread_.AcquireTuple(sxact_, tbl->id, npage, nslot);
      return;
    }
  }
  db_->siread_.AcquirePage(sxact_, tbl->id, tbl->index.PageFor(key));
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

Status Transaction::Get(TableId table, const std::string& key,
                        std::string* value) {
  Status st = CheckActive();
  if (!st.ok()) return st;
  Database::Table* tbl = db_->GetTable(table);
  if (!tbl) return Status::InvalidArgument("no such table");
  SimulatedIoDelay(db_->opts_.engine.simulated_io_delay_us);

  if (use_s2pl_) {
    st = db_->row_locks_.Acquire(xid_, table, key, LockTable::Mode::kShared,
                                 db_->opts_.engine.lock_wait_timeout_us,
                                 db_->opts_.engine.deadlock_check_interval_us);
    if (!st.ok()) {
      db_->s2pl_deadlocks_.fetch_add(1, std::memory_order_relaxed);
      AbortInternal();
      return st;
    }
  }

  std::shared_lock<std::shared_mutex> il(tbl->index_mu);
  TupleId tid;
  PageId page;
  uint32_t slot;
  if (!tbl->index.Lookup(key, &tid, &page, &slot)) {
    // Phantom protection for a miss: lock the gap the key would occupy.
    AcquireGapLock(tbl, key);
    return Status::NotFound("key " + key);
  }
  std::shared_lock<std::shared_mutex> sl(tbl->heap_latch.For(tid));
  const Database::TupleChain& chain = tbl->tuples[tid];
  int vi = VisibleVersion(chain);
  TrackRead(tbl, chain, vi, page, slot);
  if (vi < 0 || chain.versions[static_cast<size_t>(vi)].deleted) {
    return Status::NotFound("key " + key);
  }
  if (value) *value = chain.versions[static_cast<size_t>(vi)].value;
  return Status::OK();
}

Status Transaction::ScanInternal(
    TableId table, const std::string& lo, const std::string& hi,
    const std::function<void(const std::string&, const std::string&)>& fn) {
  Status st = CheckActive();
  if (!st.ok()) return st;
  Database::Table* tbl = db_->GetTable(table);
  if (!tbl) return Status::InvalidArgument("no such table");
  SimulatedIoDelay(db_->opts_.engine.simulated_io_delay_us);

  if (use_s2pl_) {
    // Phantom stub: the table-gap lock blocks concurrent inserts/deletes.
    st = db_->row_locks_.Acquire(xid_, table, kGapLockKey,
                                 LockTable::Mode::kShared,
                                 db_->opts_.engine.lock_wait_timeout_us,
                                 db_->opts_.engine.deadlock_check_interval_us);
    if (!st.ok()) {
      db_->s2pl_deadlocks_.fetch_add(1, std::memory_order_relaxed);
      AbortInternal();
      return st;
    }
    // Two-phase: collect the (now stable) key set, lock each key shared,
    // then re-read values under the locks.
    std::vector<std::string> keys;
    {
      std::shared_lock<std::shared_mutex> il(tbl->index_mu);
      tbl->index.Scan(lo, hi,
                      [&](const std::string& k, TupleId, PageId, uint32_t) {
                        keys.push_back(k);
                        return true;
                      });
    }
    for (const std::string& k : keys) {
      st = db_->row_locks_.Acquire(xid_, table, k, LockTable::Mode::kShared,
                                   db_->opts_.engine.lock_wait_timeout_us,
                                   db_->opts_.engine.deadlock_check_interval_us);
      if (!st.ok()) {
        db_->s2pl_deadlocks_.fetch_add(1, std::memory_order_relaxed);
        AbortInternal();
        return st;
      }
    }
    std::shared_lock<std::shared_mutex> il(tbl->index_mu);
    for (const std::string& k : keys) {
      TupleId tid;
      PageId page;
      uint32_t slot;
      if (!tbl->index.Lookup(k, &tid, &page, &slot)) continue;
      std::shared_lock<std::shared_mutex> sl(tbl->heap_latch.For(tid));
      const Database::TupleChain& chain = tbl->tuples[tid];
      int vi = VisibleVersion(chain);
      if (vi >= 0 && !chain.versions[static_cast<size_t>(vi)].deleted) {
        fn(k, chain.versions[static_cast<size_t>(vi)].value);
      }
    }
    return Status::OK();
  }

  // Shared index pass for the whole scan (inserts are excluded, so the
  // leaf walk is stable); each visited chain takes its stripe for the
  // duration of the visit only.
  std::shared_lock<std::shared_mutex> il(tbl->index_mu);
  const bool track = sxact_ && !sxact_->safe_snapshot;
  const bool next_key_mode =
      db_->opts_.engine.index_gap_locking == IndexGapLocking::kNextKey;
  std::set<PageId> pages;
  tbl->index.Scan(lo, hi,
                  [&](const std::string& k, TupleId tid, PageId page,
                      uint32_t slot) {
                    std::shared_lock<std::shared_mutex> sl(
                        tbl->heap_latch.For(tid));
                    const Database::TupleChain& chain = tbl->tuples[tid];
                    int vi = VisibleVersion(chain);
                    if (track) {
                      if (!next_key_mode) pages.insert(page);
                      TrackRead(tbl, chain, vi, page, slot);
                    }
                    if (vi >= 0 &&
                        !chain.versions[static_cast<size_t>(vi)].deleted) {
                      fn(k, chain.versions[static_cast<size_t>(vi)].value);
                    }
                    return true;
                  });
  if (track) {
    if (next_key_mode) {
      // Lock the key that bounds the range on the right (phantoms there).
      AcquireGapLock(tbl, hi);
    } else {
      // Page-granularity gap locks: every leaf the scan touched, plus the
      // boundary leaves (covers empty ranges too).
      pages.insert(tbl->index.PageFor(lo));
      pages.insert(tbl->index.PageFor(hi));
      for (PageId p : pages) db_->siread_.AcquirePage(sxact_, table, p);
    }
  }
  return Status::OK();
}

Status Transaction::Scan(TableId table, const std::string& lo,
                         const std::string& hi,
                         std::vector<std::pair<std::string, std::string>>* out) {
  if (out) out->clear();
  return ScanInternal(table, lo, hi,
                      [out](const std::string& k, const std::string& v) {
                        if (out) out->emplace_back(k, v);
                      });
}

Status Transaction::Count(TableId table, const std::string& lo,
                          const std::string& hi, uint64_t* n) {
  uint64_t c = 0;
  Status st = ScanInternal(table, lo, hi,
                           [&c](const std::string&, const std::string&) { c++; });
  if (n) *n = c;
  return st;
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

Status Transaction::WriteInternal(TableId table, const std::string& key,
                                  const std::string& value, bool deleted,
                                  bool upsert) {
  Status st = CheckActive();
  if (!st.ok()) return st;
  if (opts_.read_only) {
    return Status::InvalidArgument("write in read-only transaction");
  }
  Database::Table* tbl = db_->GetTable(table);
  if (!tbl) return Status::InvalidArgument("no such table");
  SimulatedIoDelay(db_->opts_.engine.simulated_io_delay_us);

  // Row lock first (never while holding the index latch or a stripe). For
  // SI/SSI this
  // is the blocking half of first-updater-wins; for S2PL it is the
  // exclusive lock held to commit.
  st = db_->row_locks_.Acquire(xid_, table, key, LockTable::Mode::kExclusive,
                               db_->opts_.engine.lock_wait_timeout_us,
                               db_->opts_.engine.deadlock_check_interval_us);
  if (!st.ok()) {
    if (use_s2pl_) db_->s2pl_deadlocks_.fetch_add(1, std::memory_order_relaxed);
    AbortInternal();
    return st;
  }
  if (use_s2pl_) {
    // Inserting or deleting changes scan results: take the table-gap lock
    // exclusively (conflicts with S2PL scans). Existence is stable here
    // because we already hold the key's exclusive lock.
    bool exists;
    {
      std::shared_lock<std::shared_mutex> il(tbl->index_mu);
      exists = tbl->index.Lookup(key, nullptr, nullptr, nullptr);
    }
    if (!exists || deleted) {
      st = db_->row_locks_.Acquire(xid_, table, kGapLockKey,
                                   LockTable::Mode::kExclusive,
                                   db_->opts_.engine.lock_wait_timeout_us,
                                   db_->opts_.engine.deadlock_check_interval_us);
      if (!st.ok()) {
        db_->s2pl_deadlocks_.fetch_add(1, std::memory_order_relaxed);
        AbortInternal();
        return st;
      }
    }
  }

  // Existing chain: a single-chain write — shared index pass plus the
  // chain's stripe held exclusively. Writers of independent keys land on
  // independent stripes and run concurrently.
  {
    std::shared_lock<std::shared_mutex> il(tbl->index_mu);
    TupleId tid;
    PageId page;
    uint32_t slot;
    if (tbl->index.Lookup(key, &tid, &page, &slot)) {
      std::unique_lock<std::shared_mutex> sl(tbl->heap_latch.For(tid));
      Database::TupleChain& chain = tbl->tuples[tid];
      if (!use_s2pl_) {
        // First-updater-wins: a version committed after our snapshot means
        // a concurrent writer beat us.
        for (const auto& v : chain.versions) {
          if (v.commit_seq > snapshot_seq_ && v.commit_seq != 0) {
            sl.unlock();
            il.unlock();
            db_->ww_aborts_.fetch_add(1, std::memory_order_relaxed);
            AbortInternal();
            return Status::SerializationFailure(
                "could not serialize access due to concurrent update");
          }
        }
      }
      int vi = VisibleVersion(chain);
      bool visible_live =
          vi >= 0 && !chain.versions[static_cast<size_t>(vi)].deleted;
      if ((!upsert && !deleted && visible_live) ||
          (deleted && !visible_live)) {
        // Statement-level failure — but the statement still READ the
        // row's (non)existence to fail. Leave exactly the SIREAD lock and
        // rw-antidependency flags a Get would (Section 5.2: every read,
        // including reads performed implicitly by writes, must be
        // tracked), or a concurrent delete/insert of this key misses the
        // required rw edge and write skew can commit.
        TrackRead(tbl, chain, vi, page, slot);
        return visible_live ? Status::AlreadyExists("key " + key)
                            : Status::NotFound("key " + key);
      }
      if (sxact_) {
        // Probe at the index-reported coordinates: readers lock the
        // granule the index reports, and a leaf split may have moved the
        // entry since the chain was created.
        auto probe = db_->siread_.ProbeHeapWrite(table, page, slot);
        for (XactId h : probe.holder_xids) {
          if (h != xid_) db_->siread_.FlagRwConflictWithReader(h, sxact_);
        }
        if (db_->opts_.engine.enable_write_supersedes_siread) {
          db_->siread_.ReleaseOwnTuple(sxact_, table, page, slot);
        }
        if (db_->siread_.Doomed(sxact_)) {
          sl.unlock();
          il.unlock();
          AbortInternal();
          return Status::SerializationFailure(
              "canceled due to rw-antidependency conflict");
        }
      }
      if (!chain.versions.empty() && chain.versions.back().xid == xid_ &&
          chain.versions.back().commit_seq == 0) {
        chain.versions.back().value = value;
        chain.versions.back().deleted = deleted;
      } else {
        chain.versions.push_back(Database::Version{value, xid_, 0, deleted});
        writes_.push_back(WriteRec{table, tid, /*created=*/false});
      }
      // Prune stale history nobody can see anymore.
      if (chain.versions.size() > kPruneChainLength) {
        uint64_t oldest = db_->txn_mgr_.OldestActiveSnapshot();
        auto& vs = chain.versions;
        while (vs.size() > 1 && vs[1].commit_seq != 0 &&
               vs[1].commit_seq <= oldest) {
          vs.erase(vs.begin());
        }
      }
      return Status::OK();
    }
    if (deleted) {
      // Failed Delete of an absent key: the statement read the gap the
      // key would occupy — lock it exactly as a Get miss does (a shared
      // index pass suffices), so a concurrent insert of this key
      // produces the required rw edge.
      AcquireGapLock(tbl, key);
      return Status::NotFound("key " + key);
    }
  }

  // New key: a structural change (index insert, possible leaf split, gap
  // probes) — the only write path that takes the index latch exclusively.
  // The key's exclusive row lock (held since the preamble) pins its
  // (non)existence, so the miss observed under the shared latch above
  // cannot have been raced by another inserter.
  std::unique_lock<std::shared_mutex> il(tbl->index_mu);
  const bool next_key_mode =
      db_->opts_.engine.index_gap_locking == IndexGapLocking::kNextKey;
  if (sxact_) {
    // Gap probe: does any reader hold a predicate lock covering the spot
    // this key lands in?
    if (next_key_mode) {
      std::string nk;
      TupleId ntid;
      PageId npage;
      uint32_t nslot;
      if (tbl->index.NextKey(key, &nk, &ntid, &npage, &nslot)) {
        auto probe = db_->siread_.ProbeHeapWrite(table, npage, nslot);
        for (XactId h : probe.holder_xids) {
          if (h != xid_) db_->siread_.FlagRwConflictWithReader(h, sxact_);
        }
      }
    }
    // Page-granule probe over every leaf this key's gap can span: with
    // erases leaving empty leaves behind, a reader's boundary page lock
    // (or coverage transferred off an erased granule) may sit on a later
    // leaf than the one the insert lands on.
    std::vector<PageId> probe_pages;
    tbl->index.ProbePages(key, &probe_pages);
    for (PageId pp : probe_pages) {
      auto probe = db_->siread_.ProbeHeapWrite(table, pp, kNoSlot);
      for (XactId h : probe.holder_xids) {
        if (h != xid_) db_->siread_.FlagRwConflictWithReader(h, sxact_);
      }
    }
    if (db_->siread_.Doomed(sxact_)) {
      il.unlock();
      AbortInternal();
      return Status::SerializationFailure(
          "canceled due to rw-antidependency conflict");
    }
  }
  TupleId tid2;
  if (!tbl->free_chains.empty()) {
    // Recycle a chain whose creating insert aborted.
    tid2 = tbl->free_chains.back();
    tbl->free_chains.pop_back();
    tbl->tuples[tid2].key = key;
  } else {
    tid2 = tbl->tuples.size();
    tbl->tuples.push_back(Database::TupleChain{key, {}});
  }
  PageId ipage;
  uint32_t islot;
  tbl->index.Insert(key, tid2, &ipage, &islot);
  tbl->tuples[tid2].versions.push_back(
      Database::Version{value, xid_, 0, false});
  writes_.push_back(WriteRec{table, tid2, /*created=*/true});
  if (next_key_mode) {
    // This insert split the gap it landed in: a reader's next-key gap
    // lock sits on the OLD successor's granule, but a second insert into
    // the lower sub-gap will probe the NEW entry instead. Mirror
    // OnPageSplit: copy the old next-key granule's holders onto the new
    // entry's granule. Re-resolve the successor after the insert — a
    // leaf split during Insert may have relocated it (and its locks).
    std::string nk;
    TupleId ntid;
    PageId npage;
    uint32_t nslot;
    if (tbl->index.NextKey(key, &nk, &ntid, &npage, &nslot)) {
      db_->siread_.OnGapTransfer(table, npage, nslot, ipage, islot);
    }
  }
  return Status::OK();
}

Status Transaction::Put(TableId table, const std::string& key,
                        const std::string& value) {
  return WriteInternal(table, key, value, /*deleted=*/false, /*upsert=*/true);
}

Status Transaction::Insert(TableId table, const std::string& key,
                           const std::string& value) {
  return WriteInternal(table, key, value, /*deleted=*/false, /*upsert=*/false);
}

Status Transaction::Delete(TableId table, const std::string& key) {
  return WriteInternal(table, key, "", /*deleted=*/true, /*upsert=*/true);
}

}  // namespace pgssi
