#include "db/lock_table.h"

#include <algorithm>
#include <chrono>

#include "util/clock.h"

namespace pgssi {

bool LockTable::CanGrant(const Entry& e, XactId xid, Mode mode) const {
  if (mode == Mode::kShared) {
    return e.exclusive == 0 || e.exclusive == xid;
  }
  bool others_share = !e.sharers.empty() &&
                      !(e.sharers.size() == 1 && e.sharers.count(xid));
  return (e.exclusive == 0 || e.exclusive == xid) && !others_share;
}

void LockTable::Blockers(const Entry& e, XactId xid,
                         std::vector<XactId>* out) const {
  out->clear();
  if (e.exclusive != 0 && e.exclusive != xid) out->push_back(e.exclusive);
  for (XactId s : e.sharers) {
    if (s != xid) out->push_back(s);
  }
}

XactId LockTable::CycleVictim(XactId self) const {
  // self is deadlocked iff it lies on a waits_for_ cycle, i.e. some node is
  // both reachable from self and reaches self. Intersecting the forward and
  // backward reachable sets yields the full strongly connected component
  // (every node on ANY cycle through self), not just the one path a DFS
  // happens to find first — so every member of a deadlock computes the same
  // membership. Victim = max xid in the component: deterministic, exactly
  // one member aborts and the others proceed.
  std::unordered_set<XactId> fwd;  // reachable from self (excluding self)
  std::vector<XactId> stack;
  auto expand = [&](XactId cur) {
    auto it = waits_for_.find(cur);
    if (it == waits_for_.end()) return;
    for (XactId b : it->second) {
      if (b != self && fwd.insert(b).second) stack.push_back(b);
    }
  };
  expand(self);
  while (!stack.empty()) {
    XactId cur = stack.back();
    stack.pop_back();
    expand(cur);
  }
  if (fwd.empty()) return 0;

  // Backward set: grow "reaches self" until a fixpoint (wait-for graphs are
  // tiny — a handful of blocked xacts — so the quadratic sweep is cheap).
  std::unordered_set<XactId> bwd{self};
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto& [x, succs] : waits_for_) {
      if (bwd.count(x)) continue;
      for (XactId b : succs) {
        if (bwd.count(b)) {
          bwd.insert(x);
          grew = true;
          break;
        }
      }
    }
  }

  XactId victim = self;
  bool on_cycle = false;
  for (XactId x : fwd) {
    if (bwd.count(x)) {
      on_cycle = true;
      victim = std::max(victim, x);
    }
  }
  return on_cycle ? victim : 0;
}

void LockTable::MaybeEraseLocked(const Key& k) {
  auto lit = locks_.find(k);
  if (lit == locks_.end()) return;
  const Entry& e = lit->second;
  if (e.exclusive == 0 && e.sharers.empty() && e.waiters == 0 &&
      e.async_waiters.empty()) {
    locks_.erase(lit);
  }
}

void LockTable::DeregisterAsyncLocked(XactId xid) {
  auto wit = async_wait_key_.find(xid);
  if (wit == async_wait_key_.end()) return;
  Key k = wit->second;
  async_wait_key_.erase(wit);
  auto lit = locks_.find(k);
  if (lit != locks_.end()) {
    lit->second.async_waiters.erase(xid);
    MaybeEraseLocked(k);
  }
  waits_for_.erase(xid);
}

Status LockTable::AcquireAsync(XactId xid, TableId table,
                               const std::string& key, Mode mode,
                               bool timed_out,
                               const util::WaitTokenPtr& token) {
  util::WaitTokenPtr victim_token;
  Status st;
  {
    std::lock_guard<std::mutex> l(mu_);
    Key k{table, key};
    Entry& e = locks_[k];
    if (CanGrant(e, xid, mode)) {
      DeregisterAsyncLocked(xid);
      if (mode == Mode::kShared) {
        if (e.exclusive != xid && e.sharers.insert(xid).second) {
          held_[xid].push_back(k);
        }
      } else {
        if (e.exclusive != xid) {
          e.sharers.erase(xid);  // shared -> exclusive upgrade in place
          e.exclusive = xid;
          held_[xid].push_back(k);
        }
      }
      st = Status::OK();
    } else if (timed_out) {
      DeregisterAsyncLocked(xid);
      MaybeEraseLocked(k);
      st = Status::SerializationFailure("lock wait timeout");
    } else {
      // A retry on a different key than the previous registration (the
      // session abandoned an op) must not leak the old waiter slot.
      auto wit = async_wait_key_.find(xid);
      if (wit != async_wait_key_.end() && wit->second != k) {
        DeregisterAsyncLocked(xid);
      }
      Blockers(e, xid, &waits_for_[xid]);
      e.async_waiters[xid] = token;
      async_wait_key_[xid] = k;
      XactId victim = CycleVictim(xid);
      if (victim == xid) {
        DeregisterAsyncLocked(xid);
        MaybeEraseLocked(k);
        st = Status::SerializationFailure("deadlock detected");
      } else {
        if (victim != 0) {
          // The victim is some other cycle member. If it is parked
          // async it has no wakeup tick of its own — signal it so it
          // retries and discovers victimhood. (A blocking waiter
          // re-checks on its interval tick; no action needed.)
          auto vit = async_wait_key_.find(victim);
          if (vit != async_wait_key_.end()) {
            auto vlit = locks_.find(vit->second);
            if (vlit != locks_.end()) {
              auto tit = vlit->second.async_waiters.find(victim);
              if (tit != vlit->second.async_waiters.end()) {
                victim_token = tit->second;
              }
            }
          }
        }
        st = Status(Code::kWouldBlock, "lock wait");
      }
    }
  }
  if (victim_token) victim_token->Signal();
  return st;
}

Status LockTable::Acquire(XactId xid, TableId table, const std::string& key,
                          Mode mode, uint64_t timeout_us,
                          uint64_t check_interval_us) {
  std::unique_lock<std::mutex> l(mu_);
  Entry& e = locks_[{table, key}];
  const uint64_t deadline = NowMicros() + timeout_us;
  while (!CanGrant(e, xid, mode)) {
    e.waiters++;
    Blockers(e, xid, &waits_for_[xid]);
    if (IsDeadlockVictim(xid)) {
      waits_for_.erase(xid);
      e.waiters--;
      return Status::SerializationFailure("deadlock detected");
    }
    cv_.wait_for(l, std::chrono::microseconds(
                        check_interval_us ? check_interval_us : 1000));
    e.waiters--;
    if (NowMicros() > deadline && !CanGrant(e, xid, mode)) {
      waits_for_.erase(xid);
      return Status::SerializationFailure("lock wait timeout");
    }
  }
  waits_for_.erase(xid);
  if (mode == Mode::kShared) {
    if (e.exclusive != xid && e.sharers.insert(xid).second) {
      held_[xid].push_back({table, key});
    }
  } else {
    if (e.exclusive != xid) {
      e.sharers.erase(xid);  // shared -> exclusive upgrade in place
      e.exclusive = xid;
      held_[xid].push_back({table, key});
    }
  }
  return Status::OK();
}

void LockTable::ReleaseAll(XactId xid) {
  std::vector<util::WaitTokenPtr> wake;
  {
    std::lock_guard<std::mutex> l(mu_);
    auto it = held_.find(xid);
    if (it != held_.end()) {
      for (const Key& k : it->second) {
        auto lit = locks_.find(k);
        if (lit == locks_.end()) continue;
        Entry& e = lit->second;
        if (e.exclusive == xid) e.exclusive = 0;
        e.sharers.erase(xid);
        // Wake and deregister every async waiter parked on this key;
        // each re-issues AcquireAsync and re-registers if still blocked
        // (stale wait-for edges would otherwise fake deadlock cycles).
        for (auto& [w, tok] : e.async_waiters) {
          wake.push_back(tok);
          async_wait_key_.erase(w);
          waits_for_.erase(w);
        }
        e.async_waiters.clear();
        if (e.exclusive == 0 && e.sharers.empty() && e.waiters == 0) {
          locks_.erase(lit);
        }
      }
      held_.erase(it);
    }
    // xid itself may be async-parked (session aborted mid-wait).
    DeregisterAsyncLocked(xid);
    waits_for_.erase(xid);
  }
  cv_.notify_all();
  // Tokens signaled outside mu_: callbacks (net-server requeue) must
  // never run under the lock-table mutex (lock order: token cb may take
  // the server run-queue mutex, never the reverse).
  for (auto& t : wake) t->Signal();
}

size_t LockTable::LockedKeyCount() const {
  std::lock_guard<std::mutex> l(mu_);
  return locks_.size();
}

}  // namespace pgssi
