#include "workload/sibench.h"

#include <cstdio>

namespace pgssi::workload {

Sibench::Sibench(DbClient* client, uint64_t rows)
    : client_(client), rows_(rows) {}

Sibench::Sibench(Database* db, uint64_t rows)
    : owned_(std::make_unique<EmbeddedClient>(db)),
      client_(owned_.get()),
      rows_(rows) {}

std::string Sibench::KeyFor(uint64_t row) const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "k%08llu",
                static_cast<unsigned long long>(row));
  return buf;
}

Status Sibench::Load() {
  Status st = client_->CreateTable("sibench", &table_);
  if (!st.ok()) return st;
  const uint64_t batch = 1000;
  for (uint64_t base = 0; base < rows_; base += batch) {
    auto txn = client_->Begin({.isolation = IsolationLevel::kRepeatableRead});
    if (!txn) return Status::IOError("begin failed");
    for (uint64_t r = base; r < rows_ && r < base + batch; r++) {
      st = txn->Put(table_, KeyFor(r), "0");
      if (!st.ok()) return st;
    }
    st = txn->Commit();
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Status Sibench::RunUpdate(Random& rng, IsolationLevel iso) {
  auto txn = client_->Begin({.isolation = iso});
  if (!txn) return Status::IOError("begin failed");
  const std::string key = KeyFor(rng.Uniform(rows_));
  std::string v;
  Status st = txn->Get(table_, key, &v);
  if (!st.ok()) {
    (void)txn->Abort();
    return st;
  }
  st = txn->Put(table_, key, std::to_string(std::stoull(v) + 1));
  if (!st.ok()) {
    (void)txn->Abort();
    return st;
  }
  return txn->Commit();
}

Status Sibench::RunQuery(Random& rng, IsolationLevel iso) {
  (void)rng;
  auto txn = client_->Begin({.isolation = iso, .read_only = true});
  if (!txn) return Status::IOError("begin failed");
  std::vector<std::pair<std::string, std::string>> rows;
  Status st = txn->Scan(table_, KeyFor(0), KeyFor(rows_), &rows);
  if (!st.ok()) {
    (void)txn->Abort();
    return st;
  }
  uint64_t min_val = ~0ULL;
  for (const auto& [k, v] : rows) {
    uint64_t x = std::stoull(v);
    if (x < min_val) min_val = x;
  }
  (void)min_val;
  return txn->Commit();
}

Status Sibench::RunMixed(Random& rng, IsolationLevel iso) {
  return rng.Bernoulli(0.5) ? RunUpdate(rng, iso) : RunQuery(rng, iso);
}

}  // namespace pgssi::workload
