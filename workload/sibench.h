// SIBENCH (Cahill et al.): the simplest workload that exhibits SI
// anomalies. One table of N rows; update transactions modify one random
// row, query transactions read every row and report the minimum value.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/random.h"
#include "workload/client.h"

namespace pgssi::workload {

class Sibench {
 public:
  /// Transport-neutral: runs over any DbClient (embedded or wire).
  Sibench(DbClient* client, uint64_t rows);
  /// Convenience embedded form (owns the EmbeddedClient).
  Sibench(Database* db, uint64_t rows);

  Status Load();

  /// One update transaction: read-modify-write a random row.
  Status RunUpdate(Random& rng, IsolationLevel iso);
  /// One query transaction (declared read-only): scan all rows, find min.
  Status RunQuery(Random& rng, IsolationLevel iso);
  /// 50/50 update/query mix.
  Status RunMixed(Random& rng, IsolationLevel iso);

  TableId table() const { return table_; }

 private:
  std::string KeyFor(uint64_t row) const;

  std::unique_ptr<DbClient> owned_;
  DbClient* client_;
  uint64_t rows_;
  TableId table_ = kInvalidTable;
};

}  // namespace pgssi::workload
