// RUBiS bidding-mix stub (paper Section 8.3 / Figure 6).
//
// Items cycle through open/closed "epochs". Bidders read the item header
// and insert a bid into the current epoch; an auction-close transaction
// scans the epoch's bids, records the winning amount, and reopens the
// item at the next epoch. The invariant CheckConsistency verifies is the
// paper's kind of integrity constraint: every recorded winning amount is
// >= every bid in that epoch. Under plain SI the close can race a
// concurrent bid (the close's scan misses it, the bid's snapshot still
// shows the item open) — a classic write-skew-shaped anomaly, since the
// two transactions write disjoint keys. SERIALIZABLE must prevent it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/random.h"
#include "workload/client.h"

namespace pgssi::workload {

struct RubisConfig {
  uint32_t items = 64;
  double browse_fraction = 0.85;  // read-only share, as in the bidding mix
  double bid_fraction = 0.10;     // remainder is auction-close
  IsolationLevel isolation = IsolationLevel::kSerializable;
};

class Rubis {
 public:
  // Transaction-class indices reported by RunOne (per-class bench rows).
  enum Class : int { kBrowse = 0, kBid = 1, kClose = 2 };
  static constexpr const char* kClassNames[] = {"browse", "bid", "close"};

  /// Transport-neutral: runs over any DbClient (embedded or wire).
  Rubis(DbClient* client, const RubisConfig& cfg);
  /// Convenience embedded form (owns the EmbeddedClient).
  Rubis(Database* db, const RubisConfig& cfg);

  Status Load();
  /// One transaction from the configured mix; `*cls` (optional) reports
  /// which class ran.
  Status RunOne(Random& rng, int* cls = nullptr);

  /// Scans every closing record and verifies no bid in that epoch exceeds
  /// the recorded winning amount. *ok=false means SI let an anomaly
  /// through (the paper's point); serializable modes must keep it true.
  Status CheckConsistency(bool* ok);

 private:
  Status RunBrowse(Random& rng);
  Status RunBid(Random& rng);
  Status RunClose(Random& rng);

  std::unique_ptr<DbClient> owned_;
  DbClient* client_;
  RubisConfig cfg_;
  TableId items_ = kInvalidTable;
  TableId bids_ = kInvalidTable;
  TableId closings_ = kInvalidTable;
};

}  // namespace pgssi::workload
