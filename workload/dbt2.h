// DBT-2++ stub: a TPC-C-like order-entry mix, parameterized by the
// fraction of read-only transactions, as used in the paper's Figure 5
// experiments. Read-write transactions are a simplified New-Order
// (read warehouse + district, bump the district order counter, touch a
// handful of stock rows, insert an order); read-only transactions are a
// simplified Stock-Level (read district, scan a stock range).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/random.h"
#include "workload/client.h"

namespace pgssi::workload {

struct Dbt2Config {
  uint32_t warehouses = 16;
  uint32_t districts_per_warehouse = 10;
  uint32_t stock_per_warehouse = 100;
  double read_only_fraction = 0.0;
  IsolationLevel isolation = IsolationLevel::kSerializable;
};

class Dbt2 {
 public:
  // Transaction-class indices reported by RunOne (per-class bench rows).
  enum Class : int { kNewOrder = 0, kStockLevel = 1 };
  static constexpr const char* kClassNames[] = {"new_order", "stock_level"};

  /// Transport-neutral: runs over any DbClient (embedded or wire).
  Dbt2(DbClient* client, const Dbt2Config& cfg);
  /// Convenience embedded form (owns the EmbeddedClient).
  Dbt2(Database* db, const Dbt2Config& cfg);

  Status Load();
  /// One transaction from the configured mix; `*cls` (optional) reports
  /// which class ran.
  Status RunOne(Random& rng, int* cls = nullptr);

 private:
  Status RunNewOrder(Random& rng);
  Status RunStockLevel(Random& rng);

  std::unique_ptr<DbClient> owned_;
  DbClient* client_;
  Dbt2Config cfg_;
  TableId warehouse_ = kInvalidTable;
  TableId district_ = kInvalidTable;
  TableId stock_ = kInvalidTable;
  TableId orders_ = kInvalidTable;
};

}  // namespace pgssi::workload
