// DBT-2++ stub: a TPC-C-like order-entry mix, parameterized by the
// fraction of read-only transactions, as used in the paper's Figure 5
// experiments. Read-write transactions are a simplified New-Order
// (read warehouse + district, bump the district order counter, touch a
// handful of stock rows, insert an order); read-only transactions are a
// simplified Stock-Level (read district, scan a stock range).
#pragma once

#include <cstdint>
#include <string>

#include "db/transaction_handle.h"
#include "util/random.h"

namespace pgssi::workload {

struct Dbt2Config {
  uint32_t warehouses = 16;
  uint32_t districts_per_warehouse = 10;
  uint32_t stock_per_warehouse = 100;
  double read_only_fraction = 0.0;
  IsolationLevel isolation = IsolationLevel::kSerializable;
};

class Dbt2 {
 public:
  Dbt2(Database* db, const Dbt2Config& cfg);

  Status Load();
  /// One transaction from the configured mix.
  Status RunOne(Random& rng);

 private:
  Status RunNewOrder(Random& rng);
  Status RunStockLevel(Random& rng);

  Database* db_;
  Dbt2Config cfg_;
  TableId warehouse_ = kInvalidTable;
  TableId district_ = kInvalidTable;
  TableId stock_ = kInvalidTable;
  TableId orders_ = kInvalidTable;
};

}  // namespace pgssi::workload
