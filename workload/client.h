// Transport-neutral database access for the workloads.
//
// SIBENCH / DBT-2 / RUBiS are written against DbClient/DbTxn so the
// same transaction bodies run embedded (direct Transaction calls, the
// historical mode) or as wire clients against a net::Server — which is
// how the benches measure the network front end with connections far
// exceeding server workers.
//
// Threading contract: DbClient::Begin/CreateTable/GetTableId may be
// called from many driver threads concurrently; each returned DbTxn is
// used by its creating thread only, one live txn per thread (the shape
// every workload driver already has).
//
// CreateTable is open-or-create: OK with *id set whether the table was
// created or already existed (other errors pass through).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "db/transaction_handle.h"

namespace pgssi::workload {

class DbTxn {
 public:
  /// Destruction aborts an unfinished transaction.
  virtual ~DbTxn() = default;

  virtual Status Get(TableId table, const std::string& key,
                     std::string* value) = 0;
  virtual Status Put(TableId table, const std::string& key,
                     const std::string& value) = 0;
  virtual Status Insert(TableId table, const std::string& key,
                        const std::string& value) = 0;
  virtual Status Delete(TableId table, const std::string& key) = 0;
  virtual Status Scan(TableId table, const std::string& lo,
                      const std::string& hi,
                      std::vector<std::pair<std::string, std::string>>* out) = 0;
  virtual Status Count(TableId table, const std::string& lo,
                       const std::string& hi, uint64_t* n) = 0;
  virtual Status Commit() = 0;
  virtual Status Abort() = 0;
};

class DbClient {
 public:
  virtual ~DbClient() = default;

  /// Open-or-create; *id is set on success whether created or existing.
  virtual Status CreateTable(const std::string& name, TableId* id) = 0;
  virtual TableId GetTableId(const std::string& name) = 0;
  /// Null only on transport failure (embedded Begin never fails).
  virtual std::unique_ptr<DbTxn> Begin(const TxnOptions& opts = {}) = 0;
};

// ----- embedded (in-process) implementation -----

class EmbeddedTxn final : public DbTxn {
 public:
  explicit EmbeddedTxn(std::unique_ptr<Transaction> t) : t_(std::move(t)) {}
  ~EmbeddedTxn() override { (void)t_->Abort(); }

  Status Get(TableId table, const std::string& key,
             std::string* value) override {
    return t_->Get(table, key, value);
  }
  Status Put(TableId table, const std::string& key,
             const std::string& value) override {
    return t_->Put(table, key, value);
  }
  Status Insert(TableId table, const std::string& key,
                const std::string& value) override {
    return t_->Insert(table, key, value);
  }
  Status Delete(TableId table, const std::string& key) override {
    return t_->Delete(table, key);
  }
  Status Scan(TableId table, const std::string& lo, const std::string& hi,
              std::vector<std::pair<std::string, std::string>>* out) override {
    return t_->Scan(table, lo, hi, out);
  }
  Status Count(TableId table, const std::string& lo, const std::string& hi,
               uint64_t* n) override {
    return t_->Count(table, lo, hi, n);
  }
  Status Commit() override { return t_->Commit(); }
  Status Abort() override { return t_->Abort(); }

 private:
  std::unique_ptr<Transaction> t_;
};

class EmbeddedClient final : public DbClient {
 public:
  explicit EmbeddedClient(Database* db) : db_(db) {}

  Status CreateTable(const std::string& name, TableId* id) override {
    Status st = db_->CreateTable(name, id);
    if (st.code() == Code::kAlreadyExists) return Status::OK();
    return st;
  }
  TableId GetTableId(const std::string& name) override {
    return db_->GetTableId(name);
  }
  std::unique_ptr<DbTxn> Begin(const TxnOptions& opts) override {
    return std::make_unique<EmbeddedTxn>(db_->Begin(opts));
  }

 private:
  Database* db_;
};

}  // namespace pgssi::workload
