#include "workload/dbt2.h"

#include <cstdio>

namespace pgssi::workload {

namespace {
std::string WKey(uint32_t w) {
  char b[16];
  std::snprintf(b, sizeof(b), "%04u", w);
  return b;
}
std::string DKey(uint32_t w, uint32_t d) {
  char b[24];
  std::snprintf(b, sizeof(b), "%04u:%02u", w, d);
  return b;
}
std::string SKey(uint32_t w, uint32_t i) {
  char b[24];
  std::snprintf(b, sizeof(b), "%04u:%04u", w, i);
  return b;
}
}  // namespace

Dbt2::Dbt2(DbClient* client, const Dbt2Config& cfg)
    : client_(client), cfg_(cfg) {}

Dbt2::Dbt2(Database* db, const Dbt2Config& cfg)
    : owned_(std::make_unique<EmbeddedClient>(db)),
      client_(owned_.get()),
      cfg_(cfg) {}

Status Dbt2::Load() {
  Status st;
  if (!(st = client_->CreateTable("warehouse", &warehouse_)).ok()) return st;
  if (!(st = client_->CreateTable("district", &district_)).ok()) return st;
  if (!(st = client_->CreateTable("stock", &stock_)).ok()) return st;
  if (!(st = client_->CreateTable("orders", &orders_)).ok()) return st;

  for (uint32_t w = 1; w <= cfg_.warehouses; w++) {
    auto txn = client_->Begin({.isolation = IsolationLevel::kRepeatableRead});
    if (!txn) return Status::IOError("begin failed");
    st = txn->Put(warehouse_, WKey(w), "ytd=0");
    if (!st.ok()) return st;
    for (uint32_t d = 1; d <= cfg_.districts_per_warehouse; d++) {
      st = txn->Put(district_, DKey(w, d), "1");  // next order id
      if (!st.ok()) return st;
    }
    for (uint32_t i = 1; i <= cfg_.stock_per_warehouse; i++) {
      st = txn->Put(stock_, SKey(w, i), "100");
      if (!st.ok()) return st;
    }
    st = txn->Commit();
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Status Dbt2::RunOne(Random& rng, int* cls) {
  if (rng.Bernoulli(cfg_.read_only_fraction)) {
    if (cls) *cls = kStockLevel;
    return RunStockLevel(rng);
  }
  if (cls) *cls = kNewOrder;
  return RunNewOrder(rng);
}

Status Dbt2::RunNewOrder(Random& rng) {
  auto txn = client_->Begin({.isolation = cfg_.isolation});
  if (!txn) return Status::IOError("begin failed");
  const uint32_t w = 1 + static_cast<uint32_t>(rng.Uniform(cfg_.warehouses));
  const uint32_t d =
      1 + static_cast<uint32_t>(rng.Uniform(cfg_.districts_per_warehouse));
  std::string v;
  Status st = txn->Get(warehouse_, WKey(w), &v);
  if (!st.ok()) {
    (void)txn->Abort();
    return st;
  }
  st = txn->Get(district_, DKey(w, d), &v);
  if (!st.ok()) {
    (void)txn->Abort();
    return st;
  }
  const uint64_t oid = std::stoull(v);
  st = txn->Put(district_, DKey(w, d), std::to_string(oid + 1));
  if (!st.ok()) {
    (void)txn->Abort();
    return st;
  }
  // Order lines: read-modify-write a handful of stock rows.
  for (int line = 0; line < 5; line++) {
    const uint32_t item =
        1 + static_cast<uint32_t>(rng.Uniform(cfg_.stock_per_warehouse));
    st = txn->Get(stock_, SKey(w, item), &v);
    if (!st.ok()) {
      (void)txn->Abort();
      return st;
    }
    uint64_t qty = std::stoull(v);
    qty = qty > 10 ? qty - 10 : qty + 91;  // restock when low, as TPC-C does
    st = txn->Put(stock_, SKey(w, item), std::to_string(qty));
    if (!st.ok()) {
      (void)txn->Abort();
      return st;
    }
  }
  char okey[32];
  std::snprintf(okey, sizeof(okey), "%04u:%02u:%08llu", w, d,
                static_cast<unsigned long long>(oid));
  st = txn->Insert(orders_, okey, "order");
  if (!st.ok() && st.code() != Code::kAlreadyExists) {
    (void)txn->Abort();
    return st;
  }
  return txn->Commit();
}

Status Dbt2::RunStockLevel(Random& rng) {
  auto txn = client_->Begin({.isolation = cfg_.isolation, .read_only = true});
  if (!txn) return Status::IOError("begin failed");
  const uint32_t w = 1 + static_cast<uint32_t>(rng.Uniform(cfg_.warehouses));
  const uint32_t d =
      1 + static_cast<uint32_t>(rng.Uniform(cfg_.districts_per_warehouse));
  std::string v;
  Status st = txn->Get(district_, DKey(w, d), &v);
  if (!st.ok()) {
    (void)txn->Abort();
    return st;
  }
  // Count low-stock items over a 20-item window.
  const uint32_t lo =
      1 + static_cast<uint32_t>(rng.Uniform(
              cfg_.stock_per_warehouse > 20 ? cfg_.stock_per_warehouse - 20
                                            : 1));
  uint64_t n = 0;
  st = txn->Count(stock_, SKey(w, lo), SKey(w, lo + 19), &n);
  if (!st.ok()) {
    (void)txn->Abort();
    return st;
  }
  return txn->Commit();
}

}  // namespace pgssi::workload
