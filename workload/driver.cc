#include "workload/driver.h"

#include <atomic>
#include <thread>
#include <vector>

#include "util/clock.h"

namespace pgssi::workload {

DriverResult RunFixedDuration(const std::function<Status(int, Random&)>& fn,
                              int threads, double seconds) {
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> errors{0};
  const uint64_t start = NowMicros();
  const uint64_t deadline =
      start + static_cast<uint64_t>(seconds * 1e6);

  std::vector<Histogram> latencies(static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; i++) {
    workers.emplace_back([&, i] {
      // Each worker owns its Random: the generator is not thread-safe.
      Random rng(0x9E3779B9u * static_cast<uint64_t>(i + 1) + 1);
      Histogram& lat = latencies[static_cast<size_t>(i)];
      while (NowMicros() < deadline) {
        const uint64_t t0 = NowMicros();
        Status st = fn(i, rng);
        lat.Add(static_cast<double>(NowMicros() - t0));
        if (st.ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        } else if (st.IsSerializationFailure()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : workers) t.join();

  DriverResult r;
  r.committed = committed.load();
  r.serialization_failures = failures.load();
  r.other_errors = errors.load();
  r.seconds = static_cast<double>(NowMicros() - start) / 1e6;
  for (const Histogram& h : latencies) r.latency_us.Merge(h);
  return r;
}

}  // namespace pgssi::workload
