#include "workload/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/clock.h"

namespace pgssi::workload {

namespace {

bool Retryable(const Status& st, const RetryPolicy& retry) {
  if (st.IsSerializationFailure()) return true;
  if (!retry.retry_io_errors) return false;
  return st.code() == Code::kIOError || st.code() == Code::kOverloaded;
}

}  // namespace

DriverResult RunFixedDuration(const std::function<Status(int, Random&)>& fn,
                              int threads, double seconds) {
  return RunFixedDurationClassed(
      [&fn](int i, Random& rng, int* cls) {
        *cls = -1;  // unclassed
        return fn(i, rng);
      },
      {}, threads, seconds);
}

DriverResult RunFixedDurationClassed(
    const std::function<Status(int, Random&, int*)>& fn,
    const std::vector<std::string>& class_names, int threads, double seconds) {
  return RunFixedDurationClassed(fn, class_names, threads, seconds,
                                 RetryPolicy{});
}

DriverResult RunFixedDurationClassed(
    const std::function<Status(int, Random&, int*)>& fn,
    const std::vector<std::string>& class_names, int threads, double seconds,
    const RetryPolicy& retry) {
  const size_t ncls = class_names.size();
  const uint64_t start = NowMicros();
  const uint64_t deadline = start + static_cast<uint64_t>(seconds * 1e6);

  // Per-thread accumulators (no sharing during the run; folded after
  // the join).
  struct ThreadStats {
    Histogram latency;
    std::vector<ClassResult> classes;
  };
  std::vector<ThreadStats> per_thread(static_cast<size_t>(threads));
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> overloads{0};

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; i++) {
    workers.emplace_back([&, i] {
      // Each worker owns its Random: the generator is not thread-safe.
      Random rng(0x9E3779B9u * static_cast<uint64_t>(i + 1) + 1);
      ThreadStats& ts = per_thread[static_cast<size_t>(i)];
      ts.classes.resize(ncls);
      while (NowMicros() < deadline) {
        const uint64_t t0 = NowMicros();
        int cls = -1;
        Status st = fn(i, rng, &cls);
        // Retry loop: re-run failed-but-retryable attempts with capped
        // exponential backoff + jitter. With the default policy
        // (max_attempts = 1) this never fires.
        uint64_t backoff_us = retry.base_backoff_us;
        for (uint32_t attempt = 1;
             !st.ok() && attempt < retry.max_attempts &&
             Retryable(st, retry) && NowMicros() < deadline;
             attempt++) {
          if (st.code() == Code::kOverloaded) {
            overloads.fetch_add(1, std::memory_order_relaxed);
            if (cls >= 0 && static_cast<size_t>(cls) < ncls) {
              ts.classes[static_cast<size_t>(cls)].overload_refusals++;
            }
          }
          retries.fetch_add(1, std::memory_order_relaxed);
          if (cls >= 0 && static_cast<size_t>(cls) < ncls) {
            ts.classes[static_cast<size_t>(cls)].retries++;
          }
          std::this_thread::sleep_for(std::chrono::microseconds(
              backoff_us + rng.Uniform(backoff_us)));
          backoff_us = std::min(backoff_us * 2, retry.max_backoff_us);
          cls = -1;
          st = fn(i, rng, &cls);
        }
        const double lat = static_cast<double>(NowMicros() - t0);
        ts.latency.Add(lat);
        ClassResult* cr = (cls >= 0 && static_cast<size_t>(cls) < ncls)
                              ? &ts.classes[static_cast<size_t>(cls)]
                              : nullptr;
        if (cr) cr->latency_us.Add(lat);
        if (!st.ok() && st.code() == Code::kOverloaded) {
          overloads.fetch_add(1, std::memory_order_relaxed);
          if (cr) cr->overload_refusals++;
        }
        if (st.ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
          if (cr) cr->committed++;
        } else if (st.IsSerializationFailure()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          if (cr) cr->serialization_failures++;
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);
          if (cr) cr->other_errors++;
        }
      }
    });
  }
  for (auto& t : workers) t.join();

  DriverResult r;
  r.committed = committed.load();
  r.serialization_failures = failures.load();
  r.other_errors = errors.load();
  r.retries = retries.load();
  r.overload_refusals = overloads.load();
  r.seconds = static_cast<double>(NowMicros() - start) / 1e6;
  r.classes.resize(ncls);
  for (size_t c = 0; c < ncls; c++) r.classes[c].name = class_names[c];
  for (const ThreadStats& ts : per_thread) {
    r.latency_us.Merge(ts.latency);
    for (size_t c = 0; c < ncls && c < ts.classes.size(); c++) {
      r.classes[c].committed += ts.classes[c].committed;
      r.classes[c].serialization_failures +=
          ts.classes[c].serialization_failures;
      r.classes[c].other_errors += ts.classes[c].other_errors;
      r.classes[c].retries += ts.classes[c].retries;
      r.classes[c].overload_refusals += ts.classes[c].overload_refusals;
      r.classes[c].latency_us.Merge(ts.classes[c].latency_us);
    }
  }
  return r;
}

}  // namespace pgssi::workload
