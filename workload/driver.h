// Fixed-duration multi-threaded workload driver used by all the figure
// benches: runs a per-transaction closure on N threads for a wall-clock
// window and aggregates commit/serialization-failure counts.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/histogram.h"
#include "util/random.h"
#include "util/status.h"

namespace pgssi::workload {

// Per-transaction-class slice of a run (e.g. dbt2/new_order): its own
// commit/abort counts and latency distribution alongside the totals.
struct ClassResult {
  std::string name;
  uint64_t committed = 0;
  uint64_t serialization_failures = 0;
  uint64_t other_errors = 0;
  Histogram latency_us;

  double FailureRate() const {
    uint64_t attempts = committed + serialization_failures;
    return attempts > 0
               ? static_cast<double>(serialization_failures) /
                     static_cast<double>(attempts)
               : 0;
  }
};

struct DriverResult {
  uint64_t committed = 0;
  uint64_t serialization_failures = 0;
  uint64_t other_errors = 0;
  double seconds = 0;
  // Per-attempt latency in microseconds (committed and failed attempts
  // alike), folded from per-thread histograms after the run.
  Histogram latency_us;
  // Filled only by RunFixedDurationClassed, in class-index order.
  std::vector<ClassResult> classes;

  double Throughput() const {
    return seconds > 0 ? static_cast<double>(committed) / seconds : 0;
  }
  double FailureRate() const {
    uint64_t attempts = committed + serialization_failures;
    return attempts > 0
               ? static_cast<double>(serialization_failures) /
                     static_cast<double>(attempts)
               : 0;
  }
};

/// Runs `fn(thread_index, rng)` in a loop on `threads` threads for
/// `seconds` of wall clock. fn returns OK for a committed transaction,
/// kSerializationFailure for an aborted-and-retryable one.
DriverResult RunFixedDuration(const std::function<Status(int, Random&)>& fn,
                              int threads, double seconds);

/// Like RunFixedDuration, but fn also reports which transaction class
/// it ran (an index into `class_names`, e.g. Dbt2::Class) so the result
/// carries per-class commit/abort-rate and latency series. A class
/// index outside [0, class_names.size()) counts toward the totals only.
DriverResult RunFixedDurationClassed(
    const std::function<Status(int, Random&, int*)>& fn,
    const std::vector<std::string>& class_names, int threads, double seconds);

}  // namespace pgssi::workload
