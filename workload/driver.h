// Fixed-duration multi-threaded workload driver used by all the figure
// benches: runs a per-transaction closure on N threads for a wall-clock
// window and aggregates commit/serialization-failure counts.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/histogram.h"
#include "util/random.h"
#include "util/status.h"

namespace pgssi::workload {

// Per-transaction-class slice of a run (e.g. dbt2/new_order): its own
// commit/abort counts and latency distribution alongside the totals.
struct ClassResult {
  std::string name;
  uint64_t committed = 0;
  uint64_t serialization_failures = 0;
  uint64_t other_errors = 0;
  // Failed attempts that the driver's RetryPolicy re-ran (each retried
  // attempt counts once; the transaction's final outcome lands in the
  // counters above exactly once).
  uint64_t retries = 0;
  // Attempts refused with kOverloaded (admission control), whether or
  // not they were subsequently retried.
  uint64_t overload_refusals = 0;
  Histogram latency_us;

  double FailureRate() const {
    uint64_t attempts = committed + serialization_failures;
    return attempts > 0
               ? static_cast<double>(serialization_failures) /
                     static_cast<double>(attempts)
               : 0;
  }
};

struct DriverResult {
  uint64_t committed = 0;
  uint64_t serialization_failures = 0;
  uint64_t other_errors = 0;
  uint64_t retries = 0;
  uint64_t overload_refusals = 0;
  double seconds = 0;
  // Per-transaction latency in microseconds (committed and failed
  // transactions alike; with a RetryPolicy this spans every attempt
  // plus backoff — the client-observed latency), folded from per-thread
  // histograms after the run.
  Histogram latency_us;
  // Filled only by RunFixedDurationClassed, in class-index order.
  std::vector<ClassResult> classes;

  double Throughput() const {
    return seconds > 0 ? static_cast<double>(committed) / seconds : 0;
  }
  double FailureRate() const {
    uint64_t attempts = committed + serialization_failures;
    return attempts > 0
               ? static_cast<double>(serialization_failures) /
                     static_cast<double>(attempts)
               : 0;
  }
};

/// How a driver thread reacts to a failed transaction attempt: re-run
/// the whole closure with capped exponential backoff + jitter.
/// Serialization failures (and deadlocks/timeouts, which surface as
/// serialization failures) are always retryable once max_attempts > 1;
/// kOverloaded and kIOError are retried only with retry_io_errors set
/// (over the wire an IOError can be an ambiguous ack — the workload
/// must tolerate "committed but reported dead connection" replays).
/// The default (max_attempts = 1) disables retrying: every failure is
/// reported straight to the result counters, matching the historical
/// behavior of all existing benches.
struct RetryPolicy {
  uint32_t max_attempts = 1;
  uint64_t base_backoff_us = 200;
  uint64_t max_backoff_us = 20'000;
  bool retry_io_errors = false;
};

/// Runs `fn(thread_index, rng)` in a loop on `threads` threads for
/// `seconds` of wall clock. fn returns OK for a committed transaction,
/// kSerializationFailure for an aborted-and-retryable one.
DriverResult RunFixedDuration(const std::function<Status(int, Random&)>& fn,
                              int threads, double seconds);

/// Like RunFixedDuration, but fn also reports which transaction class
/// it ran (an index into `class_names`, e.g. Dbt2::Class) so the result
/// carries per-class commit/abort-rate and latency series. A class
/// index outside [0, class_names.size()) counts toward the totals only.
DriverResult RunFixedDurationClassed(
    const std::function<Status(int, Random&, int*)>& fn,
    const std::vector<std::string>& class_names, int threads, double seconds);

/// Retrying variant: failed attempts matching `retry` are re-run after
/// backoff until they succeed, stop being retryable, exhaust
/// max_attempts, or the run deadline passes. Only the FINAL attempt's
/// outcome lands in committed/serialization_failures/other_errors;
/// earlier attempts count in `retries` (attributed to the class each
/// failed attempt reported).
DriverResult RunFixedDurationClassed(
    const std::function<Status(int, Random&, int*)>& fn,
    const std::vector<std::string>& class_names, int threads, double seconds,
    const RetryPolicy& retry);

}  // namespace pgssi::workload
