#include "workload/rubis.h"

#include <cstdio>

namespace pgssi::workload {

namespace {
std::string ItemKey(uint32_t i) {
  char b[16];
  std::snprintf(b, sizeof(b), "%04u", i);
  return b;
}
std::string EpochPrefix(uint32_t i, uint64_t epoch) {
  char b[32];
  std::snprintf(b, sizeof(b), "%04u:%06llu:", i,
                static_cast<unsigned long long>(epoch));
  return b;
}
std::string BidKey(uint32_t i, uint64_t epoch, uint64_t uniq) {
  char b[48];
  std::snprintf(b, sizeof(b), "%04u:%06llu:%016llx", i,
                static_cast<unsigned long long>(epoch),
                static_cast<unsigned long long>(uniq));
  return b;
}
std::string ClosingKey(uint32_t i, uint64_t epoch) {
  char b[32];
  std::snprintf(b, sizeof(b), "%04u:%06llu", i,
                static_cast<unsigned long long>(epoch));
  return b;
}
}  // namespace

Rubis::Rubis(DbClient* client, const RubisConfig& cfg)
    : client_(client), cfg_(cfg) {}

Rubis::Rubis(Database* db, const RubisConfig& cfg)
    : owned_(std::make_unique<EmbeddedClient>(db)),
      client_(owned_.get()),
      cfg_(cfg) {}

Status Rubis::Load() {
  Status st;
  if (!(st = client_->CreateTable("items", &items_)).ok()) return st;
  if (!(st = client_->CreateTable("bids", &bids_)).ok()) return st;
  if (!(st = client_->CreateTable("closings", &closings_)).ok()) return st;
  auto txn = client_->Begin({.isolation = IsolationLevel::kRepeatableRead});
  if (!txn) return Status::IOError("begin failed");
  for (uint32_t i = 1; i <= cfg_.items; i++) {
    st = txn->Put(items_, ItemKey(i), "0");  // current epoch
    if (!st.ok()) return st;
  }
  return txn->Commit();
}

Status Rubis::RunOne(Random& rng, int* cls) {
  double r = rng.NextDouble();
  if (r < cfg_.browse_fraction) {
    if (cls) *cls = kBrowse;
    return RunBrowse(rng);
  }
  if (r < cfg_.browse_fraction + cfg_.bid_fraction) {
    if (cls) *cls = kBid;
    return RunBid(rng);
  }
  if (cls) *cls = kClose;
  return RunClose(rng);
}

Status Rubis::RunBrowse(Random& rng) {
  auto txn = client_->Begin({.isolation = cfg_.isolation, .read_only = true});
  if (!txn) return Status::IOError("begin failed");
  const uint32_t item = 1 + static_cast<uint32_t>(rng.Uniform(cfg_.items));
  std::string v;
  Status st = txn->Get(items_, ItemKey(item), &v);
  if (!st.ok()) {
    (void)txn->Abort();
    return st;
  }
  const uint64_t epoch = std::stoull(v);
  std::vector<std::pair<std::string, std::string>> rows;
  st = txn->Scan(bids_, EpochPrefix(item, epoch),
                 EpochPrefix(item, epoch) + "\x7f", &rows);
  if (!st.ok()) {
    (void)txn->Abort();
    return st;
  }
  return txn->Commit();
}

Status Rubis::RunBid(Random& rng) {
  auto txn = client_->Begin({.isolation = cfg_.isolation});
  if (!txn) return Status::IOError("begin failed");
  const uint32_t item = 1 + static_cast<uint32_t>(rng.Uniform(cfg_.items));
  std::string v;
  Status st = txn->Get(items_, ItemKey(item), &v);
  if (!st.ok()) {
    (void)txn->Abort();
    return st;
  }
  const uint64_t epoch = std::stoull(v);
  const uint64_t amount = 1 + rng.Uniform(1000);
  st = txn->Insert(bids_, BidKey(item, epoch, rng.Next()),
                   std::to_string(amount));
  if (!st.ok() && st.code() != Code::kAlreadyExists) {
    (void)txn->Abort();
    return st;
  }
  return txn->Commit();
}

Status Rubis::RunClose(Random& rng) {
  // Close the item's current epoch: record the winning amount, then
  // reopen at the next epoch. Writes (closings, items) are disjoint from
  // a bidder's write (bids) — under SI this races with a concurrent bid.
  auto txn = client_->Begin({.isolation = cfg_.isolation});
  if (!txn) return Status::IOError("begin failed");
  const uint32_t item = 1 + static_cast<uint32_t>(rng.Uniform(cfg_.items));
  std::string v;
  Status st = txn->Get(items_, ItemKey(item), &v);
  if (!st.ok()) {
    (void)txn->Abort();
    return st;
  }
  const uint64_t epoch = std::stoull(v);
  std::vector<std::pair<std::string, std::string>> rows;
  st = txn->Scan(bids_, EpochPrefix(item, epoch),
                 EpochPrefix(item, epoch) + "\x7f", &rows);
  if (!st.ok()) {
    (void)txn->Abort();
    return st;
  }
  uint64_t max_bid = 0;
  for (const auto& [k, amount] : rows) {
    uint64_t a = std::stoull(amount);
    if (a > max_bid) max_bid = a;
  }
  st = txn->Put(closings_, ClosingKey(item, epoch), std::to_string(max_bid));
  if (!st.ok()) {
    (void)txn->Abort();
    return st;
  }
  st = txn->Put(items_, ItemKey(item), std::to_string(epoch + 1));
  if (!st.ok()) {
    (void)txn->Abort();
    return st;
  }
  return txn->Commit();
}

Status Rubis::CheckConsistency(bool* ok) {
  if (ok) *ok = true;
  auto txn = client_->Begin({.isolation = IsolationLevel::kRepeatableRead});
  if (!txn) return Status::IOError("begin failed");
  std::vector<std::pair<std::string, std::string>> closings;
  Status st = txn->Scan(closings_, "", "\x7f", &closings);
  if (!st.ok()) {
    (void)txn->Abort();
    return st;
  }
  for (const auto& [key, winner] : closings) {
    const uint64_t recorded = std::stoull(winner);
    std::vector<std::pair<std::string, std::string>> bids;
    st = txn->Scan(bids_, key + ":", key + ":\x7f", &bids);
    if (!st.ok()) {
      (void)txn->Abort();
      return st;
    }
    for (const auto& [bk, amount] : bids) {
      if (std::stoull(amount) > recorded) {
        if (ok) *ok = false;
      }
    }
  }
  return txn->Commit();
}

}  // namespace pgssi::workload
