// Epoch-based reclamation: protocol unit tests (pin/retire/advance
// ordering, sweep gating, deleter accounting) plus churn stress over
// the SIREAD manager in both epoch_reclaim modes, ending with the
// limbo provably drained (RetiredObjectCount() == 0) and, in epoch
// mode, zero exclusive registry acquisitions on the teardown path.
#include "util/epoch.h"

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "db/config.h"
#include "ssi/siread_lock_manager.h"

namespace pgssi {
namespace {

using util::EpochManager;

struct Tracked {
  explicit Tracked(std::atomic<int>* live) : live_(live) {
    live_->fetch_add(1);
  }
  ~Tracked() { live_->fetch_sub(1); }
  std::atomic<int>* live_;
};

void DeleteTracked(void* p) { delete static_cast<Tracked*>(p); }

TEST(EpochTest, RetireWithoutPinsFreesOnNextSweep) {
  EpochManager em;
  std::atomic<int> live{0};
  em.Retire(new Tracked(&live), DeleteTracked);
  em.Retire(new Tracked(&live), DeleteTracked);
  EXPECT_EQ(em.RetiredObjectCount(), 2u);
  EXPECT_EQ(live.load(), 2);
  // No pins anywhere: a single sweep may free everything.
  em.TryAdvanceAndSweep();
  EXPECT_EQ(em.RetiredObjectCount(), 0u);
  EXPECT_EQ(live.load(), 0);
  EXPECT_EQ(em.FreedObjectCount(), 2u);
}

TEST(EpochTest, ActivePinBlocksSweepOfItsEpoch) {
  EpochManager em;
  std::atomic<int> live{0};
  {
    EpochManager::Pin pin(&em);
    em.Retire(new Tracked(&live), DeleteTracked);
    // The pin predates (or equals) the retiree's epoch: no amount of
    // sweeping may free it while the pin is held.
    for (int i = 0; i < 10; i++) em.TryAdvanceAndSweep();
    EXPECT_EQ(live.load(), 1);
    EXPECT_EQ(em.RetiredObjectCount(), 1u);
  }
  em.Quiesce();
  EXPECT_EQ(live.load(), 0);
  EXPECT_EQ(em.RetiredObjectCount(), 0u);
}

TEST(EpochTest, PinTakenAfterRetireDoesNotBlockForever) {
  EpochManager em;
  std::atomic<int> live{0};
  em.Retire(new Tracked(&live), DeleteTracked);
  // Advance twice so a subsequent pin provably post-dates the retiree's
  // generation by the required two epochs.
  em.TryAdvanceAndSweep();
  if (em.RetiredObjectCount() == 0) {
    // Already freed (no pins at all) — equally correct.
    EXPECT_EQ(live.load(), 0);
    return;
  }
  em.TryAdvanceAndSweep();
  EpochManager::Pin pin(&em);
  em.TryAdvanceAndSweep();
  EXPECT_EQ(live.load(), 0);
}

TEST(EpochTest, NestedPinsCountAsOne) {
  EpochManager em;
  std::atomic<int> live{0};
  {
    EpochManager::Pin outer(&em);
    {
      EpochManager::Pin inner(&em);  // same thread -> same slot, nested
      em.Retire(new Tracked(&live), DeleteTracked);
    }
    // Outer pin still held: nothing frees.
    for (int i = 0; i < 10; i++) em.TryAdvanceAndSweep();
    EXPECT_EQ(live.load(), 1);
  }
  em.Quiesce();
  EXPECT_EQ(live.load(), 0);
}

TEST(EpochTest, SweepWaitsForEveryPinnedThread) {
  EpochManager em;
  std::atomic<int> live{0};
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  // A second thread holds a pin (distinct slot with high probability;
  // a collision only strengthens the blocking, never weakens it).
  std::thread holder([&] {
    EpochManager::Pin pin(&em);
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();
  em.Retire(new Tracked(&live), DeleteTracked);
  for (int i = 0; i < 10; i++) em.TryAdvanceAndSweep();
  EXPECT_EQ(live.load(), 1) << "freed while a concurrent pin was active";
  release.store(true);
  holder.join();
  em.Quiesce();
  EXPECT_EQ(live.load(), 0);
  EXPECT_EQ(em.RetiredObjectCount(), 0u);
}

TEST(EpochTest, DestructorFreesLeftovers) {
  std::atomic<int> live{0};
  {
    EpochManager em;
    em.Retire(new Tracked(&live), DeleteTracked);
    EXPECT_EQ(live.load(), 1);
  }
  EXPECT_EQ(live.load(), 0);
}

TEST(EpochTest, AmortizedTickEventuallySweeps) {
  EpochManager em;
  std::atomic<int> live{0};
  em.Retire(new Tracked(&live), DeleteTracked);
  for (uint32_t i = 0; i < 4 * EpochManager::kTickPeriod; i++) {
    em.AmortizedTick();
  }
  EXPECT_EQ(live.load(), 0);
}

TEST(EpochTest, ConcurrentRetireAndSweepStress) {
  EpochManager em;
  std::atomic<int> live{0};
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; t++) {
    ts.emplace_back([&, t] {
      std::mt19937 rng(t);
      for (int i = 0; i < kPerThread; i++) {
        if (rng() % 4 == 0) {
          EpochManager::Pin pin(&em);
          em.Retire(new Tracked(&live), DeleteTracked);
        } else {
          em.Retire(new Tracked(&live), DeleteTracked);
        }
        em.AmortizedTick();
      }
    });
  }
  for (auto& t : ts) t.join();
  em.Quiesce();
  EXPECT_EQ(em.RetiredObjectCount(), 0u);
  EXPECT_EQ(live.load(), 0);
  EXPECT_EQ(em.FreedObjectCount(),
            static_cast<uint64_t>(kThreads * kPerThread));
}

// ---------------------------------------------------------------------------
// SIREAD manager teardown churn under both reclamation modes.
// ---------------------------------------------------------------------------

EngineConfig ConfigFor(uint32_t epoch_reclaim) {
  EngineConfig cfg;
  cfg.epoch_reclaim = epoch_reclaim;
  return cfg;
}

// Register/flag/abort/commit/cleanup churn across 8 threads. In epoch
// mode asserts the hard acceptance bound: the teardown path performed
// ZERO exclusive registry acquisitions, and the limbo drains to zero
// after quiesce.
void RunXactChurn(uint32_t epoch_reclaim) {
  EngineConfig cfg = ConfigFor(epoch_reclaim);
  EpochManager em;
  ssi::SireadLockManager mgr(cfg, &em);
  ASSERT_EQ(mgr.epoch_mode(), epoch_reclaim != 0);
  const uint64_t exclusive_before = mgr.registry_exclusive_acquires();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 1500;
  std::atomic<uint64_t> next_xid{1};
  std::atomic<uint64_t> next_seq{1};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; t++) {
    ts.emplace_back([&, t] {
      std::mt19937 rng(1000 + t);
      for (int i = 0; i < kPerThread; i++) {
        const XactId xid = next_xid.fetch_add(1);
        const uint64_t snap = next_seq.load();
        ssi::SerializableXact* x = mgr.Register(xid, snap, false);
        // SIREAD traffic so teardown has granules to sweep.
        mgr.AcquireTuple(x, /*rel=*/1, /*page=*/rng() % 64, rng() % 8);
        mgr.AcquireTuple(x, /*rel=*/2, /*page=*/rng() % 16, rng() % 8);
        (void)mgr.ProbeHeapWrite(1, rng() % 64, rng() % 8);
        // Conflict-graph traffic against a random (possibly torn-down)
        // recent xid — exercises xid resolution racing teardown.
        if (xid > 4) {
          mgr.FlagRwConflictWithWriter(x, xid - 1 - rng() % 4);
          mgr.FlagRwConflictWithReader(xid - 1 - rng() % 4, x);
        }
        if (rng() % 3 == 0) {
          mgr.Abort(x);
        } else {
          if (mgr.PreCommit(x).ok()) {
            mgr.MarkCommitted(x, next_seq.fetch_add(1));
          } else {
            mgr.Abort(x);
          }
        }
        if (rng() % 64 == 0) {
          // Everything that committed below the current floor is dead.
          mgr.Cleanup(next_seq.load());
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  mgr.Cleanup(next_seq.load() + 1);
  em.Quiesce();
  EXPECT_EQ(mgr.RegisteredCount(), 0u);
  EXPECT_EQ(mgr.TotalLockCount(), 0u);
  EXPECT_EQ(em.RetiredObjectCount(), 0u);
  // Audit the counter BEFORE CheckConsistency — that call takes the
  // registry exclusive by design (stop-the-world introspection).
  if (epoch_reclaim != 0) {
    // The whole churn — every Abort, Cleanup, Register, flag — must not
    // have taken the registry lock exclusive even once.
    EXPECT_EQ(mgr.registry_exclusive_acquires(), exclusive_before);
  } else {
    EXPECT_GT(mgr.registry_exclusive_acquires(), exclusive_before);
  }
  EXPECT_TRUE(mgr.CheckConsistency());
}

TEST(EpochReclaimTest, XactChurnEpochMode) { RunXactChurn(1); }

TEST(EpochReclaimTest, XactChurnLegacyMode) { RunXactChurn(0); }

TEST(EpochReclaimTest, GranuleEntriesRetireThroughLimbo) {
  EngineConfig cfg = ConfigFor(1);
  EpochManager em;
  ssi::SireadLockManager mgr(cfg, &em);
  ssi::SerializableXact* x = mgr.Register(1, 1, false);
  for (uint32_t s = 0; s < 8; s++) mgr.AcquireTuple(x, 1, 1, s);
  EXPECT_GT(mgr.TotalLockCount(), 0u);
  {
    // Hold a pin so Abort's amortized tick cannot sweep its own
    // retirees out from under the assertion (with no pins anywhere an
    // idle tick legitimately frees them immediately).
    EpochManager::Pin pin(&em);
    mgr.Abort(x);
    // Teardown retired the xact and the emptied holder sets into limbo.
    EXPECT_GT(em.RetiredObjectCount(), 0u);
  }
  em.Quiesce();
  EXPECT_EQ(em.RetiredObjectCount(), 0u);
  EXPECT_EQ(mgr.TotalLockCount(), 0u);
}

TEST(EpochReclaimTest, CleanupDrivesLimboEvenWhenNothingFreeable) {
  EngineConfig cfg = ConfigFor(1);
  EpochManager em;
  ssi::SireadLockManager mgr(cfg, &em);
  std::atomic<int> live{0};
  em.Retire(new Tracked(&live), DeleteTracked);
  // No registered xacts at all; Cleanup must still advance the epoch
  // machinery so index GC / granule retirees do not linger.
  for (int i = 0; i < 8; i++) mgr.Cleanup(/*oldest=*/1);
  EXPECT_EQ(live.load(), 0);
}

TEST(EpochReclaimTest, MinCommittedHintAdvances) {
  EngineConfig cfg = ConfigFor(1);
  EpochManager em;
  ssi::SireadLockManager mgr(cfg, &em);
  ssi::SerializableXact* a = mgr.Register(1, 1, false);
  ssi::SerializableXact* b = mgr.Register(2, 1, false);
  ASSERT_TRUE(mgr.PreCommit(a).ok());
  mgr.MarkCommitted(a, 10);
  ASSERT_TRUE(mgr.PreCommit(b).ok());
  mgr.MarkCommitted(b, 20);
  EXPECT_EQ(mgr.min_committed_seq_hint(), 10u);
  mgr.Cleanup(/*oldest=*/15);  // frees a, not b
  EXPECT_EQ(mgr.min_committed_seq_hint(), 20u);
  EXPECT_EQ(mgr.RegisteredCount(), 1u);
  mgr.Cleanup(/*oldest=*/25);
  EXPECT_EQ(mgr.RegisteredCount(), 0u);
  EXPECT_EQ(mgr.min_committed_seq_hint(), ssi::kNoStickySeq);
  em.Quiesce();
  EXPECT_EQ(em.RetiredObjectCount(), 0u);
}

}  // namespace
}  // namespace pgssi
