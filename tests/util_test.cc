#include <gtest/gtest.h>

#include "util/clock.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/status.h"

namespace pgssi {
namespace {

TEST(StatusTest, CodesAndToString) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().code(), Code::kOk);

  Status nf = Status::NotFound("k1");
  EXPECT_FALSE(nf.ok());
  EXPECT_EQ(nf.code(), Code::kNotFound);
  EXPECT_NE(nf.ToString().find("NotFound"), std::string::npos);

  Status sf = Status::SerializationFailure("pivot");
  EXPECT_TRUE(sf.IsSerializationFailure());
  EXPECT_EQ(sf.code(), Code::kSerializationFailure);
  EXPECT_NE(sf.ToString().find("pivot"), std::string::npos);

  EXPECT_EQ(Status::AlreadyExists().code(), Code::kAlreadyExists);
  EXPECT_FALSE(Status::AlreadyExists().IsSerializationFailure());
}

TEST(RandomTest, DeterministicAndInRange) {
  Random a(42), b(42);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Random r(7);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(r.Uniform(10), 10u);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_EQ(r.Uniform(0), 0u);
  // Extremes of Bernoulli.
  for (int i = 0; i < 100; i++) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
  }
}

TEST(HistogramTest, PercentilesAndExtremes) {
  Histogram h;
  EXPECT_EQ(h.Median(), 0);
  EXPECT_EQ(h.max(), 0);
  for (int i = 1; i <= 100; i++) h.Add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.max(), 100);
  EXPECT_EQ(h.min(), 1);
  EXPECT_NEAR(h.Median(), 50.5, 0.51);
  EXPECT_NEAR(h.Percentile(90), 90, 1.1);
  EXPECT_NEAR(h.Mean(), 50.5, 1e-9);
}

TEST(ClockTest, Monotonic) {
  uint64_t a = NowMicros();
  uint64_t b = NowMicros();
  EXPECT_GE(b, a);
  uint64_t t0 = NowMicros();
  SimulatedIoDelay(200);
  EXPECT_GE(NowMicros() - t0, 200u);
}

}  // namespace
}  // namespace pgssi
