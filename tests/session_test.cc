// Session step-API tests: would-block/park/retry on lock conflicts,
// async deadlock detection among parked sessions, resumable DEFERRABLE
// begins, cross-thread stepping, and the WAL commit gate.
#include "db/session.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "db/transaction_handle.h"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PGSSI_STRESS_SCALE 4
#else
#define PGSSI_STRESS_SCALE 1
#endif

namespace pgssi {
namespace {

const TxnOptions kSer{.isolation = IsolationLevel::kSerializable};

DatabaseOptions S2plOptions() {
  DatabaseOptions opts;
  opts.serializable_impl = SerializableImpl::kS2PL;
  return opts;
}

// Seeds `keys` so later Puts are updates (no S2PL insert gap lock in
// the way — the tests aim conflicts at single-row exclusive locks).
TableId Seed(Database* db, const std::vector<std::string>& keys) {
  TableId t = kInvalidTable;
  EXPECT_TRUE(db->CreateTable("t", &t).ok());
  auto txn = db->Begin();
  for (const auto& k : keys) EXPECT_TRUE(txn->Put(t, k, "0").ok());
  EXPECT_TRUE(txn->Commit().ok());
  return t;
}

// Re-issues `fn` (a captured session step) until it stops would-blocking,
// parking on the wait token (or the retry interval) in between.
Status StepUntilComplete(Session& s, const std::function<Status()>& fn,
                         int max_retries = 2000) {
  Status st = fn();
  while (st.IsWouldBlock() && max_retries-- > 0) {
    if (auto tok = s.wait_token()) {
      tok->WaitFor(s.retry_interval_us());
    } else {
      std::this_thread::sleep_for(
          std::chrono::microseconds(s.retry_interval_us()));
    }
    st = fn();
  }
  return st;
}

TEST(SessionTest, WouldBlockThenTokenWake) {
  auto db = Database::Open(S2plOptions());
  TableId t = Seed(db.get(), {"k"});

  auto blocker = db->Begin(kSer);
  ASSERT_TRUE(blocker->Put(t, "k", "1").ok());

  Session s(db.get());
  ASSERT_TRUE(s.TryBegin(kSer).ok());
  Status st = s.TryPut(t, "k", "2");
  ASSERT_TRUE(st.IsWouldBlock()) << st.ToString();
  auto token = s.wait_token();
  ASSERT_NE(token, nullptr);
  EXPECT_FALSE(token->ready());

  ASSERT_TRUE(blocker->Commit().ok());
  // The commit's ReleaseAll signals every async waiter on the key.
  EXPECT_TRUE(token->WaitFor(2'000'000));

  // First-updater-wins may doom the session's txn instead of granting
  // (the blocker committed a newer version); both are complete outcomes.
  st = StepUntilComplete(s, [&] { return s.TryPut(t, "k", "2"); });
  if (st.ok()) {
    EXPECT_TRUE(StepUntilComplete(s, [&] { return s.TryCommit(); }).ok());
    auto check = db->Begin();
    std::string v;
    ASSERT_TRUE(check->Get(t, "k", &v).ok());
    EXPECT_EQ(v, "2");
    ASSERT_TRUE(check->Commit().ok());
  } else {
    EXPECT_TRUE(st.IsSerializationFailure()) << st.ToString();
  }
}

TEST(SessionTest, AsyncDeadlockDetectedAmongParkedSessions) {
  auto db = Database::Open(S2plOptions());
  TableId t = Seed(db.get(), {"k1", "k2"});

  Session sa(db.get());
  Session sb(db.get());
  ASSERT_TRUE(sa.TryBegin(kSer).ok());
  ASSERT_TRUE(sb.TryBegin(kSer).ok());
  ASSERT_TRUE(sa.TryPut(t, "k1", "a").ok());
  ASSERT_TRUE(sb.TryPut(t, "k2", "b").ok());

  // Cross the lock orders: both park, the wait-for cycle must doom one.
  Status sta = sa.TryPut(t, "k2", "a");
  Status stb = sb.TryPut(t, "k1", "b");
  int spins = 4000;
  while (sta.IsWouldBlock() && stb.IsWouldBlock() && spins-- > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(500));
    if (sta.IsWouldBlock()) sta = sa.TryPut(t, "k2", "a");
    if (sta.IsWouldBlock() && stb.IsWouldBlock()) {
      stb = sb.TryPut(t, "k1", "b");
    }
  }
  const bool a_doomed = sta.IsSerializationFailure();
  const bool b_doomed = stb.IsSerializationFailure();
  ASSERT_TRUE(a_doomed || b_doomed)
      << "a=" << sta.ToString() << " b=" << stb.ToString();
  ASSERT_FALSE(a_doomed && b_doomed) << "both victims";

  // The victim's failure aborted its txn; the survivor completes.
  Session& winner = a_doomed ? sb : sa;
  const char* key = a_doomed ? "k1" : "k2";
  const char* val = a_doomed ? "b" : "a";
  Status st = StepUntilComplete(
      winner, [&] { return winner.TryPut(t, key, val); });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(StepUntilComplete(winner, [&] {
                return winner.TryCommit();
              }).ok());
}

TEST(SessionTest, DeferrableBeginParksAndResumes) {
  auto db = Database::Open(DatabaseOptions{});
  TableId t = Seed(db.get(), {"k"});

  auto rw = db->Begin(kSer);
  ASSERT_TRUE(rw->Put(t, "k", "1").ok());

  Session s(db.get());
  const TxnOptions def{.isolation = IsolationLevel::kSerializable,
                       .read_only = true,
                       .deferrable = true};
  Status st = s.TryBegin(def);
  ASSERT_TRUE(st.IsWouldBlock()) << st.ToString();
  // DEFERRABLE waits have no event source: the caller deadline-polls.
  EXPECT_EQ(s.wait_token(), nullptr);
  EXPECT_TRUE(s.begin_pending());
  EXPECT_FALSE(s.in_txn());
  // Re-issuing while the concurrent RW txn lives keeps pending.
  EXPECT_TRUE(s.TryBegin(def).IsWouldBlock());

  ASSERT_TRUE(rw->Commit().ok());
  st = StepUntilComplete(s, [&] { return s.TryBegin(def); });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(s.in_txn());

  std::string v;
  ASSERT_TRUE(s.TryGet(t, "k", &v).ok());
  // The RW commit had no dangerous out-edge, so the ORIGINAL snapshot
  // (taken before that commit) is safe and retained: the read-only txn
  // serializes before the RW one and must see the pre-commit value.
  EXPECT_EQ(v, "0");
  EXPECT_TRUE(StepUntilComplete(s, [&] { return s.TryCommit(); }).ok());
}

TEST(SessionTest, AbortMidDeferrableBeginCleansUp) {
  auto db = Database::Open(DatabaseOptions{});
  TableId t = Seed(db.get(), {"k"});

  auto rw = db->Begin(kSer);
  ASSERT_TRUE(rw->Put(t, "k", "1").ok());

  {
    Session s(db.get());
    ASSERT_TRUE(s.TryBegin({.isolation = IsolationLevel::kSerializable,
                            .read_only = true,
                            .deferrable = true})
                    .IsWouldBlock());
    // Destruction aborts the pending begin (deregisters its xid).
  }
  ASSERT_TRUE(rw->Commit().ok());
  // The dropped pending begin must not pin OldestActiveSnapshot.
  EXPECT_EQ(db->OldestActiveSnapshot(), UINT64_MAX);
}

TEST(SessionTest, CrossThreadStepping) {
  auto db = Database::Open(S2plOptions());
  TableId t = Seed(db.get(), {"k"});

  auto blocker = db->Begin(kSer);
  ASSERT_TRUE(blocker->Put(t, "k", "1").ok());

  Session s(db.get());
  ASSERT_TRUE(s.TryBegin(kSer).ok());
  ASSERT_TRUE(s.TryPut(t, "k", "2").IsWouldBlock());

  // Resume the parked session from a different thread: sessions are
  // detachable, not pinned to their creating thread.
  std::atomic<bool> done{false};
  std::thread stepper([&] {
    Status st = StepUntilComplete(s, [&] { return s.TryPut(t, "k", "2"); });
    if (st.ok()) st = StepUntilComplete(s, [&] { return s.TryCommit(); });
    EXPECT_TRUE(st.ok() || st.IsSerializationFailure()) << st.ToString();
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(done.load());  // still parked until the blocker commits
  ASSERT_TRUE(blocker->Commit().ok());
  stepper.join();
  EXPECT_TRUE(done.load());
}

TEST(SessionTest, CommitGateUnderWalBatch) {
  const std::string dir = "session_wal_scratch";
  std::filesystem::remove_all(dir);
  DatabaseOptions opts;
  opts.engine.wal_enabled = true;
  opts.engine.wal_dir = dir;
  opts.engine.wal_fsync = WalFsyncMode::kBatch;
  {
    auto db = Database::Open(opts);
    TableId t = kInvalidTable;
    ASSERT_TRUE(db->CreateTable("t", &t).ok());

    // Hammer concurrent session commits so some hit the group-fsync
    // commit gate (would-block once, then complete on retry).
    constexpr int kThreads = 4;
    constexpr int kTxns = 40 / PGSSI_STRESS_SCALE;
    std::vector<std::thread> threads;
    std::atomic<int> committed{0};
    for (int i = 0; i < kThreads; i++) {
      threads.emplace_back([&, i] {
        for (int j = 0; j < kTxns; j++) {
          Session s(db.get());
          ASSERT_TRUE(s.TryBegin().ok());
          const std::string key =
              "k" + std::to_string(i) + "-" + std::to_string(j);
          Status st =
              StepUntilComplete(s, [&] { return s.TryPut(t, key, "v"); });
          if (!st.ok()) continue;
          st = StepUntilComplete(s, [&] { return s.TryCommit(); });
          if (st.ok()) committed.fetch_add(1);
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(committed.load(), kThreads * kTxns);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace pgssi
