// WAL durability unit + integration tests:
//  - codec round-trips and deterministic corruption handling (a flipped
//    byte or torn tail stops the scan at the last good record);
//  - a byte-granular truncation sweep over a real engine-produced log
//    (every prefix must recover cleanly to a record boundary);
//  - full crash-recovery round trips through Database::Open, including
//    idempotent re-recovery and allocator restart;
//  - the Commit failure-ordering regression: an injected fsync failure
//    dooms exactly that transaction BEFORE its seq becomes visible, the
//    engine keeps committing afterwards, and recovery agrees.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "db/transaction_handle.h"
#include "util/failpoint.h"
#include "wal/wal_format.h"
#include "wal/wal_recovery.h"
#include "wal/wal_writer.h"

namespace pgssi {
namespace {

namespace fs = std::filesystem;

// Fresh scratch dir per test, wiped up front so reruns start clean.
std::string ScratchDir(const std::string& name) {
  fs::path d = fs::path(testing::TempDir()) / ("pgssi_wal_" + name);
  fs::remove_all(d);
  fs::create_directories(d);
  return d.string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

DatabaseOptions WalOpts(const std::string& dir,
                        WalFsyncMode mode = WalFsyncMode::kBatch) {
  DatabaseOptions opts;
  opts.engine.wal_enabled = true;
  opts.engine.wal_dir = dir;
  opts.engine.wal_fsync = mode;
  return opts;
}

TEST(WalFormatTest, CodecRoundTrip) {
  wal::CommitRecord rec;
  rec.xid = 42;
  rec.entries.push_back({1, false, "alice", "100"});
  rec.entries.push_back({2, true, "bob", ""});
  size_t seq_offset = 0;
  std::string payload = wal::EncodeCommit(rec, &seq_offset);
  wal::PatchCommitSeq(&payload, seq_offset, 7);

  wal::DecodedRecord out;
  ASSERT_TRUE(wal::DecodePayload(payload, &out));
  EXPECT_EQ(out.type, wal::RecordType::kCommit);
  EXPECT_EQ(out.commit.seq, 7u);
  EXPECT_EQ(out.commit.xid, 42u);
  ASSERT_EQ(out.commit.entries.size(), 2u);
  EXPECT_EQ(out.commit.entries[0].table, 1u);
  EXPECT_FALSE(out.commit.entries[0].deleted);
  EXPECT_EQ(out.commit.entries[0].key, "alice");
  EXPECT_EQ(out.commit.entries[0].value, "100");
  EXPECT_TRUE(out.commit.entries[1].deleted);

  ASSERT_TRUE(wal::DecodePayload(wal::EncodeCreateTable(3, "accounts"), &out));
  EXPECT_EQ(out.type, wal::RecordType::kCreateTable);
  EXPECT_EQ(out.table_id, 3u);
  EXPECT_EQ(out.table_name, "accounts");

  ASSERT_TRUE(wal::DecodePayload(wal::EncodeAbortMark(9), &out));
  EXPECT_EQ(out.type, wal::RecordType::kAbortMark);
  EXPECT_EQ(out.abort_seq, 9u);

  // Truncated payloads and junk types must fail, not crash.
  EXPECT_FALSE(wal::DecodePayload(payload.substr(0, payload.size() - 1), &out));
  EXPECT_FALSE(wal::DecodePayload(std::string("\x09junk", 5), &out));
  EXPECT_FALSE(wal::DecodePayload(std::string_view(), &out));
}

TEST(WalRecoveryTest, CorruptionStopsScanAtLastGoodRecord) {
  const std::string dir = ScratchDir("corrupt");
  const std::string path = dir + "/wal.log";

  std::string log;
  log += wal::EncodeFrame(wal::EncodeCreateTable(1, "t"));
  wal::CommitRecord c1;
  c1.seq = 1;
  c1.xid = 10;
  c1.entries.push_back({1, false, "k1", "v1"});
  log += wal::EncodeFrame(wal::EncodeCommit(c1, nullptr));
  const size_t two_records = log.size();
  wal::CommitRecord c2;
  c2.seq = 2;
  c2.xid = 11;
  c2.entries.push_back({1, false, "k2", "v2"});
  log += wal::EncodeFrame(wal::EncodeCommit(c2, nullptr));

  // Pristine: everything scans.
  WriteAll(path, log);
  wal::WalScanResult scan;
  ASSERT_TRUE(wal::ScanWal(path, &scan).ok());
  EXPECT_EQ(scan.records, 3u);
  EXPECT_EQ(scan.commits.size(), 2u);
  EXPECT_EQ(scan.valid_bytes, log.size());
  EXPECT_EQ(scan.torn_bytes, 0u);
  EXPECT_EQ(scan.max_seq, 2u);
  EXPECT_EQ(scan.max_xid, 11u);

  // Flip one payload byte inside the third record: CRC fails, the scan
  // stops exactly after the second.
  std::string bad = log;
  bad[two_records + wal::kFrameHeaderBytes + 3] ^= 0x40;
  WriteAll(path, bad);
  ASSERT_TRUE(wal::ScanWal(path, &scan).ok());
  EXPECT_EQ(scan.records, 2u);
  ASSERT_EQ(scan.commits.size(), 1u);
  EXPECT_EQ(scan.commits.begin()->second.entries[0].key, "k1");
  EXPECT_EQ(scan.valid_bytes, two_records);
  EXPECT_EQ(scan.torn_bytes, log.size() - two_records);
  // max_seq only reflects what survived.
  EXPECT_EQ(scan.max_seq, 1u);

  // An abort mark erases its commit from the replay set.
  std::string marked = log + wal::EncodeFrame(wal::EncodeAbortMark(2));
  WriteAll(path, marked);
  ASSERT_TRUE(wal::ScanWal(path, &scan).ok());
  EXPECT_EQ(scan.commits.size(), 1u);
  EXPECT_EQ(scan.commits.count(2), 0u);
  EXPECT_EQ(scan.max_seq, 2u);  // the seq stays consumed

  // Missing file: clean empty result.
  ASSERT_TRUE(wal::ScanWal(dir + "/nope.log", &scan).ok());
  EXPECT_EQ(scan.records, 0u);
  EXPECT_EQ(scan.valid_bytes, 0u);
}

// Every byte-truncation of the log must recover to a record boundary:
// the valid prefix is the longest whole-frame prefix, never more.
TEST(WalRecoveryTest, TruncationSweepRecoversLongestWholePrefix) {
  const std::string dir = ScratchDir("truncate");
  const std::string path = dir + "/wal.log";

  // Produce a real log through the engine.
  {
    Status st;
    auto db = Database::Open(WalOpts(dir, WalFsyncMode::kAlways), &st);
    ASSERT_TRUE(st.ok()) << st.ToString();
    TableId t;
    ASSERT_TRUE(db->CreateTable("t", &t).ok());
    for (int i = 0; i < 4; i++) {
      auto txn = db->Begin();
      ASSERT_TRUE(txn->Put(t, "k" + std::to_string(i), "v").ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
  }
  const std::string log = ReadAll(path);
  ASSERT_GT(log.size(), wal::kFrameHeaderBytes);

  // Record boundaries from a full scan.
  std::vector<size_t> boundaries{0};
  {
    wal::WalScanResult scan;
    ASSERT_TRUE(wal::ScanWal(path, &scan).ok());
    ASSERT_EQ(scan.records, 5u);  // 1 create + 4 commits
    size_t off = 0;
    std::string_view v(log);
    while (off < log.size()) {
      uint32_t len = 0;
      wal::PayloadReader r(v.substr(off, 4));
      ASSERT_TRUE(r.U32(&len));
      off += wal::kFrameHeaderBytes + len;
      boundaries.push_back(off);
    }
    ASSERT_EQ(off, log.size());
  }

  const std::string tpath = dir + "/wal_trunc.log";
  for (size_t cut = 0; cut <= log.size(); cut++) {
    WriteAll(tpath, log.substr(0, cut));
    wal::WalScanResult scan;
    ASSERT_TRUE(wal::ScanWal(tpath, &scan).ok());
    // valid_bytes is the largest boundary <= cut.
    size_t expect = 0;
    for (size_t b : boundaries) {
      if (b <= cut) expect = b;
    }
    EXPECT_EQ(scan.valid_bytes, expect) << "cut=" << cut;
    EXPECT_EQ(scan.torn_bytes, cut - expect) << "cut=" << cut;
  }

  // Spot-check full engine recovery from a mid-record truncation: the
  // last commit is torn away, the rest replays.
  ASSERT_GE(boundaries.size(), 3u);
  const size_t mid_last = boundaries[boundaries.size() - 2] + 3;
  WriteAll(path, log.substr(0, mid_last));
  Status st;
  auto db = Database::Open(WalOpts(dir), &st);
  ASSERT_TRUE(st.ok()) << st.ToString();
  const TableId t = db->GetTableId("t");
  ASSERT_NE(t, kInvalidTable);
  auto txn = db->Begin();
  std::string v;
  EXPECT_TRUE(txn->Get(t, "k0", &v).ok());
  EXPECT_TRUE(txn->Get(t, "k2", &v).ok());
  EXPECT_EQ(txn->Get(t, "k3", &v).code(), Code::kNotFound);
  ASSERT_TRUE(txn->Commit().ok());
  // The writer truncated the torn tail on open.
  EXPECT_EQ(fs::file_size(path) >= boundaries[boundaries.size() - 2], true);
}

TEST(WalRecoveryTest, FullRecoveryRoundTrip) {
  const std::string dir = ScratchDir("roundtrip");
  uint64_t pre_crash_seq = 0;

  {
    Status st;
    auto db = Database::Open(WalOpts(dir), &st);
    ASSERT_TRUE(st.ok()) << st.ToString();
    TableId a, b;
    ASSERT_TRUE(db->CreateTable("accounts", &a).ok());
    ASSERT_TRUE(db->CreateTable("audit", &b).ok());
    {
      auto txn = db->Begin();
      ASSERT_TRUE(txn->Put(a, "alice", "100").ok());
      ASSERT_TRUE(txn->Put(b, "log1", "opened").ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
    {
      auto txn = db->Begin();
      ASSERT_TRUE(txn->Put(a, "alice", "80").ok());  // overwrite
      ASSERT_TRUE(txn->Put(a, "bob", "20").ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
    {
      auto txn = db->Begin();
      ASSERT_TRUE(txn->Delete(b, "log1").ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
    {
      // An aborted transaction leaves no trace in the replayable log.
      auto txn = db->Begin();
      ASSERT_TRUE(txn->Put(a, "carol", "999").ok());
      ASSERT_TRUE(txn->Abort().ok());
    }
    pre_crash_seq = db->LastCommittedSeq();
    // Destructor closes the WAL; kBatch mode may leave the tail
    // unsynced, but the file itself survives (we only simulate crashes
    // via failpoints — see the torture test for real kills).
  }

  for (int round = 0; round < 2; round++) {  // recovery is idempotent
    Status st;
    auto db = Database::Open(WalOpts(dir), &st);
    ASSERT_TRUE(st.ok()) << st.ToString();
    const TableId a = db->GetTableId("accounts");
    const TableId b = db->GetTableId("audit");
    ASSERT_NE(a, kInvalidTable);
    ASSERT_NE(b, kInvalidTable);

    auto txn = db->Begin();
    std::string v;
    ASSERT_TRUE(txn->Get(a, "alice", &v).ok());
    EXPECT_EQ(v, "80");
    ASSERT_TRUE(txn->Get(a, "bob", &v).ok());
    EXPECT_EQ(v, "20");
    EXPECT_EQ(txn->Get(a, "carol", &v).code(), Code::kNotFound);
    EXPECT_EQ(txn->Get(b, "log1", &v).code(), Code::kNotFound);
    ASSERT_TRUE(txn->Commit().ok());

    // Allocators restarted past the recovered log: the first new commit
    // gets a seq strictly above everything pre-crash.
    EXPECT_GE(db->LastCommittedSeq(), pre_crash_seq);
    auto txn2 = db->Begin();
    ASSERT_TRUE(txn2->Put(a, "dave", "1").ok());
    ASSERT_TRUE(txn2->Commit().ok());
    EXPECT_GT(db->LastCommittedSeq(), pre_crash_seq);
    auto txn3 = db->Begin();
    ASSERT_TRUE(txn3->Get(a, "dave", &v).ok());
    ASSERT_TRUE(txn3->Delete(a, "dave").ok());
    ASSERT_TRUE(txn3->Commit().ok());
    EXPECT_TRUE(db->CheckSsiLockConsistency());
  }
}

TEST(WalRecoveryTest, CreateTableIsDurableAndIdsStable) {
  const std::string dir = ScratchDir("ddl");
  TableId id1 = kInvalidTable, id2 = kInvalidTable;
  {
    Status st;
    auto db = Database::Open(WalOpts(dir), &st);
    ASSERT_TRUE(st.ok());
    ASSERT_TRUE(db->CreateTable("first", &id1).ok());
    ASSERT_TRUE(db->CreateTable("second", &id2).ok());
    // DDL is synced eagerly — durable even with zero commits and no
    // clean close.
  }
  {
    Status st;
    auto db = Database::Open(WalOpts(dir), &st);
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(db->GetTableId("first"), id1);
    EXPECT_EQ(db->GetTableId("second"), id2);
    // New DDL after recovery continues the id sequence.
    TableId id3;
    ASSERT_TRUE(db->CreateTable("third", &id3).ok());
    EXPECT_EQ(id3, id2 + 1);
  }
  {
    Status st;
    auto db = Database::Open(WalOpts(dir), &st);
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(db->GetTableId("third"), id2 + 1);
  }
}

TEST(WalRecoveryTest, OpenFailsCleanlyOnBadConfig) {
  DatabaseOptions opts;
  opts.engine.wal_enabled = true;  // no wal_dir
  Status st;
  auto db = Database::Open(opts, &st);
  EXPECT_EQ(db, nullptr);
  EXPECT_EQ(st.code(), Code::kInvalidArgument);
}

// Satellite 2 regression: an injected fsync failure must doom exactly
// that transaction BEFORE its seq is published — clean rollback, no
// stuck watermark, engine keeps committing — and recovery must agree
// (the abort mark keeps the logged-but-failed commit out of replay).
TEST(WalRecoveryTest, FsyncFailureAbortsCleanly) {
  const std::string dir = ScratchDir("fsyncfail");
  {
    Status st;
    auto db = Database::Open(WalOpts(dir, WalFsyncMode::kAlways), &st);
    ASSERT_TRUE(st.ok());
    TableId t;
    ASSERT_TRUE(db->CreateTable("t", &t).ok());

    {
      auto txn = db->Begin();
      ASSERT_TRUE(txn->Put(t, "k1", "v1").ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
    const uint64_t seq_before = db->LastCommittedSeq();

    // Next commit-path fsync fails (the abort mark's own sync, armed
    // for the hit after, succeeds — a transient error).
    util::FailpointArm("wal_fsync", util::FailpointAction::kErr, 1);
    {
      auto txn = db->Begin();
      ASSERT_TRUE(txn->Put(t, "k2", "v2").ok());
      Status cs = txn->Commit();
      ASSERT_FALSE(cs.ok());
      EXPECT_EQ(cs.code(), Code::kIOError);
      EXPECT_TRUE(txn->finished());
    }
    util::FailpointClearAll();

    // The seq was consumed-but-unused: the watermark moved past it (no
    // stuck slot) yet no snapshot ever sees k2.
    EXPECT_GE(db->LastCommittedSeq(), seq_before + 1);
    {
      auto txn = db->Begin();
      std::string v;
      EXPECT_EQ(txn->Get(t, "k2", &v).code(), Code::kNotFound);
      ASSERT_TRUE(txn->Commit().ok());
    }
    // Engine keeps committing after the transient error.
    {
      auto txn = db->Begin();
      ASSERT_TRUE(txn->Put(t, "k3", "v3").ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
    EXPECT_TRUE(db->CheckSsiLockConsistency());
  }

  // Recovery sees k1 and k3; k2's commit record is abort-marked.
  Status st;
  auto db = Database::Open(WalOpts(dir), &st);
  ASSERT_TRUE(st.ok()) << st.ToString();
  const TableId t = db->GetTableId("t");
  auto txn = db->Begin();
  std::string v;
  ASSERT_TRUE(txn->Get(t, "k1", &v).ok());
  EXPECT_EQ(v, "v1");
  EXPECT_EQ(txn->Get(t, "k2", &v).code(), Code::kNotFound);
  ASSERT_TRUE(txn->Get(t, "k3", &v).ok());
  EXPECT_EQ(v, "v3");
  ASSERT_TRUE(txn->Commit().ok());
}

// SERIALIZABLE flavor of the same regression: the WAL failure lands
// after PreCommit marked the xact commit-pending; Abort must still
// dissolve its SSI state cleanly.
TEST(WalRecoveryTest, FsyncFailureAbortsSerializableCleanly) {
  const std::string dir = ScratchDir("fsyncfail_ssi");
  Status st;
  auto db = Database::Open(WalOpts(dir, WalFsyncMode::kAlways), &st);
  ASSERT_TRUE(st.ok());
  TableId t;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());

  util::FailpointArm("wal_fsync", util::FailpointAction::kErr, 2);  // skip DDL..
  {
    auto txn = db->Begin({IsolationLevel::kSerializable});
    ASSERT_TRUE(txn->Put(t, "k", "v").ok());
    ASSERT_TRUE(txn->Commit().ok());  // fsync #1 on the commit path: fine
  }
  {
    auto txn = db->Begin({IsolationLevel::kSerializable});
    std::string v;
    ASSERT_TRUE(txn->Get(t, "k", &v).ok());
    ASSERT_TRUE(txn->Put(t, "k", "v2").ok());
    Status cs = txn->Commit();  // fsync #2 injected to fail
    ASSERT_FALSE(cs.ok());
    EXPECT_EQ(cs.code(), Code::kIOError);
  }
  util::FailpointClearAll();
  EXPECT_TRUE(db->CheckSsiLockConsistency());
  {
    auto txn = db->Begin({IsolationLevel::kSerializable});
    std::string v;
    ASSERT_TRUE(txn->Get(t, "k", &v).ok());
    EXPECT_EQ(v, "v");
    ASSERT_TRUE(txn->Put(t, "k", "v3").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
}

// Regression: a TRANSIENT failure of the abort mark's own append/fsync
// used to latch the writer permanently (one hiccup = read-only engine
// forever). The bounded retry must absorb it: the failing commit still
// aborts cleanly, and the next commit succeeds.
TEST(WalRecoveryTest, AbortMarkTransientFailureIsRetriedNotLatched) {
  const std::string dir = ScratchDir("abortmark_retry");
  {
    Status st;
    auto db = Database::Open(WalOpts(dir, WalFsyncMode::kAlways), &st);
    ASSERT_TRUE(st.ok());
    TableId t;
    ASSERT_TRUE(db->CreateTable("t", &t).ok());

    // Commit fsync fails once → abort-mark path; the mark's FIRST
    // attempt fails too, the retry succeeds.
    util::FailpointArm("wal_fsync", util::FailpointAction::kErr, 1);
    util::FailpointArm("wal_abort_mark", util::FailpointAction::kErr, 1);
    {
      auto txn = db->Begin();
      ASSERT_TRUE(txn->Put(t, "doomed", "x").ok());
      Status cs = txn->Commit();
      ASSERT_FALSE(cs.ok());
      EXPECT_EQ(cs.code(), Code::kIOError);
    }
    util::FailpointClearAll();

    // Writer did NOT latch: the engine keeps committing durably.
    {
      auto txn = db->Begin();
      ASSERT_TRUE(txn->Put(t, "alive", "y").ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
  }
  // Recovery: the failed commit is abort-marked, the later one replays.
  Status st;
  auto db = Database::Open(WalOpts(dir), &st);
  ASSERT_TRUE(st.ok()) << st.ToString();
  const TableId t = db->GetTableId("t");
  auto txn = db->Begin();
  std::string v;
  EXPECT_EQ(txn->Get(t, "doomed", &v).code(), Code::kNotFound);
  ASSERT_TRUE(txn->Get(t, "alive", &v).ok());
  EXPECT_EQ(v, "y");
  ASSERT_TRUE(txn->Commit().ok());
}

// Counterpart: when EVERY attempt fails (persistent device fault,
// injected via the failpoint repeat count) the writer must still latch
// — durability genuinely cannot be promised any more.
TEST(WalRecoveryTest, AbortMarkPersistentFailureStillLatchesWriter) {
  const std::string dir = ScratchDir("abortmark_latch");
  Status st;
  auto db = Database::Open(WalOpts(dir, WalFsyncMode::kAlways), &st);
  ASSERT_TRUE(st.ok());
  TableId t;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());

  util::FailpointArm("wal_fsync", util::FailpointAction::kErr, 1);
  // Every retry re-evaluates the failpoint; cover them all.
  util::FailpointArm("wal_abort_mark", util::FailpointAction::kErr, 1,
                     /*repeat=*/16);
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->Put(t, "doomed", "x").ok());
    EXPECT_EQ(txn->Commit().code(), Code::kIOError);
  }
  util::FailpointClearAll();
  // Latched: no later commit may be acknowledged.
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->Put(t, "late", "z").ok());
    EXPECT_FALSE(txn->Commit().ok());
  }
}

}  // namespace
}  // namespace pgssi
