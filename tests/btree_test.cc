#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "index/btree.h"

namespace pgssi {
namespace {

std::string K(uint64_t i) {
  char b[20];
  std::snprintf(b, sizeof(b), "k%08llu", static_cast<unsigned long long>(i));
  return b;
}

TEST(BTreeTest, InsertLookupBasic) {
  BTree t(4);
  PageId pg;
  uint32_t slot;
  EXPECT_TRUE(t.Insert("b", 1, &pg, &slot));
  EXPECT_TRUE(t.Insert("a", 2, &pg, &slot));
  EXPECT_TRUE(t.Insert("c", 3, &pg, &slot));
  EXPECT_EQ(t.size(), 3u);

  TupleId tid;
  EXPECT_TRUE(t.Lookup("a", &tid, &pg, &slot));
  EXPECT_EQ(tid, 2u);
  EXPECT_TRUE(t.Lookup("b", &tid, &pg, &slot));
  EXPECT_EQ(tid, 1u);
  EXPECT_FALSE(t.Lookup("zz", &tid, &pg, &slot));
}

TEST(BTreeTest, DuplicateInsertRejectedAndReportsLocation) {
  BTree t(4);
  PageId pg1, pg2;
  uint32_t s1, s2;
  EXPECT_TRUE(t.Insert("x", 10, &pg1, &s1));
  EXPECT_FALSE(t.Insert("x", 99, &pg2, &s2));
  EXPECT_EQ(pg1, pg2);
  EXPECT_EQ(s1, s2);
  TupleId tid;
  EXPECT_TRUE(t.Lookup("x", &tid, &pg1, &s1));
  EXPECT_EQ(tid, 10u);  // original mapping kept
}

TEST(BTreeTest, ManyKeysSortedScanAcrossSplits) {
  BTree t(4);  // tiny fanout: force deep splits
  std::map<std::string, TupleId> model;
  PageId pg;
  // Insert in a scrambled deterministic order.
  for (uint64_t i = 0; i < 500; i++) {
    uint64_t k = (i * 37) % 500;
    if (model.emplace(K(k), k).second) {
      EXPECT_TRUE(t.Insert(K(k), k, &pg));
    }
  }
  EXPECT_EQ(t.size(), model.size());
  EXPECT_GT(t.LeafCount(), 10u);

  // Every key findable with the right tuple id.
  for (const auto& [k, tid] : model) {
    TupleId got;
    EXPECT_TRUE(t.Lookup(k, &got, &pg));
    EXPECT_EQ(got, tid);
  }

  // Full scan returns all keys in order.
  std::vector<std::string> seen;
  t.Scan(K(0), K(9999999), [&](const std::string& k, TupleId, PageId, uint32_t) {
    seen.push_back(k);
    return true;
  });
  ASSERT_EQ(seen.size(), model.size());
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));

  // Bounded inclusive scan.
  seen.clear();
  t.Scan(K(10), K(20), [&](const std::string& k, TupleId, PageId, uint32_t) {
    seen.push_back(k);
    return true;
  });
  EXPECT_EQ(seen.size(), 11u);
  EXPECT_EQ(seen.front(), K(10));
  EXPECT_EQ(seen.back(), K(20));
}

TEST(BTreeTest, SplitListenerReportsMovedSlots) {
  BTree t(4);
  int splits = 0;
  std::vector<uint32_t> last_moved;
  PageId last_old = 0, last_new = 0;
  t.SetSplitListener(
      [&](PageId o, PageId n, const std::vector<uint32_t>& moved) {
        splits++;
        last_old = o;
        last_new = n;
        last_moved = moved;
      });
  PageId pg;
  for (uint64_t i = 0; i < 10; i++) t.Insert(K(i), i, &pg);
  EXPECT_GT(splits, 0);
  EXPECT_NE(last_old, last_new);
  EXPECT_FALSE(last_moved.empty());
  // Every reported moved slot must now be found on the new page.
  size_t found_moved = 0;
  t.Scan(K(0), K(9999), [&](const std::string&, TupleId, PageId p, uint32_t s) {
    if (p == last_new) {
      for (uint32_t m : last_moved) {
        if (m == s) found_moved++;
      }
    }
    return true;
  });
  EXPECT_EQ(found_moved, last_moved.size());
}

TEST(BTreeTest, PageForAndNextKey) {
  BTree t(4);
  PageId pg;
  for (uint64_t i = 0; i < 50; i += 2) t.Insert(K(i), i, &pg);

  // PageFor of an existing key matches its Lookup page.
  TupleId tid;
  PageId lpg;
  ASSERT_TRUE(t.Lookup(K(10), &tid, &lpg));
  EXPECT_EQ(t.PageFor(K(10)), lpg);

  // NextKey of a gap key is the next even key.
  std::string nk;
  uint32_t slot;
  ASSERT_TRUE(t.NextKey(K(11), &nk, &tid, &pg, &slot));
  EXPECT_EQ(nk, K(12));
  // NextKey past the last key: none.
  EXPECT_FALSE(t.NextKey(K(48), &nk, &tid, &pg, &slot));
  ASSERT_TRUE(t.NextKey(K(47), &nk, &tid, &pg, &slot));
  EXPECT_EQ(nk, K(48));
}

// Satellite regression (fanout 4): the leftmost leaf is the chain
// anchor and is deliberately never recycled — unlinking any other leaf
// publishes through its PREDECESSOR's version bump, which the head has
// none of, and the root's leftmost descent path must stay landable.
// This pins both halves of that decision: after erasing EVERY key the
// tree holds exactly the one empty anchor leaf (bounded leftover, not
// a leak), and the anchor is still fully usable for reinsertion. Run
// in both reclamation modes — in epoch mode the recycled leaves and
// erased entries must actually reach the limbo and get freed.
TEST(BTreeTest, LeftmostLeafSurvivesFullEraseAndStaysUsable) {
  for (bool epoch_mode : {false, true}) {
    SCOPED_TRACE(epoch_mode ? "epoch" : "legacy");
    util::EpochManager em;
    BTree t(4, epoch_mode ? &em : nullptr);
    PageId pg;
    uint32_t slot;
    constexpr uint64_t kN = 64;
    for (uint64_t i = 0; i < kN; i++) {
      ASSERT_TRUE(t.Insert(K(i), i, &pg, &slot));
    }
    ASSERT_GT(t.LeafCount(), 1u);
    for (uint64_t i = 0; i < kN; i++) {
      ASSERT_TRUE(t.Erase(K(i), i));
    }
    EXPECT_EQ(t.size(), 0u);
    // Everything but the anchor was recycled.
    EXPECT_EQ(t.LeafCount(), 1u);
    if (epoch_mode) {
      // Retirees flow through the limbo, not the legacy retained lists,
      // and a quiesce really frees them.
      EXPECT_EQ(t.RetiredObjectCount(), 0u);
      em.Quiesce();
      EXPECT_EQ(em.RetiredObjectCount(), 0u);
      EXPECT_GT(em.FreedObjectCount(), 0u);
    } else {
      // Legacy mode retains entries/leaves type-stably instead.
      EXPECT_GT(t.RetiredObjectCount(), 0u);
    }
    // The surviving anchor still anchors: refill and read everything
    // back in order.
    for (uint64_t i = 0; i < kN; i++) {
      ASSERT_TRUE(t.Insert(K(i), i + 100, &pg, &slot));
    }
    uint64_t expect = 0;
    t.Scan(K(0), K(kN), [&](const std::string& k, TupleId tid, PageId,
                            uint32_t) {
      EXPECT_EQ(k, K(expect));
      EXPECT_EQ(tid, expect + 100);
      expect++;
      return true;
    });
    EXPECT_EQ(expect, kN);
  }
}

}  // namespace
}  // namespace pgssi
