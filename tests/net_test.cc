// Network front end tests: wire round trips, pipelining under op-queue
// backpressure, connection storms with sessions >> workers, slow
// clients pinning OldestActiveSnapshot, DEFERRABLE over the wire, and
// shutdown with live parked sessions (the ASan regression for the
// Database destruction contract).
#include "net/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PGSSI_STRESS_SCALE 4
#else
#define PGSSI_STRESS_SCALE 1
#endif

namespace pgssi {
namespace {

using net::Op;
using net::Request;
using net::Server;
using net::ServerOptions;
using net::WireClient;

struct ServerFixture {
  explicit ServerFixture(ServerOptions so = {},
                         DatabaseOptions dbo = DatabaseOptions{}) {
    db = Database::Open(dbo);
    server = std::make_unique<Server>(db.get(), so);
    Status st = server->Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  ~ServerFixture() {
    server->Stop();
    server.reset();
    db.reset();
  }
  uint16_t port() const { return server->port(); }

  std::unique_ptr<Database> db;
  std::unique_ptr<Server> server;
};

TEST(NetTest, WireRoundTrip) {
  ServerFixture f;
  WireClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", f.port()).ok());
  ASSERT_TRUE(c.Ping().ok());

  TableId t = kInvalidTable;
  ASSERT_TRUE(c.CreateTable("t", &t).ok());
  ASSERT_NE(t, kInvalidTable);
  TableId t2 = kInvalidTable;
  ASSERT_TRUE(c.CreateTable("t", &t2).ok());  // open-or-create
  EXPECT_EQ(t2, t);
  TableId t3 = kInvalidTable;
  ASSERT_TRUE(c.OpenTable("t", &t3).ok());
  EXPECT_EQ(t3, t);
  EXPECT_EQ(c.OpenTable("missing", &t3).code(), Code::kNotFound);

  ASSERT_TRUE(c.Begin({.isolation = IsolationLevel::kSerializable}).ok());
  ASSERT_TRUE(c.Put(t, "a", "1").ok());
  ASSERT_TRUE(c.Insert(t, "b", "2").ok());
  std::string v;
  ASSERT_TRUE(c.Get(t, "a", &v).ok());
  EXPECT_EQ(v, "1");
  EXPECT_EQ(c.Get(t, "zzz", &v).code(), Code::kNotFound);
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(c.Scan(t, "a", "z", &rows).ok());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first, "a");
  EXPECT_EQ(rows[1].second, "2");
  uint64_t n = 0;
  ASSERT_TRUE(c.Count(t, "a", "z", &n).ok());
  EXPECT_EQ(n, 2u);
  ASSERT_TRUE(c.Delete(t, "b").ok());
  ASSERT_TRUE(c.Commit().ok());

  // A second transaction on the same connection sees the commit.
  ASSERT_TRUE(c.Begin().ok());
  ASSERT_TRUE(c.Get(t, "a", &v).ok());
  EXPECT_EQ(v, "1");
  EXPECT_EQ(c.Get(t, "b", &v).code(), Code::kNotFound);
  ASSERT_TRUE(c.Abort().ok());

  // Steps without an open transaction are InvalidArgument, not fatal.
  EXPECT_EQ(c.Put(t, "x", "y").code(), Code::kInvalidArgument);
  EXPECT_TRUE(c.Ping().ok());
}

// Writes every request frame in one burst, then reads all responses:
// exercises frame reassembly, the op-queue backpressure (tiny
// backpressure_ops forces repeated EPOLLIN disarm/re-arm), and strict
// response ordering.
TEST(NetTest, PipelinedRequestsKeepOrderUnderBackpressure) {
  ServerOptions so;
  so.backpressure_ops = 2;
  ServerFixture f(so);
  WireClient setup;
  ASSERT_TRUE(setup.Connect("127.0.0.1", f.port()).ok());
  TableId t = kInvalidTable;
  ASSERT_TRUE(setup.CreateTable("t", &t).ok());

  const int kKeys = 64;
  // Raw pipelined socket: one giant write, then drain responses.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(f.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  std::string burst;
  burst += net::EncodeRequest(net::BeginRequest({}));
  for (int i = 0; i < kKeys; i++) {
    Request r;
    r.op = Op::kPut;
    r.table = t;
    r.key = "k" + std::to_string(i);
    r.value = "v" + std::to_string(i);
    burst += net::EncodeRequest(r);
  }
  for (int i = 0; i < kKeys; i++) {
    Request r;
    r.op = Op::kGet;
    r.table = t;
    r.key = "k" + std::to_string(i);
    burst += net::EncodeRequest(r);
  }
  {
    Request r;
    r.op = Op::kCommit;
    burst += net::EncodeRequest(r);
  }
  size_t off = 0;
  while (off < burst.size()) {
    ssize_t w = ::write(fd, burst.data() + off, burst.size() - off);
    ASSERT_GT(w, 0);
    off += static_cast<size_t>(w);
  }

  auto read_frame = [&](uint8_t* code, std::string* payload) {
    char lenbuf[4];
    size_t got = 0;
    while (got < 4) {
      ssize_t r = ::read(fd, lenbuf + got, 4 - got);
      ASSERT_GT(r, 0);
      got += static_cast<size_t>(r);
    }
    uint32_t len = 0;
    std::memcpy(&len, lenbuf, 4);
    ASSERT_GE(len, 1u);
    std::string body(len, '\0');
    got = 0;
    while (got < len) {
      ssize_t r = ::read(fd, body.data() + got, len - got);
      ASSERT_GT(r, 0);
      got += static_cast<size_t>(r);
    }
    *code = static_cast<uint8_t>(body[0]);
    *payload = body.substr(1);
  };

  uint8_t code;
  std::string payload;
  // 1 begin + kKeys puts: all OK, in order.
  for (int i = 0; i < 1 + kKeys; i++) {
    read_frame(&code, &payload);
    ASSERT_EQ(code, static_cast<uint8_t>(Code::kOk)) << "frame " << i;
  }
  // kKeys gets: payloads must come back in request order.
  for (int i = 0; i < kKeys; i++) {
    read_frame(&code, &payload);
    ASSERT_EQ(code, static_cast<uint8_t>(Code::kOk));
    EXPECT_EQ(payload, "v" + std::to_string(i));
  }
  read_frame(&code, &payload);  // commit
  EXPECT_EQ(code, static_cast<uint8_t>(Code::kOk));
  ::close(fd);

  EXPECT_GT(f.server->stats().read_pauses, 0u)
      << "backpressure_ops=2 should have paused reads during the burst";
}

TEST(NetTest, ConnectionStormSessionsFarExceedWorkers) {
  ServerOptions so;
  so.workers = 2;
  ServerFixture f(so);
  WireClient setup;
  ASSERT_TRUE(setup.Connect("127.0.0.1", f.port()).ok());
  TableId t = kInvalidTable;
  ASSERT_TRUE(setup.CreateTable("t", &t).ok());

  constexpr int kConns = 48;  // 24x the worker count
  constexpr int kTxnsPer = 8 / (PGSSI_STRESS_SCALE > 1 ? 2 : 1);
  std::atomic<int> committed{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kConns);
  for (int i = 0; i < kConns; i++) {
    threads.emplace_back([&, i] {
      WireClient c;
      ASSERT_TRUE(c.Connect("127.0.0.1", f.port()).ok());
      for (int j = 0; j < kTxnsPer; j++) {
        Status st = c.Begin({.isolation = IsolationLevel::kSerializable});
        ASSERT_TRUE(st.ok()) << st.ToString();
        const std::string key =
            "c" + std::to_string(i) + "-" + std::to_string(j);
        st = c.Put(t, key, "v");
        // Contended serializable traffic may doom the txn; both commit
        // and serialization failure are acceptable — lost responses or
        // transport errors are not.
        if (st.ok()) st = c.Commit();
        if (st.ok()) {
          committed.fetch_add(1);
        } else {
          ASSERT_TRUE(st.IsSerializationFailure() ||
                      st.code() == Code::kInvalidArgument)
              << st.ToString();
          failures.fetch_add(1);
          (void)c.Abort();
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // Every request got a response: nothing lost, every attempt accounted.
  EXPECT_EQ(committed.load() + failures.load(), kConns * kTxnsPer);
  EXPECT_GT(committed.load(), 0);
  EXPECT_GE(f.server->stats().accepted, static_cast<uint64_t>(kConns));

  // All sessions idle; each thread's key set is fully present.
  ASSERT_TRUE(setup.Begin().ok());
  uint64_t n = 0;
  ASSERT_TRUE(setup.Count(t, "c", "d", &n).ok());
  EXPECT_EQ(n, static_cast<uint64_t>(committed.load()));
  ASSERT_TRUE(setup.Commit().ok());
}

TEST(NetTest, SlowClientPinsOldestActiveSnapshot) {
  ServerFixture f;
  WireClient setup;
  ASSERT_TRUE(setup.Connect("127.0.0.1", f.port()).ok());
  TableId t = kInvalidTable;
  ASSERT_TRUE(setup.CreateTable("t", &t).ok());
  ASSERT_TRUE(setup.Begin().ok());
  ASSERT_TRUE(setup.Put(t, "k", "0").ok());
  ASSERT_TRUE(setup.Commit().ok());

  // A wire session that opened a txn and went silent still pins the
  // snapshot horizon (it is a live transaction, not a thread).
  WireClient slow;
  ASSERT_TRUE(slow.Connect("127.0.0.1", f.port()).ok());
  ASSERT_TRUE(slow.Begin({.isolation = IsolationLevel::kSerializable}).ok());
  std::string v;
  ASSERT_TRUE(slow.Get(t, "k", &v).ok());

  const uint64_t pinned = f.db->OldestActiveSnapshot();
  ASSERT_NE(pinned, UINT64_MAX);
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(setup.Begin().ok());
    ASSERT_TRUE(setup.Put(t, "k", std::to_string(i)).ok());
    ASSERT_TRUE(setup.Commit().ok());
  }
  EXPECT_EQ(f.db->OldestActiveSnapshot(), pinned)
      << "idle wire session must keep pinning the horizon";

  // Its snapshot is also still consistent after all that traffic.
  ASSERT_TRUE(slow.Get(t, "k", &v).ok());
  EXPECT_EQ(v, "0");
  ASSERT_TRUE(slow.Commit().ok());
  EXPECT_EQ(f.db->OldestActiveSnapshot(), UINT64_MAX);
}

TEST(NetTest, DeferrableOverTheWireGetsSafeSnapshot) {
  ServerFixture f;
  WireClient setup;
  ASSERT_TRUE(setup.Connect("127.0.0.1", f.port()).ok());
  TableId t = kInvalidTable;
  ASSERT_TRUE(setup.CreateTable("t", &t).ok());
  ASSERT_TRUE(setup.Begin().ok());
  ASSERT_TRUE(setup.Put(t, "k", "0").ok());
  ASSERT_TRUE(setup.Commit().ok());

  // Hold a serializable RW txn open so the DEFERRABLE begin must wait
  // (parked server-side on the deadline poll; the response is simply
  // delayed — the wire never sees kWouldBlock).
  ASSERT_TRUE(setup.Begin({.isolation = IsolationLevel::kSerializable}).ok());
  ASSERT_TRUE(setup.Put(t, "k", "1").ok());

  std::atomic<bool> began{false};
  std::string seen;
  std::thread deferrable([&] {
    WireClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", f.port()).ok());
    Status st = c.Begin({.isolation = IsolationLevel::kSerializable,
                         .read_only = true,
                         .deferrable = true});
    began.store(true);
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_TRUE(c.Get(t, "k", &seen).ok());
    ASSERT_TRUE(c.Commit().ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(began.load())
      << "DEFERRABLE begin must wait out the concurrent RW txn";
  ASSERT_TRUE(setup.Commit().ok());
  deferrable.join();
  // The RW commit had no dangerous out-edge, so the original snapshot
  // was safe and retained: the DEFERRABLE txn serializes before the RW
  // txn and sees the pre-commit value.
  EXPECT_EQ(seen, "0");
}

// ----- malformed wire input -----
// Every malformed byte stream must end the same way: the connection is
// closed, the session's transaction is aborted (nothing keeps pinning
// the snapshot horizon or holding row locks), and the server keeps
// serving well-formed clients. ASan/LSan in CI additionally prove the
// teardown leaks nothing.

int RawConnect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

void SendAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t w = ::write(fd, bytes.data() + off, bytes.size() - off);
    ASSERT_GT(w, 0);
    off += static_cast<size_t>(w);
  }
}

// Polls until no transaction pins the horizon and no row locks remain:
// the server noticed the broken connection and aborted its session.
::testing::AssertionResult ConvergedClean(Database* db, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (db->OldestActiveSnapshot() == UINT64_MAX && db->RowLockCount() == 0) {
      return ::testing::AssertionSuccess();
    }
    if (std::chrono::steady_clock::now() > deadline) {
      return ::testing::AssertionFailure()
             << "sessions/locks leaked: oldest="
             << db->OldestActiveSnapshot()
             << " row_locks=" << db->RowLockCount();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

// One valid in-txn frame first, so the malformed bytes kill a session
// that actually holds state — then the horizon must clear.
void ExpectMalformedKillsSession(ServerFixture* f, TableId t,
                                 const std::string& malformed) {
  int fd = RawConnect(f->port());
  std::string stream = net::EncodeRequest(net::BeginRequest(
      {.isolation = IsolationLevel::kSerializable}));
  Request put;
  put.op = Op::kPut;
  put.table = t;
  put.key = "poison";
  put.value = "v";
  stream += net::EncodeRequest(put);
  stream += malformed;
  SendAll(fd, stream);
  // The server closes; reads eventually return EOF or ECONNRESET, never
  // a hang.
  char buf[256];
  for (;;) {
    ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r <= 0) break;
  }
  ::close(fd);
  EXPECT_TRUE(ConvergedClean(f->db.get()));

  // The server is still healthy for well-formed clients.
  WireClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", f->port()).ok());
  ASSERT_TRUE(c.Begin().ok());
  ASSERT_TRUE(c.Put(t, "healthy", "1").ok());
  ASSERT_TRUE(c.Commit().ok());
}

TEST(NetTest, MalformedOversizedLengthPrefixDropsConnection) {
  ServerFixture f;
  WireClient setup;
  ASSERT_TRUE(setup.Connect("127.0.0.1", f.port()).ok());
  TableId t = kInvalidTable;
  ASSERT_TRUE(setup.CreateTable("t", &t).ok());
  std::string malformed;
  net::PutU32(&malformed, net::kMaxFrameBytes + 1);
  ExpectMalformedKillsSession(&f, t, malformed);
}

TEST(NetTest, MalformedZeroLengthPrefixDropsConnection) {
  ServerFixture f;
  WireClient setup;
  ASSERT_TRUE(setup.Connect("127.0.0.1", f.port()).ok());
  TableId t = kInvalidTable;
  ASSERT_TRUE(setup.CreateTable("t", &t).ok());
  std::string malformed;
  net::PutU32(&malformed, 0);
  ExpectMalformedKillsSession(&f, t, malformed);
}

TEST(NetTest, MalformedUnknownOpcodeDropsConnection) {
  ServerFixture f;
  WireClient setup;
  ASSERT_TRUE(setup.Connect("127.0.0.1", f.port()).ok());
  TableId t = kInvalidTable;
  ASSERT_TRUE(setup.CreateTable("t", &t).ok());
  std::string malformed;
  net::PutU32(&malformed, 1);
  net::PutU8(&malformed, 0xEE);
  ExpectMalformedKillsSession(&f, t, malformed);
}

TEST(NetTest, MalformedTruncatedFieldDropsConnection) {
  ServerFixture f;
  WireClient setup;
  ASSERT_TRUE(setup.Connect("127.0.0.1", f.port()).ok());
  TableId t = kInvalidTable;
  ASSERT_TRUE(setup.CreateTable("t", &t).ok());
  // A kPut whose declared frame length cuts the value field short: the
  // frame is complete length-wise but DecodeRequestBody must reject it.
  std::string body;
  net::PutU8(&body, static_cast<uint8_t>(Op::kPut));
  net::PutU32(&body, t);
  net::PutStr16(&body, "k");
  net::PutU32(&body, 100);  // value claims 100 bytes...
  body += "short";          // ...but only 5 follow
  std::string malformed;
  net::PutU32(&malformed, static_cast<uint32_t>(body.size()));
  malformed += body;
  ExpectMalformedKillsSession(&f, t, malformed);
}

// A connection torn down at EVERY byte boundary of a valid request
// stream: whatever complete frames made it through execute, the rest is
// discarded, and the half-dead session is always reaped.
TEST(NetTest, TruncatedStreamAtEveryByteBoundaryConvergesClean) {
  ServerOptions so;
  so.max_sessions = 256;  // teardown is async; allow brief overlap
  ServerFixture f(so);
  WireClient setup;
  ASSERT_TRUE(setup.Connect("127.0.0.1", f.port()).ok());
  TableId t = kInvalidTable;
  ASSERT_TRUE(setup.CreateTable("t", &t).ok());

  std::string stream = net::EncodeRequest(net::BeginRequest(
      {.isolation = IsolationLevel::kSerializable}));
  Request put;
  put.op = Op::kPut;
  put.table = t;
  put.key = "trunc";
  put.value = "v";
  stream += net::EncodeRequest(put);
  Request commit;
  commit.op = Op::kCommit;
  stream += net::EncodeRequest(commit);

  for (size_t cut = 1; cut < stream.size(); cut++) {
    int fd = RawConnect(f.port());
    SendAll(fd, stream.substr(0, cut));
    ::close(fd);
  }
  EXPECT_TRUE(ConvergedClean(f.db.get()));

  // Still healthy end to end.
  WireClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", f.port()).ok());
  ASSERT_TRUE(c.Begin().ok());
  std::string v;
  Status st = c.Get(t, "trunc", &v);
  EXPECT_TRUE(st.ok() || st.code() == Code::kNotFound) << st.ToString();
  ASSERT_TRUE(c.Commit().ok());
}

// Admission refusal is a protocol message: a client over max_sessions
// reads a kOverloaded frame carrying the configured retry-after hint.
TEST(NetTest, OverloadRefusalCarriesRetryAfterHint) {
  ServerOptions so;
  so.max_sessions = 1;
  DatabaseOptions dbo;
  dbo.engine.net_overload_retry_after_ms = 7;
  ServerFixture f(so, dbo);
  WireClient holder;
  ASSERT_TRUE(holder.Connect("127.0.0.1", f.port()).ok());
  ASSERT_TRUE(holder.Ping().ok());  // session occupies the only slot

  // Read-only raw socket: no outbound write means no RST race — the
  // refusal frame and FIN arrive untouched.
  int fd = RawConnect(f.port());
  std::string got;
  char buf[64];
  for (;;) {
    ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r <= 0) break;
    got.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  ASSERT_GE(got.size(), 9u) << "expected a full kOverloaded frame";
  uint32_t len = 0;
  std::memcpy(&len, got.data(), 4);
  ASSERT_EQ(len, 5u);
  EXPECT_EQ(static_cast<uint8_t>(got[4]),
            static_cast<uint8_t>(Code::kOverloaded));
  EXPECT_EQ(net::RetryAfterMsFromOverloaded(got.substr(5)), 7u);
  EXPECT_GE(f.server->stats().refused, 1u);

  // The WireClient surfaces it as Status::Overloaded with the hint.
  WireClient refused;
  ASSERT_TRUE(refused.Connect("127.0.0.1", f.port()).ok());
  Status st = refused.Ping();
  if (st.code() == Code::kOverloaded) {
    EXPECT_EQ(refused.last_retry_after_ms(), 7u);
  } else {
    // The refusal frame can lose a race with our own write (RST); the
    // degradation contract only promises a clean failure, never a hang.
    EXPECT_EQ(st.code(), Code::kIOError) << st.ToString();
  }
}

TEST(NetTest, StopAbortsInFlightAndParkedSessions) {
  DatabaseOptions dbo;
  dbo.serializable_impl = SerializableImpl::kS2PL;
  ServerOptions so;
  so.workers = 2;
  auto f = std::make_unique<ServerFixture>(so, dbo);
  WireClient setup;
  ASSERT_TRUE(setup.Connect("127.0.0.1", f->port()).ok());
  TableId t = kInvalidTable;
  ASSERT_TRUE(setup.CreateTable("t", &t).ok());
  ASSERT_TRUE(setup.Begin().ok());
  ASSERT_TRUE(setup.Put(t, "k", "0").ok());
  ASSERT_TRUE(setup.Commit().ok());

  // Session A holds the row lock with its txn open; session B parks on
  // it (its Put response will never arrive).
  WireClient a;
  ASSERT_TRUE(a.Connect("127.0.0.1", f->port()).ok());
  ASSERT_TRUE(a.Begin({.isolation = IsolationLevel::kSerializable}).ok());
  ASSERT_TRUE(a.Put(t, "k", "a").ok());

  std::thread blocked([&f] {
    WireClient b;
    ASSERT_TRUE(b.Connect("127.0.0.1", f->port()).ok());
    ASSERT_TRUE(b.Begin({.isolation = IsolationLevel::kSerializable}).ok());
    TableId tt = kInvalidTable;
    ASSERT_TRUE(b.OpenTable("t", &tt).ok());
    // Parked behind A until shutdown tears the connection down; any
    // outcome except a hang is fine.
    (void)b.Put(tt, "k", "b");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Stop with one live in-txn session and one parked session: both
  // in-flight transactions must be aborted before the Database dies
  // (ASan verifies nothing leaks and nothing dangles).
  f->server->Stop();
  EXPECT_GE(f->server->stats().shutdown_aborts, 2u);
  f.reset();
  blocked.join();
}

}  // namespace
}  // namespace pgssi
