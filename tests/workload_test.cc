// Workload smoke tests: every bench driver loads and runs under each
// mode, RUBiS's integrity invariant holds under the serializable modes,
// and the fixed-duration driver counts outcomes correctly.
#include <gtest/gtest.h>

#include "workload/dbt2.h"
#include "workload/driver.h"
#include "workload/rubis.h"
#include "workload/sibench.h"

namespace pgssi::workload {
namespace {

TEST(DriverTest, CountsOutcomes) {
  int calls = 0;
  DriverResult r = RunFixedDuration(
      [&calls](int, Random&) {
        calls++;
        switch (calls % 3) {
          case 0:
            return Status::SerializationFailure("x");
          case 1:
            return Status::OK();
          default:
            return Status::Internal("boom");
        }
      },
      /*threads=*/1, /*seconds=*/0.05);
  EXPECT_GT(r.committed, 0u);
  EXPECT_GT(r.serialization_failures, 0u);
  EXPECT_GT(r.other_errors, 0u);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.Throughput(), 0.0);
  EXPECT_GT(r.FailureRate(), 0.0);
  EXPECT_LT(r.FailureRate(), 1.0);
}

TEST(SibenchTest, LoadAndRunAllTxnTypes) {
  auto db = Database::Open({});
  Sibench bench(db.get(), /*rows=*/50);
  ASSERT_TRUE(bench.Load().ok());
  Random rng(1);
  for (int i = 0; i < 20; i++) {
    Status st = bench.RunMixed(rng, IsolationLevel::kSerializable);
    EXPECT_TRUE(st.ok() || st.IsSerializationFailure()) << st.ToString();
  }
  EXPECT_TRUE(bench.RunUpdate(rng, IsolationLevel::kRepeatableRead).ok());
  EXPECT_TRUE(bench.RunQuery(rng, IsolationLevel::kRepeatableRead).ok());
}

TEST(Dbt2Test, LoadAndRunBothMixes) {
  auto db = Database::Open({});
  Dbt2Config cfg;
  cfg.warehouses = 2;
  cfg.read_only_fraction = 0.5;
  Dbt2 bench(db.get(), cfg);
  ASSERT_TRUE(bench.Load().ok());
  Random rng(2);
  int ok = 0;
  for (int i = 0; i < 40; i++) {
    Status st = bench.RunOne(rng);
    if (st.ok()) ok++;
    EXPECT_TRUE(st.ok() || st.IsSerializationFailure()) << st.ToString();
  }
  EXPECT_GT(ok, 0);
}

TEST(RubisTest, SerializableKeepsInvariant) {
  for (SerializableImpl impl :
       {SerializableImpl::kSSI, SerializableImpl::kS2PL}) {
    DatabaseOptions opts;
    opts.serializable_impl = impl;
    auto db = Database::Open(opts);
    RubisConfig cfg;
    cfg.items = 4;  // high contention
    cfg.isolation = IsolationLevel::kSerializable;
    Rubis bench(db.get(), cfg);
    ASSERT_TRUE(bench.Load().ok());
    DriverResult r = RunFixedDuration(
        [&](int, Random& rng) { return bench.RunOne(rng); },
        /*threads=*/4, /*seconds=*/0.3);
    EXPECT_GT(r.committed, 0u);
    bool ok = false;
    ASSERT_TRUE(bench.CheckConsistency(&ok).ok());
    EXPECT_TRUE(ok) << "serializable mode let the max-bid invariant break "
                       "(impl=" << (impl == SerializableImpl::kSSI ? "SSI"
                                                                   : "S2PL")
                    << ")";
  }
}

TEST(RubisTest, RunsUnderSnapshotIsolation) {
  auto db = Database::Open({});
  RubisConfig cfg;
  cfg.items = 4;
  cfg.isolation = IsolationLevel::kRepeatableRead;
  Rubis bench(db.get(), cfg);
  ASSERT_TRUE(bench.Load().ok());
  DriverResult r = RunFixedDuration(
      [&](int, Random& rng) { return bench.RunOne(rng); },
      /*threads=*/4, /*seconds=*/0.2);
  EXPECT_GT(r.committed, 0u);
  // No invariant assertion here: SI is ALLOWED to break it (the paper's
  // point); we only require the workload itself to run.
  bool ok = true;
  EXPECT_TRUE(bench.CheckConsistency(&ok).ok());
}

}  // namespace
}  // namespace pgssi::workload
