// Multithreaded stress for the partitioned SIREAD lock manager:
//  - manager-level chaos (acquire/probe/promote/split/flag/commit/abort/
//    cleanup from 8 threads) must leave the lock tables empty and the
//    per-xact bookkeeping exactly mirroring them (TotalLockCount /
//    CheckConsistency invariants);
//  - write-skew pairs hammered from 8 threads must never commit a
//    serializable anomaly;
//  - concurrent B+-tree leaf splits with serializable scanners must not
//    lose predicate locks or corrupt the lock-move bookkeeping.
// Run under ThreadSanitizer in CI (cmake --preset tsan).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "db/transaction_handle.h"
#include "ssi/siread_lock_manager.h"
#include "util/epoch.h"
#include "util/random.h"

// Sanitizer runs pay a 10-20x per-access tax; shrink the fixed work so the
// suite stays minutes-not-hours on small CI machines while touching the
// same code paths.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PGSSI_STRESS_SCALE 4
#else
#define PGSSI_STRESS_SCALE 1
#endif

namespace pgssi {
namespace {

TEST(SsiPartitionStressTest, ManagerChaosLeavesBookkeepingConsistent) {
  EngineConfig cfg;
  cfg.max_locks_per_page = 4;       // exercise tuple->page promotion
  cfg.max_pages_per_relation = 8;   // and page->relation promotion
  cfg.lock_partitions = 16;
  // Epoch-mode teardown (the default): granules and xacts retire
  // through the limbo while the chaos runs.
  util::EpochManager em;
  ssi::SireadLockManager mgr(cfg, &em);

  constexpr int kThreads = 8;
  constexpr int kXactsPerThread = 120 / PGSSI_STRESS_SCALE;
  std::atomic<XactId> next_xid{1};
  std::atomic<uint64_t> commit_seq{0};
  std::atomic<PageId> next_split_page{1'000'000};

  std::vector<std::thread> workers;
  for (int ti = 0; ti < kThreads; ti++) {
    workers.emplace_back([&, ti] {
      Random rng(1234u + static_cast<uint64_t>(ti));
      for (int it = 0; it < kXactsPerThread; it++) {
        XactId xid = next_xid.fetch_add(1);
        ssi::SerializableXact* x =
            mgr.Register(xid, commit_seq.load(), /*read_only=*/false);
        for (int op = 0; op < 24; op++) {
          RelationId rel = static_cast<RelationId>(1 + rng.Uniform(4));
          PageId page = rng.Uniform(32);
          uint32_t slot = static_cast<uint32_t>(rng.Uniform(8));
          switch (rng.Uniform(10)) {
            case 0:
            case 1:
            case 2:
            case 3:
              mgr.AcquireTuple(x, rel, page, slot);
              break;
            case 4:
              mgr.AcquirePage(x, rel, page);
              break;
            case 5: {
              auto probe = mgr.ProbeHeapWrite(rel, page, slot);
              for (XactId h : probe.holder_xids) {
                if (h != xid) mgr.FlagRwConflictWithReader(h, x);
              }
              break;
            }
            case 6:
              // A leaf split: slots 0-3 move from `page` to a fresh page.
              mgr.OnPageSplit(rel, page, next_split_page.fetch_add(1),
                              {0, 1, 2, 3});
              break;
            case 7:
              mgr.ReleaseOwnTuple(x, rel, page, slot);
              break;
            default:
              mgr.AcquireTuple(x, rel, page, slot);
              break;
          }
        }
        if (mgr.Doomed(x) || rng.Bernoulli(0.2)) {
          mgr.Abort(x);
        } else if (mgr.PreCommit(x).ok()) {
          mgr.MarkCommitted(x, commit_seq.fetch_add(1) + 1);
        } else {
          mgr.Abort(x);
        }
        if (rng.Bernoulli(0.1)) {
          // Lag the cleanup bound so live xacts keep their locks pinned.
          uint64_t seq = commit_seq.load();
          mgr.Cleanup(seq > 8 ? seq - 8 : 0);
        }
      }
    });
  }
  for (auto& t : workers) t.join();

  EXPECT_TRUE(mgr.CheckConsistency());
  // Everything committed; a final cleanup with nothing active frees all
  // xacts and every SIREAD entry they held — including entries that page
  // splits moved between partitions mid-run.
  mgr.Cleanup(commit_seq.load());
  EXPECT_EQ(mgr.RegisteredCount(), 0u);
  EXPECT_EQ(mgr.TotalLockCount(), 0u);
  EXPECT_TRUE(mgr.CheckConsistency());
}

// Conflict storm: 8 threads hammer the CONFLICT path — FlagRwConflict*,
// PreCommit, MarkCommitted, teardown, Cleanup sweeps — on overlapping
// xact pairs (partners picked from a shared ring of recently registered
// xids, resolved by xid because they may already be torn down). This is
// the workload the per-xact edge locks must survive; run under both
// settings of the conflict_lock_mode A/B knob — and both settings of
// epoch_reclaim, since teardown-vs-flag races are exactly what the
// epoch grace period must make safe — ending in a full conflict-graph
// + lock-table consistency check.
void RunConflictStorm(uint32_t conflict_lock_mode, uint32_t epoch_reclaim) {
  EngineConfig cfg;
  cfg.conflict_lock_mode = conflict_lock_mode;
  cfg.epoch_reclaim = epoch_reclaim;
  util::EpochManager em;
  ssi::SireadLockManager mgr(cfg, epoch_reclaim != 0 ? &em : nullptr);
  ASSERT_EQ(mgr.epoch_mode(), epoch_reclaim != 0);

  constexpr int kThreads = 8;
  constexpr int kXactsPerThread = 250 / PGSSI_STRESS_SCALE;
  constexpr size_t kRecent = 64;
  std::atomic<XactId> next_xid{1};
  std::atomic<uint64_t> commit_seq{0};
  std::array<std::atomic<XactId>, kRecent> recent{};

  std::vector<std::thread> workers;
  for (int ti = 0; ti < kThreads; ti++) {
    workers.emplace_back([&, ti] {
      Random rng(4321u + static_cast<uint64_t>(ti));
      for (int it = 0; it < kXactsPerThread; it++) {
        XactId xid = next_xid.fetch_add(1);
        ssi::SerializableXact* x =
            mgr.Register(xid, commit_seq.load(), /*read_only=*/false);
        recent[static_cast<size_t>(xid) % kRecent].store(xid);
        for (int op = 0; op < 12; op++) {
          XactId partner =
              recent[rng.Uniform(kRecent)].load(std::memory_order_relaxed);
          if (partner == 0 || partner == xid) continue;
          if (rng.Bernoulli(0.5)) {
            mgr.FlagRwConflictWithWriter(x, partner);
          } else {
            mgr.FlagRwConflictWithReader(partner, x);
          }
        }
        if (mgr.Doomed(x) || rng.Bernoulli(0.25)) {
          mgr.Abort(x);
        } else if (mgr.PreCommit(x).ok()) {
          mgr.MarkCommitted(x, commit_seq.fetch_add(1) + 1);
        } else {
          mgr.Abort(x);
        }
        if (rng.Bernoulli(0.15)) {
          // Lag the bound so live xacts keep their graph state pinned.
          uint64_t seq = commit_seq.load();
          mgr.Cleanup(seq > 16 ? seq - 16 : 0);
        }
      }
    });
  }
  for (auto& t : workers) t.join();

  EXPECT_TRUE(mgr.CheckConsistency());
  mgr.Cleanup(commit_seq.load());
  EXPECT_EQ(mgr.RegisteredCount(), 0u);
  EXPECT_EQ(mgr.TotalLockCount(), 0u);
  if (epoch_reclaim != 0) {
    // After quiesce every retired xact/granule must really be gone.
    em.Quiesce();
    EXPECT_EQ(em.RetiredObjectCount(), 0u);
  }
  EXPECT_TRUE(mgr.CheckConsistency());
}

TEST(SsiPartitionStressTest, ConflictStormFineGrained) {
  RunConflictStorm(1, /*epoch_reclaim=*/1);
}

TEST(SsiPartitionStressTest, ConflictStormFineGrainedLegacyReclaim) {
  RunConflictStorm(1, /*epoch_reclaim=*/0);
}

TEST(SsiPartitionStressTest, ConflictStormGlobalMutexBaseline) {
  RunConflictStorm(0, /*epoch_reclaim=*/1);
}

int ReadInt(Transaction* txn, TableId t, const std::string& key, bool* ok) {
  std::string v;
  Status st = txn->Get(t, key, &v);
  if (!st.ok()) {
    *ok = false;
    return 0;
  }
  return std::atoi(v.c_str());
}

TEST(SsiPartitionStressTest, WriteSkewPairsNeverCommitAnomaly) {
  auto db = Database::Open({});  // SSI, default partition count
  TableId t;
  ASSERT_TRUE(db->CreateTable("pairs", &t).ok());
  constexpr int kPairs = 16;
  {
    auto txn = db->Begin({.isolation = IsolationLevel::kRepeatableRead});
    for (int i = 0; i < kPairs; i++) {
      ASSERT_TRUE(txn->Put(t, "p" + std::to_string(i) + "a", "60").ok());
      ASSERT_TRUE(txn->Put(t, "p" + std::to_string(i) + "b", "60").ok());
    }
    ASSERT_TRUE(txn->Commit().ok());
  }

  // Classic write skew: withdraw 100 from one side iff the pair's sum is
  // still >= 100. Serializable executions keep every pair's sum >= 0;
  // two concurrent withdrawals reading the same snapshot would drive it
  // negative, so any negative sum is a serializability violation.
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  for (int ti = 0; ti < kThreads; ti++) {
    workers.emplace_back([&, ti] {
      Random rng(77u + static_cast<uint64_t>(ti));
      for (int it = 0; it < 150 / PGSSI_STRESS_SCALE; it++) {
        int pair = static_cast<int>(rng.Uniform(kPairs));
        std::string ka = "p" + std::to_string(pair) + "a";
        std::string kb = "p" + std::to_string(pair) + "b";
        auto txn = db->Begin({.isolation = IsolationLevel::kSerializable});
        bool ok = true;
        int a = ReadInt(txn.get(), t, ka, &ok);
        int b = ReadInt(txn.get(), t, kb, &ok);
        if (!ok) continue;  // aborted mid-read; statement rolled back
        if (a + b >= 100) {
          const std::string& victim = rng.Bernoulli(0.5) ? ka : kb;
          int nv = (victim == ka ? a : b) - 100;
          if (!txn->Put(t, victim, std::to_string(nv)).ok()) continue;
        }
        (void)txn->Commit();  // serialization failures are fine; anomalies not
      }
    });
  }
  for (auto& t2 : workers) t2.join();

  auto txn = db->Begin(
      {.isolation = IsolationLevel::kSerializable, .read_only = true});
  for (int i = 0; i < kPairs; i++) {
    bool ok = true;
    int a = ReadInt(txn.get(), t, "p" + std::to_string(i) + "a", &ok);
    int b = ReadInt(txn.get(), t, "p" + std::to_string(i) + "b", &ok);
    ASSERT_TRUE(ok);
    EXPECT_GE(a + b, 0) << "write skew committed on pair " << i;
  }
  ASSERT_TRUE(txn->Commit().ok());
}

TEST(SsiPartitionStressTest, ConcurrentLeafSplitsKeepLocksAndData) {
  auto db = Database::Open({});
  TableId t;
  ASSERT_TRUE(db->CreateTable("s", &t).ok());

  // 4 writer threads insert distinct keys (driving leaf splits, which
  // move SIREAD entries between partitions) while 4 serializable
  // scanners repeatedly range-count — their page-granularity gap locks
  // are exactly the state OnPageSplit must carry to the new leaves.
  constexpr int kWriters = 4;
  constexpr int kScanners = 4;
  constexpr int kPerWriter = 300 / PGSSI_STRESS_SCALE;
  std::atomic<int> inserted{0};
  std::atomic<bool> done{false};

  auto key_for = [](int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "s%08d", i);
    return std::string(buf);
  };

  std::vector<std::thread> workers;
  for (int w = 0; w < kWriters; w++) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; i++) {
        const std::string key = key_for(w * kPerWriter + i);
        for (;;) {  // retry serialization failures until the insert lands
          auto txn = db->Begin({.isolation = IsolationLevel::kSerializable});
          if (!txn->Insert(t, key, "v").ok()) continue;
          if (txn->Commit().ok()) break;
        }
        inserted.fetch_add(1);
      }
    });
  }
  const int total = kWriters * kPerWriter;
  for (int s = 0; s < kScanners; s++) {
    workers.emplace_back([&, s] {
      Random rng(9000u + static_cast<uint64_t>(s));
      while (!done.load(std::memory_order_acquire)) {
        // Bounded-window scans: cheap enough to run continuously while the
        // writers drive splits, yet the windows land on the leaves being
        // split, which is what exercises the lock transfer.
        int lo = static_cast<int>(rng.Uniform(static_cast<uint64_t>(total)));
        auto txn = db->Begin({.isolation = IsolationLevel::kSerializable});
        uint64_t n = 0;
        if (!txn->Count(t, key_for(lo), key_for(lo + 63), &n).ok()) continue;
        (void)txn->Commit();
      }
    });
  }
  for (int w = 0; w < kWriters; w++) workers[static_cast<size_t>(w)].join();
  done.store(true, std::memory_order_release);
  for (size_t i = kWriters; i < workers.size(); i++) workers[i].join();

  ASSERT_EQ(inserted.load(), kWriters * kPerWriter);
  auto txn = db->Begin(
      {.isolation = IsolationLevel::kSerializable, .read_only = true});
  uint64_t n = 0;
  ASSERT_TRUE(txn->Count(t, "s00000000", "s99999999", &n).ok());
  EXPECT_EQ(n, static_cast<uint64_t>(kWriters * kPerWriter));
  ASSERT_TRUE(txn->Commit().ok());
}

}  // namespace
}  // namespace pgssi
