// SSI correctness: the classic SI anomalies from the paper's Section 2.
// Each scenario is run twice — REPEATABLE READ (snapshot isolation) must
// permit the anomaly, SERIALIZABLE (SSI) must abort exactly one of the
// participating transactions with a serialization failure.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "db/transaction_handle.h"

namespace pgssi {
namespace {

class SsiAnomaliesTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = Database::Open({}); }

  std::unique_ptr<Transaction> Begin(IsolationLevel iso,
                                     bool read_only = false) {
    return db_->Begin({.isolation = iso, .read_only = read_only});
  }

  std::unique_ptr<Database> db_;
};

// ---------------------------------------------------------------------------
// Simple write skew (Section 2.2 "doctors on call" shape): T1 reads x,y and
// writes x; T2 reads x,y and writes y. Serializable in neither order.
// ---------------------------------------------------------------------------

// Returns the commit status pair of the two write-skew transactions.
std::pair<Status, Status> RunWriteSkew(Database* db, TableId t,
                                       IsolationLevel iso) {
  {
    auto w = db->Begin();
    EXPECT_TRUE(w->Put(t, "x", "1").ok());
    EXPECT_TRUE(w->Put(t, "y", "1").ok());
    EXPECT_TRUE(w->Commit().ok());
  }
  auto t1 = db->Begin({.isolation = iso});
  auto t2 = db->Begin({.isolation = iso});
  std::string v;
  // Both read the invariant "x + y >= 0"... each then zeroes one side.
  EXPECT_TRUE(t1->Get(t, "x", &v).ok());
  EXPECT_TRUE(t1->Get(t, "y", &v).ok());
  EXPECT_TRUE(t2->Get(t, "x", &v).ok());
  EXPECT_TRUE(t2->Get(t, "y", &v).ok());
  Status s1 = t1->Put(t, "x", "0");
  if (s1.ok()) s1 = t1->Commit();
  Status s2 = t2->Put(t, "y", "0");
  if (s2.ok()) s2 = t2->Commit();
  return {s1, s2};
}

TEST_F(SsiAnomaliesTest, WriteSkewPermittedUnderRepeatableRead) {
  TableId t;
  ASSERT_TRUE(db_->CreateTable("ws_rr", &t).ok());
  auto [s1, s2] = RunWriteSkew(db_.get(), t, IsolationLevel::kRepeatableRead);
  // SI permits the anomaly: both commit, and the invariant is broken.
  EXPECT_TRUE(s1.ok()) << s1.ToString();
  EXPECT_TRUE(s2.ok()) << s2.ToString();
  auto r = db_->Begin();
  std::string x, y;
  ASSERT_TRUE(r->Get(t, "x", &x).ok());
  ASSERT_TRUE(r->Get(t, "y", &y).ok());
  EXPECT_EQ(x, "0");
  EXPECT_EQ(y, "0");  // both zeroed: non-serializable outcome
  ASSERT_TRUE(r->Commit().ok());
}

TEST_F(SsiAnomaliesTest, WriteSkewAbortsExactlyOneUnderSerializable) {
  TableId t;
  ASSERT_TRUE(db_->CreateTable("ws_ssi", &t).ok());
  auto [s1, s2] = RunWriteSkew(db_.get(), t, IsolationLevel::kSerializable);
  // Exactly one commits; the other gets a serialization failure.
  EXPECT_NE(s1.ok(), s2.ok()) << "s1=" << s1.ToString()
                              << " s2=" << s2.ToString();
  const Status& failed = s1.ok() ? s2 : s1;
  EXPECT_EQ(failed.code(), Code::kSerializationFailure) << failed.ToString();
  // The surviving state is serializable: only one side zeroed.
  auto r = db_->Begin();
  std::string x, y;
  ASSERT_TRUE(r->Get(t, "x", &x).ok());
  ASSERT_TRUE(r->Get(t, "y", &y).ok());
  EXPECT_NE(x == "0", y == "0");
  ASSERT_TRUE(r->Commit().ok());
}

TEST_F(SsiAnomaliesTest, WriteSkewVictimRetrySucceeds) {
  TableId t;
  ASSERT_TRUE(db_->CreateTable("ws_retry", &t).ok());
  auto [s1, s2] = RunWriteSkew(db_.get(), t, IsolationLevel::kSerializable);
  ASSERT_NE(s1.ok(), s2.ok());
  // Section 5.4 safe retry: with the conflicting partner committed, an
  // immediate retry of the victim's logic must succeed.
  auto retry = Begin(IsolationLevel::kSerializable);
  std::string v;
  ASSERT_TRUE(retry->Get(t, "x", &v).ok());
  ASSERT_TRUE(retry->Get(t, "y", &v).ok());
  ASSERT_TRUE(retry->Put(t, s1.ok() ? "y" : "x", "0").ok());
  EXPECT_TRUE(retry->Commit().ok());
}

// ---------------------------------------------------------------------------
// Batch processing (Fekete et al., the paper's Section 2.2.1 pattern, on
// two plain keys): x is the current batch number, y the batch-1 total.
//   N (deposit): reads x, later adds its deposit to batch x's total y.
//   C (close):   increments x, commits first.
//   R (report):  begins after C commits; reads x (new) and y (batch-1
//                total), reports it as final, commits.
// N then writes y: the report already published a total N's deposit
// would invalidate. N is a pivot (R -rw-> N via y, N -rw-> C via x)
// whose out-neighbor committed first => SSI aborts N; SI lets all three
// commit and the report is wrong.
// ---------------------------------------------------------------------------

TEST_F(SsiAnomaliesTest, BatchProcessingAnomalyAbortedUnderSerializable) {
  TableId t;
  ASSERT_TRUE(db_->CreateTable("batch", &t).ok());
  {
    auto w = db_->Begin();
    ASSERT_TRUE(w->Put(t, "x", "1").ok());  // current batch
    ASSERT_TRUE(w->Put(t, "y", "0").ok());  // batch-1 running total
    ASSERT_TRUE(w->Commit().ok());
  }
  auto n = Begin(IsolationLevel::kSerializable);
  std::string v;
  ASSERT_TRUE(n->Get(t, "x", &v).ok());
  EXPECT_EQ(v, "1");

  auto c = Begin(IsolationLevel::kSerializable);
  ASSERT_TRUE(c->Get(t, "x", &v).ok());
  ASSERT_TRUE(c->Put(t, "x", "2").ok());
  ASSERT_TRUE(c->Commit().ok());

  auto r = Begin(IsolationLevel::kSerializable);
  ASSERT_TRUE(r->Get(t, "x", &v).ok());
  EXPECT_EQ(v, "2");  // batch 1 is closed...
  ASSERT_TRUE(r->Get(t, "y", &v).ok());
  EXPECT_EQ(v, "0");  // ...and its reported total is 0.
  ASSERT_TRUE(r->Commit().ok());

  // N's deposit into the already-reported batch must fail.
  Status st = n->Put(t, "y", "100");
  if (st.ok()) st = n->Commit();
  EXPECT_EQ(st.code(), Code::kSerializationFailure) << st.ToString();

  auto check = db_->Begin();
  ASSERT_TRUE(check->Get(t, "y", &v).ok());
  EXPECT_EQ(v, "0");  // the reported total stays final
  ASSERT_TRUE(check->Commit().ok());
}

TEST_F(SsiAnomaliesTest, BatchProcessingPermittedUnderRepeatableRead) {
  TableId t;
  ASSERT_TRUE(db_->CreateTable("batch_rr", &t).ok());
  {
    auto w = db_->Begin();
    ASSERT_TRUE(w->Put(t, "x", "1").ok());
    ASSERT_TRUE(w->Put(t, "y", "0").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto n = Begin(IsolationLevel::kRepeatableRead);
  std::string v;
  ASSERT_TRUE(n->Get(t, "x", &v).ok());

  auto c = Begin(IsolationLevel::kRepeatableRead);
  ASSERT_TRUE(c->Get(t, "x", &v).ok());
  ASSERT_TRUE(c->Put(t, "x", "2").ok());
  ASSERT_TRUE(c->Commit().ok());

  auto r = Begin(IsolationLevel::kRepeatableRead);
  ASSERT_TRUE(r->Get(t, "x", &v).ok());
  ASSERT_TRUE(r->Get(t, "y", &v).ok());
  EXPECT_EQ(v, "0");
  ASSERT_TRUE(r->Commit().ok());

  // SI permits the late deposit: the report was wrong.
  ASSERT_TRUE(n->Put(t, "y", "100").ok());
  EXPECT_TRUE(n->Commit().ok());
  auto check = db_->Begin();
  ASSERT_TRUE(check->Get(t, "y", &v).ok());
  EXPECT_EQ(v, "100");
  ASSERT_TRUE(check->Commit().ok());
}

// ---------------------------------------------------------------------------
// Receipt report (Section 2.2.1): receipt insertion N, batch close C,
// report R. C commits first; R (running after C) reports the closed
// batch; N (still on the old batch number) then tries to insert a receipt
// into the batch R already reported. N is the pivot with a committed
// out-neighbor and must abort under SSI.
// ---------------------------------------------------------------------------

TEST_F(SsiAnomaliesTest, ReceiptReportAbortsInserterUnderSerializable) {
  TableId ctl, receipts;
  ASSERT_TRUE(db_->CreateTable("ctl", &ctl).ok());
  ASSERT_TRUE(db_->CreateTable("receipts", &receipts).ok());
  {
    auto w = db_->Begin();
    ASSERT_TRUE(w->Put(ctl, "batch", "7").ok());
    ASSERT_TRUE(w->Put(receipts, "7:001", "99").ok());
    ASSERT_TRUE(w->Commit().ok());
  }

  // N: new receipt on the current batch (reads batch number first).
  auto n = Begin(IsolationLevel::kSerializable);
  std::string batch;
  ASSERT_TRUE(n->Get(ctl, "batch", &batch).ok());
  EXPECT_EQ(batch, "7");

  // C: close the batch (increments the counter), commits first.
  auto c = Begin(IsolationLevel::kSerializable);
  std::string v;
  ASSERT_TRUE(c->Get(ctl, "batch", &v).ok());
  ASSERT_TRUE(c->Put(ctl, "batch", "8").ok());
  ASSERT_TRUE(c->Commit().ok());

  // R: report for batch 7 — reads the new counter and scans batch 7's
  // receipts. Runs entirely after C committed.
  auto r = Begin(IsolationLevel::kSerializable);
  ASSERT_TRUE(r->Get(ctl, "batch", &v).ok());
  EXPECT_EQ(v, "8");
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(r->Scan(receipts, "7:", "7:\x7f", &rows).ok());
  EXPECT_EQ(rows.size(), 1u);
  ASSERT_TRUE(r->Commit().ok());

  // N now inserts its receipt into batch 7 — which R already reported as
  // final. N is a pivot (R -rw-> N via the receipts scan, N -rw-> C via
  // the batch counter) whose out-neighbor C committed first: abort.
  Status ins = n->Insert(receipts, "7:002", "25");
  Status fin = ins.ok() ? n->Commit() : ins;
  EXPECT_FALSE(fin.ok());
  EXPECT_EQ(fin.code(), Code::kSerializationFailure) << fin.ToString();

  // The reported batch stays final.
  auto check = db_->Begin();
  ASSERT_TRUE(check->Scan(receipts, "7:", "7:\x7f", &rows).ok());
  EXPECT_EQ(rows.size(), 1u);
  ASSERT_TRUE(check->Commit().ok());
}

TEST_F(SsiAnomaliesTest, ReceiptReportPermittedUnderRepeatableRead) {
  TableId ctl, receipts;
  ASSERT_TRUE(db_->CreateTable("ctl_rr", &ctl).ok());
  ASSERT_TRUE(db_->CreateTable("receipts_rr", &receipts).ok());
  {
    auto w = db_->Begin();
    ASSERT_TRUE(w->Put(ctl, "batch", "7").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto n = Begin(IsolationLevel::kRepeatableRead);
  std::string batch;
  ASSERT_TRUE(n->Get(ctl, "batch", &batch).ok());

  auto c = Begin(IsolationLevel::kRepeatableRead);
  ASSERT_TRUE(c->Get(ctl, "batch", &batch).ok());
  ASSERT_TRUE(c->Put(ctl, "batch", "8").ok());
  ASSERT_TRUE(c->Commit().ok());

  auto r = Begin(IsolationLevel::kRepeatableRead);
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(r->Scan(receipts, "7:", "7:\x7f", &rows).ok());
  EXPECT_EQ(rows.size(), 0u);  // report: batch 7 is empty and closed
  ASSERT_TRUE(r->Commit().ok());

  // SI allows the late insert: the anomaly the paper opens with.
  ASSERT_TRUE(n->Insert(receipts, "7:001", "25").ok());
  EXPECT_TRUE(n->Commit().ok());
}

// ---------------------------------------------------------------------------
// Regression (Section 5.2.2): leaf splits relocate tuples, so SIREAD
// acquisition and heap-write probes must meet at the tuple's *current*
// (page, slot) granule. With stale coordinates, a writer probing the old
// page misses the reader's lock, the rw-antidependency edge is lost, and
// write skew silently commits under SERIALIZABLE.
// ---------------------------------------------------------------------------

// Seeds "zz_a"/"zz_b" (the highest keys, so every split of their leaf
// moves them) and then enough low keys that, at fanout 4, the leaf first
// holding the pair splits repeatedly.
void SeedAcrossLeafSplits(Database* db, TableId t) {
  auto w = db->Begin();
  EXPECT_TRUE(w->Put(t, "zz_a", "1").ok());
  EXPECT_TRUE(w->Put(t, "zz_b", "1").ok());
  for (int i = 0; i < 50; i++) {
    char k[16];
    std::snprintf(k, sizeof(k), "k%04d", i);
    EXPECT_TRUE(w->Put(t, k, "v").ok());
  }
  EXPECT_TRUE(w->Commit().ok());
}

TEST(SsiLeafSplitTest, WriteSkewStillAbortedAfterLeafSplits) {
  DatabaseOptions opts;
  opts.engine.btree_fanout = 4;  // force deep splits on a small keyset
  auto db = Database::Open(opts);
  TableId t;
  ASSERT_TRUE(db->CreateTable("split_ws", &t).ok());
  SeedAcrossLeafSplits(db.get(), t);

  auto t1 = db->Begin({.isolation = IsolationLevel::kSerializable});
  auto t2 = db->Begin({.isolation = IsolationLevel::kSerializable});
  std::string v;
  ASSERT_TRUE(t1->Get(t, "zz_a", &v).ok());
  ASSERT_TRUE(t1->Get(t, "zz_b", &v).ok());
  ASSERT_TRUE(t2->Get(t, "zz_a", &v).ok());
  ASSERT_TRUE(t2->Get(t, "zz_b", &v).ok());
  Status s1 = t1->Put(t, "zz_a", "0");
  if (s1.ok()) s1 = t1->Commit();
  Status s2 = t2->Put(t, "zz_b", "0");
  if (s2.ok()) s2 = t2->Commit();

  EXPECT_NE(s1.ok(), s2.ok()) << "s1=" << s1.ToString()
                              << " s2=" << s2.ToString();
  const Status& failed = s1.ok() ? s2 : s1;
  EXPECT_EQ(failed.code(), Code::kSerializationFailure) << failed.ToString();
}

TEST(SsiLeafSplitTest, ScanWriteSkewStillAbortedAfterLeafSplitsNextKeyMode) {
  // Same shape via range scans under next-key (tuple-granularity) gap
  // locking, where no page-level lock can paper over stale tuple granules.
  DatabaseOptions opts;
  opts.engine.btree_fanout = 4;
  opts.engine.index_gap_locking = IndexGapLocking::kNextKey;
  auto db = Database::Open(opts);
  TableId t;
  ASSERT_TRUE(db->CreateTable("split_scan_ws", &t).ok());
  SeedAcrossLeafSplits(db.get(), t);

  auto t1 = db->Begin({.isolation = IsolationLevel::kSerializable});
  auto t2 = db->Begin({.isolation = IsolationLevel::kSerializable});
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(t1->Scan(t, "zz_a", "zz_b", &rows).ok());
  EXPECT_EQ(rows.size(), 2u);
  ASSERT_TRUE(t2->Scan(t, "zz_a", "zz_b", &rows).ok());
  EXPECT_EQ(rows.size(), 2u);
  Status s1 = t1->Put(t, "zz_a", "0");
  if (s1.ok()) s1 = t1->Commit();
  Status s2 = t2->Put(t, "zz_b", "0");
  if (s2.ok()) s2 = t2->Commit();

  EXPECT_NE(s1.ok(), s2.ok()) << "s1=" << s1.ToString()
                              << " s2=" << s2.ToString();
  const Status& failed = s1.ok() ? s2 : s1;
  EXPECT_EQ(failed.code(), Code::kSerializationFailure) << failed.ToString();
}

// The dangerous structure must NOT fire for harmless single rw edges:
// a plain reader/writer pair with one antidependency commits fine.
TEST_F(SsiAnomaliesTest, SingleRwEdgeDoesNotAbort) {
  TableId t;
  ASSERT_TRUE(db_->CreateTable("single_edge", &t).ok());
  {
    auto w = db_->Begin();
    ASSERT_TRUE(w->Put(t, "a", "1").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto reader = Begin(IsolationLevel::kSerializable);
  auto writer = Begin(IsolationLevel::kSerializable);
  std::string v;
  ASSERT_TRUE(reader->Get(t, "a", &v).ok());
  ASSERT_TRUE(writer->Put(t, "a", "2").ok());
  EXPECT_TRUE(writer->Commit().ok());
  EXPECT_TRUE(reader->Commit().ok());
}

}  // namespace
}  // namespace pgssi
