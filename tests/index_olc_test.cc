// OLC index-path regressions: empty-leaf recycling under insert/abort
// storms, forced-restart cleanup on the guarded insert path (no
// double-acquired gap coverage, no leaked recycled chains), and a
// fanout-4 insert storm with concurrent serializable scanners, run in
// BOTH index_olc modes (the same-binary A/B).
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "db/transaction_handle.h"

namespace pgssi {
namespace {

DatabaseOptions SmallTree(uint32_t olc,
                          IndexGapLocking gap = IndexGapLocking::kPage,
                          uint32_t epoch_reclaim = 1) {
  DatabaseOptions o;
  o.engine.btree_fanout = 4;  // force deep splits on a handful of keys
  o.engine.index_olc = olc;
  o.engine.index_gap_locking = gap;
  o.engine.epoch_reclaim = epoch_reclaim;
  return o;
}

std::string Key(const char* prefix, int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%05d", prefix, i);
  return buf;
}

TxnOptions Serializable() {
  TxnOptions t;
  t.isolation = IsolationLevel::kSerializable;
  return t;
}

// Satellite: BTree::Erase recycles fully-empty leaves. An insert/abort
// storm must not grow the leaf chain without bound — every aborted
// batch's leaves are unlinked once their entries are GC'd.
TEST(IndexOlcTest, LeafCountBoundedUnderInsertAbortStorm) {
  for (uint32_t olc : {0u, 1u})
  for (uint32_t epoch : {0u, 1u}) {
    SCOPED_TRACE("index_olc=" + std::to_string(olc) +
                 " epoch_reclaim=" + std::to_string(epoch));
    auto db = Database::Open(SmallTree(olc, IndexGapLocking::kPage, epoch));
    TableId t;
    ASSERT_TRUE(db->CreateTable("s", &t).ok());
    {
      auto txn = db->Begin(Serializable());
      for (int i = 0; i < 8; i++) {
        ASSERT_TRUE(txn->Insert(t, Key("base", i), "v").ok());
      }
      ASSERT_TRUE(txn->Commit().ok());
    }
    const size_t base_leaves = db->IndexLeafCount(t);
    for (int round = 0; round < 50; round++) {
      auto txn = db->Begin(Serializable());
      for (int i = 0; i < 20; i++) {
        ASSERT_TRUE(txn->Insert(t, Key("storm", i), "v").ok());
      }
      ASSERT_TRUE(txn->Abort().ok());  // rolls back + drains index GC
    }
    EXPECT_EQ(db->IndexEntryCount(t), 8u);
    EXPECT_EQ(db->LiveTupleChainCount(t), 8u);
    // Without recycling the chain would hold hundreds of empty leaves
    // (50 rounds x ~7 leaves of storm keys each).
    EXPECT_LE(db->IndexLeafCount(t), base_leaves + 2);
    EXPECT_TRUE(db->CheckSsiLockConsistency());
    if (epoch != 0) {
      // The storm's erased entries and recycled leaves went through the
      // limbo; once quiesced they are actually freed, not retained.
      db->QuiesceEpochs();
      EXPECT_EQ(db->EpochRetiredObjectCount(), 0u);
      EXPECT_GT(db->EpochFreedObjectCount(), 0u);
    }
  }
}

// Satellite: audit of the OLC restart path. A forced restart runs the
// gap probe again on the retry; the failed attempt must release its
// leaf locks (or this test hangs), must not double-install gap
// coverage, and must not leak a recycled chain. The control run (no
// forced restarts) pins the expected SIREAD lock counts; the forced run
// must match them exactly.
TEST(IndexOlcTest, ForcedRestartLeavesNoExtraCoverageOrChains) {
  for (auto gap : {IndexGapLocking::kPage, IndexGapLocking::kNextKey}) {
    SCOPED_TRACE(gap == IndexGapLocking::kPage ? "page" : "next-key");
    size_t counts[2][2];  // [forced][tuple/page locks]
    for (int forced = 0; forced < 2; forced++) {
      auto db = Database::Open(SmallTree(/*olc=*/1, gap));
      TableId t;
      ASSERT_TRUE(db->CreateTable("s", &t).ok());
      {
        auto setup = db->Begin(Serializable());
        for (int i = 0; i < 6; i++) {
          ASSERT_TRUE(setup->Insert(t, Key("k", 2 * i), "v").ok());
        }
        ASSERT_TRUE(setup->Commit().ok());
      }
      // Reader scans the whole range and STAYS OPEN, so its gap
      // coverage must survive the writer's insert.
      auto reader = db->Begin(Serializable());
      std::vector<std::pair<std::string, std::string>> rows;
      ASSERT_TRUE(reader->Scan(t, Key("k", 0), Key("k", 99), &rows).ok());
      ASSERT_EQ(rows.size(), 6u);

      if (forced) db->TestForceIndexInsertRestarts(t, 2);
      auto writer = db->Begin(Serializable());
      ASSERT_TRUE(writer->Insert(t, Key("k", 5), "w").ok());
      // A single rw edge (reader -rw-> writer) is not a dangerous
      // structure: the commit must succeed, restarts or not.
      ASSERT_TRUE(writer->Commit().ok());
      counts[forced][0] = db->SireadTupleLockCount();
      counts[forced][1] = db->SireadPageLockCount();
      EXPECT_TRUE(db->CheckSsiLockConsistency());

      // Leaked-chain audit: force restarts again, insert a fresh key,
      // abort, and make sure the chain is recycled (re-insert of the
      // same key commits and live-chain count returns to the pre-abort
      // value + 1).
      const size_t live_before = db->LiveTupleChainCount(t);
      if (forced) db->TestForceIndexInsertRestarts(t, 2);
      {
        auto ab = db->Begin(Serializable());
        ASSERT_TRUE(ab->Insert(t, Key("q", 1), "x").ok());
        ASSERT_TRUE(ab->Abort().ok());
      }
      EXPECT_EQ(db->LiveTupleChainCount(t), live_before);
      {
        auto re = db->Begin(Serializable());
        ASSERT_TRUE(re->Insert(t, Key("q", 1), "y").ok());
        ASSERT_TRUE(re->Commit().ok());
      }
      std::string v;
      auto chk = db->Begin(Serializable());
      ASSERT_TRUE(chk->Get(t, Key("q", 1), &v).ok());
      EXPECT_EQ(v, "y");
      ASSERT_TRUE(chk->Commit().ok());
      EXPECT_EQ(db->LiveTupleChainCount(t), live_before + 1);
      ASSERT_TRUE(reader->Abort().ok());
    }
    // No double-acquired gap coverage: the forced-restart run must end
    // with exactly the control run's lock-table footprint.
    EXPECT_EQ(counts[1][0], counts[0][0]);
    EXPECT_EQ(counts[1][1], counts[0][1]);
  }
}

// Tentpole stress: 8-thread insert storm (with periodic aborts) plus
// concurrent serializable scanners across constant leaf splits at
// fanout 4, in both index_olc modes. Each committed transaction inserts
// exactly 3 keys, so every scan must observe a multiple of 3 (snapshot
// atomicity); the final state must be exactly the committed key set
// with a consistent SIREAD lock table.
TEST(IndexOlcTest, InsertStormWithConcurrentScanners) {
  constexpr int kWriters = 8;
  constexpr int kScanners = 2;
  constexpr int kTxnsPerWriter = 30;
  for (uint32_t olc : {0u, 1u}) {
    SCOPED_TRACE("index_olc=" + std::to_string(olc));
    auto db = Database::Open(SmallTree(olc));
    TableId t;
    ASSERT_TRUE(db->CreateTable("s", &t).ok());
    std::atomic<bool> stop{false};
    std::atomic<int> committed_txns{0};
    std::atomic<int> atomicity_violations{0};

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; w++) {
      writers.emplace_back([&, w] {
        for (int i = 0; i < kTxnsPerWriter; i++) {
          auto txn = db->Begin(Serializable());
          bool ok = true;
          for (int k = 0; k < 3 && ok; k++) {
            ok = txn->Insert(t, Key("w", (w * kTxnsPerWriter + i) * 3 + k),
                             "v")
                     .ok();
          }
          if (!ok || i % 3 == 2) {
            txn->Abort();
            continue;
          }
          if (txn->Commit().ok()) committed_txns.fetch_add(1);
        }
      });
    }
    std::vector<std::thread> scanners;
    for (int s = 0; s < kScanners; s++) {
      scanners.emplace_back([&] {
        while (!stop.load(std::memory_order_acquire)) {
          TxnOptions ro = Serializable();
          ro.read_only = true;
          auto txn = db->Begin(ro);
          uint64_t n = 0;
          if (txn->Count(t, Key("w", 0), Key("w", 99999), &n).ok()) {
            if (n % 3 != 0) atomicity_violations.fetch_add(1);
            txn->Commit();
          }
        }
      });
    }
    for (auto& th : writers) th.join();
    stop.store(true, std::memory_order_release);
    for (auto& th : scanners) th.join();

    // Drain any re-enqueued GC records, then verify the final image.
    for (int i = 0; i < 2; i++) {
      auto txn = db->Begin(Serializable());
      ASSERT_TRUE(txn->Commit().ok());
    }
    EXPECT_EQ(atomicity_violations.load(), 0);
    const size_t expect = static_cast<size_t>(committed_txns.load()) * 3;
    uint64_t n = 0;
    auto txn = db->Begin(Serializable());
    ASSERT_TRUE(txn->Count(t, Key("w", 0), Key("w", 99999), &n).ok());
    ASSERT_TRUE(txn->Commit().ok());
    EXPECT_EQ(n, expect);
    EXPECT_EQ(db->IndexEntryCount(t), expect);
    EXPECT_EQ(db->LiveTupleChainCount(t), expect);
    EXPECT_TRUE(db->CheckSsiLockConsistency());
    // Epoch reclamation (on by default here): after the storm quiesces,
    // nothing may linger in the limbo.
    db->QuiesceEpochs();
    EXPECT_EQ(db->EpochRetiredObjectCount(), 0u);
  }
}

}  // namespace
}  // namespace pgssi
