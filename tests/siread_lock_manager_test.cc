// SIREAD lock manager unit tests: multi-granularity promotion thresholds,
// probe hit/miss, page-split lock transfer, and commit-cleanup release.
#include <gtest/gtest.h>

#include <algorithm>

#include "ssi/siread_lock_manager.h"

namespace pgssi::ssi {
namespace {

bool Holds(const ProbeResult& r, XactId x) {
  return std::find(r.holder_xids.begin(), r.holder_xids.end(), x) !=
         r.holder_xids.end();
}

TEST(SireadLockManagerTest, ProbeHitAndMiss) {
  EngineConfig cfg;
  SireadLockManager mgr(cfg);
  SerializableXact x;
  x.xid = 7;
  mgr.AcquireTuple(&x, 1, 10, 3);

  EXPECT_TRUE(Holds(mgr.ProbeHeapWrite(1, 10, 3), 7));
  EXPECT_FALSE(Holds(mgr.ProbeHeapWrite(1, 10, 4), 7));   // other slot
  EXPECT_FALSE(Holds(mgr.ProbeHeapWrite(1, 11, 3), 7));   // other page
  EXPECT_FALSE(Holds(mgr.ProbeHeapWrite(2, 10, 3), 7));   // other relation
  EXPECT_TRUE(mgr.HoldsTupleLock(&x, 1, 10, 3));
  EXPECT_FALSE(mgr.HoldsPageLock(&x, 1, 10));
}

TEST(SireadLockManagerTest, AcquireIsIdempotent) {
  EngineConfig cfg;
  cfg.max_locks_per_page = 3;
  SireadLockManager mgr(cfg);
  SerializableXact x;
  x.xid = 1;
  for (int i = 0; i < 10; i++) mgr.AcquireTuple(&x, 1, 5, 2);
  EXPECT_EQ(mgr.TupleLockCount(), 1u);  // re-acquiring never promotes
  EXPECT_FALSE(mgr.HoldsPageLock(&x, 1, 5));
}

TEST(SireadLockManagerTest, TupleToPagePromotionAtThreshold) {
  EngineConfig cfg;
  cfg.max_locks_per_page = 3;
  cfg.max_pages_per_relation = 100;
  SireadLockManager mgr(cfg);
  SerializableXact x;
  x.xid = 9;

  mgr.AcquireTuple(&x, 1, 20, 0);
  mgr.AcquireTuple(&x, 1, 20, 1);
  mgr.AcquireTuple(&x, 1, 20, 2);
  EXPECT_EQ(mgr.TupleLockCount(), 3u);
  EXPECT_FALSE(mgr.HoldsPageLock(&x, 1, 20));
  EXPECT_EQ(mgr.page_promotions(), 0u);

  // The (threshold+1)-th tuple lock on the page escalates.
  mgr.AcquireTuple(&x, 1, 20, 3);
  EXPECT_TRUE(mgr.HoldsPageLock(&x, 1, 20));
  EXPECT_EQ(mgr.TupleLockCount(), 0u);  // tuple locks replaced
  EXPECT_EQ(mgr.page_promotions(), 1u);

  // The page lock still answers probes for any slot on the page,
  // including slots never individually locked.
  EXPECT_TRUE(Holds(mgr.ProbeHeapWrite(1, 20, 0), 9));
  EXPECT_TRUE(Holds(mgr.ProbeHeapWrite(1, 20, 77), 9));
  EXPECT_FALSE(Holds(mgr.ProbeHeapWrite(1, 21, 0), 9));
}

TEST(SireadLockManagerTest, PageToRelationPromotionAtThreshold) {
  EngineConfig cfg;
  cfg.max_locks_per_page = 1;
  cfg.max_pages_per_relation = 2;
  SireadLockManager mgr(cfg);
  SerializableXact x;
  x.xid = 5;

  // Two tuple locks per page promote each page; the third page lock
  // promotes to the relation.
  for (PageId p = 1; p <= 3; p++) {
    mgr.AcquireTuple(&x, 4, p, 0);
    mgr.AcquireTuple(&x, 4, p, 1);
  }
  EXPECT_TRUE(mgr.HoldsRelationLock(&x, 4));
  EXPECT_EQ(mgr.PageLockCount(), 0u);
  EXPECT_EQ(mgr.TupleLockCount(), 0u);
  EXPECT_GE(mgr.relation_promotions(), 1u);

  // Relation lock covers every page/slot of the relation.
  EXPECT_TRUE(Holds(mgr.ProbeHeapWrite(4, 999, 42), 5));
  EXPECT_FALSE(Holds(mgr.ProbeHeapWrite(5, 999, 42), 5));
}

TEST(SireadLockManagerTest, PageSplitTransfersLocks) {
  EngineConfig cfg;
  SireadLockManager mgr(cfg);
  SerializableXact reader;
  reader.xid = 11;
  mgr.AcquireTuple(&reader, 1, /*page=*/1, /*slot=*/5);
  SerializableXact pager;
  pager.xid = 12;
  mgr.AcquirePage(&pager, 1, 1);

  // Leaf 1 splits; slot 5 moves to the new leaf 2.
  mgr.OnPageSplit(1, /*old_page=*/1, /*new_page=*/2, {5});

  EXPECT_TRUE(Holds(mgr.ProbeHeapWrite(1, 2, 5), 11));   // tuple lock moved
  EXPECT_TRUE(Holds(mgr.ProbeHeapWrite(1, 2, 9), 12));   // page lock duplicated
  // The tuple lock moved with its entry — not duplicated — so the old
  // granule no longer answers for the reader, and bookkeeping stays in
  // sync with tuple_locks_ (release after the split frees everything).
  EXPECT_FALSE(Holds(mgr.ProbeHeapWrite(1, 1, 5), 11));
  EXPECT_TRUE(Holds(mgr.ProbeHeapWrite(1, 1, 5), 12));   // old page lock kept
  EXPECT_EQ(mgr.TupleLockCount(), 1u);
  EXPECT_TRUE(mgr.HoldsTupleLock(&reader, 1, 2, 5));
  EXPECT_FALSE(mgr.HoldsTupleLock(&reader, 1, 1, 5));
}

TEST(SireadLockManagerTest, AbortReleasesEverything) {
  EngineConfig cfg;
  SireadLockManager mgr(cfg);
  SerializableXact* x = mgr.Register(21, 0, false);
  mgr.AcquireTuple(x, 1, 1, 1);
  mgr.AcquirePage(x, 1, 2);
  mgr.AcquireRelation(x, 3);
  EXPECT_EQ(mgr.RegisteredCount(), 1u);

  mgr.Abort(x);  // frees x
  EXPECT_EQ(mgr.RegisteredCount(), 0u);
  EXPECT_EQ(mgr.TupleLockCount(), 0u);
  EXPECT_EQ(mgr.PageLockCount(), 0u);
  EXPECT_EQ(mgr.RelationLockCount(), 0u);
  EXPECT_TRUE(mgr.ProbeHeapWrite(1, 1, 1).holder_xids.empty());
}

TEST(SireadLockManagerTest, SireadLocksSurviveCommitUntilCleanup) {
  EngineConfig cfg;
  SireadLockManager mgr(cfg);
  SerializableXact* x = mgr.Register(31, /*snapshot_seq=*/10, false);
  mgr.AcquireTuple(x, 1, 7, 0);

  mgr.MarkCommitted(x, /*commit_seq=*/12);
  // Still held: a transaction concurrent with x (snapshot 11 < 12) exists.
  EXPECT_TRUE(Holds(mgr.ProbeHeapWrite(1, 7, 0), 31));
  mgr.Cleanup(/*oldest_active_snapshot_seq=*/11);
  EXPECT_TRUE(Holds(mgr.ProbeHeapWrite(1, 7, 0), 31));
  EXPECT_EQ(mgr.RegisteredCount(), 1u);

  // Once every concurrent transaction is gone, cleanup frees the xact and
  // its SIREAD locks.
  mgr.Cleanup(/*oldest_active_snapshot_seq=*/12);
  EXPECT_EQ(mgr.RegisteredCount(), 0u);
  EXPECT_TRUE(mgr.ProbeHeapWrite(1, 7, 0).holder_xids.empty());
}

// Regression: the Cleanup early-out hint must advance once the xact
// holding the floor commit seq retires, or it stays at the all-time low
// forever and the early-out never fires again (and, inverted, a hint
// that failed to track survivors could wrongly skip reclaiming them).
// Fails if Cleanup's exact recompute over survivors is removed.
TEST(SireadLockManagerTest, CleanupAdvancesMinCommittedFloorWhenFloorRetires) {
  EngineConfig cfg;
  SireadLockManager mgr(cfg);
  SerializableXact* floor_xact = mgr.Register(1, 0, false);
  SerializableXact* survivor = mgr.Register(2, 0, false);
  mgr.AcquireTuple(survivor, 1, 1, 1);
  mgr.MarkCommitted(floor_xact, 1);
  mgr.MarkCommitted(survivor, 5);
  EXPECT_EQ(mgr.min_committed_seq_hint(), 1u);

  mgr.Cleanup(/*oldest_active_snapshot_seq=*/1);  // frees only the floor
  EXPECT_EQ(mgr.RegisteredCount(), 1u);
  EXPECT_EQ(mgr.min_committed_seq_hint(), 5u);

  // ... so a later cleanup past the survivor's seq actually reclaims it.
  mgr.Cleanup(/*oldest_active_snapshot_seq=*/5);
  EXPECT_EQ(mgr.RegisteredCount(), 0u);
  EXPECT_EQ(mgr.TupleLockCount(), 0u);
  EXPECT_EQ(mgr.min_committed_seq_hint(), kNoStickySeq);  // nothing live
}

// Regression: "no sticky out-partner" must not be encoded as commit seq
// 0 — that conflates the empty state with a partner that committed at
// sequence number 0, silently passing a dangerous pivot. White-box: the
// xact carries the summary state Cleanup leaves behind after freeing
// both partners of a pivot.
TEST(SireadLockManagerTest, StickySeqZeroIsNotTheEmptySentinel) {
  EngineConfig cfg;
  SireadLockManager mgr(cfg);
  SerializableXact pivot;
  pivot.xid = 1;
  pivot.sticky_in = true;             // cleaned-up in-partner
  pivot.sticky_out = true;            // cleaned-up out-partner...
  pivot.sticky_out_commit_seq = 0;    // ...that committed at seq 0
  EXPECT_FALSE(mgr.PreCommit(&pivot).ok());  // dangerous structure

  // The default (sentinel) state never manufactures danger.
  SerializableXact clean;
  clean.xid = 2;
  clean.sticky_in = true;  // in-flag alone is not dangerous
  EXPECT_EQ(clean.sticky_out_commit_seq, kNoStickySeq);
  EXPECT_TRUE(mgr.PreCommit(&clean).ok());
}

// ROADMAP PR 3 item: gap transfers must not grow a long-lived scanner's
// bookkeeping without bound. Repeated transfers onto one page escalate
// to a single page lock at the same threshold AcquireTuple uses, and
// doomed holders are not copied at all (they can never commit).
TEST(SireadLockManagerTest, GapTransferEscalatesAndSkipsDoomed) {
  EngineConfig cfg;
  cfg.max_locks_per_page = 4;
  SireadLockManager mgr(cfg);
  SerializableXact scanner;
  scanner.xid = 1;
  mgr.AcquireTuple(&scanner, 1, /*page=*/1, /*slot=*/0);
  // 20 gap-splitting inserts, each transferring the scanner's coverage
  // from the previous next-key granule onto the new entry.
  for (uint32_t s = 1; s <= 20; s++) {
    mgr.OnGapTransfer(1, /*from_page=*/1, /*from_slot=*/s - 1,
                      /*to_page=*/1, /*to_slot=*/s);
  }
  // Unbounded copying would leave ~21 tuple locks; the escalation caps
  // the page's tuple locks at the threshold and installs one page lock.
  EXPECT_TRUE(mgr.HoldsPageLock(&scanner, 1, 1));
  EXPECT_LE(mgr.TupleLockCount(), 4u);

  SerializableXact doomed_reader;
  doomed_reader.xid = 2;
  mgr.AcquireTuple(&doomed_reader, 1, /*page=*/7, /*slot=*/0);
  doomed_reader.doomed.store(true);
  mgr.OnGapTransfer(1, 7, 0, 7, 1);
  EXPECT_FALSE(mgr.HoldsTupleLock(&doomed_reader, 1, 7, 1));
}

TEST(SireadLockManagerTest, WriteSupersedesSireadRelease) {
  EngineConfig cfg;
  SireadLockManager mgr(cfg);
  SerializableXact x;
  x.xid = 41;
  mgr.AcquireTuple(&x, 1, 3, 4);
  EXPECT_TRUE(Holds(mgr.ProbeHeapWrite(1, 3, 4), 41));
  mgr.ReleaseOwnTuple(&x, 1, 3, 4);
  EXPECT_FALSE(Holds(mgr.ProbeHeapWrite(1, 3, 4), 41));
  // Releasing a non-held granule is a no-op.
  mgr.ReleaseOwnTuple(&x, 1, 3, 4);
}

}  // namespace
}  // namespace pgssi::ssi
