// SIREAD lock manager unit tests: multi-granularity promotion thresholds,
// probe hit/miss, page-split lock transfer, and commit-cleanup release.
#include <gtest/gtest.h>

#include <algorithm>

#include "ssi/siread_lock_manager.h"

namespace pgssi::ssi {
namespace {

bool Holds(const ProbeResult& r, XactId x) {
  return std::find(r.holder_xids.begin(), r.holder_xids.end(), x) !=
         r.holder_xids.end();
}

TEST(SireadLockManagerTest, ProbeHitAndMiss) {
  EngineConfig cfg;
  SireadLockManager mgr(cfg);
  SerializableXact x;
  x.xid = 7;
  mgr.AcquireTuple(&x, 1, 10, 3);

  EXPECT_TRUE(Holds(mgr.ProbeHeapWrite(1, 10, 3), 7));
  EXPECT_FALSE(Holds(mgr.ProbeHeapWrite(1, 10, 4), 7));   // other slot
  EXPECT_FALSE(Holds(mgr.ProbeHeapWrite(1, 11, 3), 7));   // other page
  EXPECT_FALSE(Holds(mgr.ProbeHeapWrite(2, 10, 3), 7));   // other relation
  EXPECT_TRUE(mgr.HoldsTupleLock(&x, 1, 10, 3));
  EXPECT_FALSE(mgr.HoldsPageLock(&x, 1, 10));
}

TEST(SireadLockManagerTest, AcquireIsIdempotent) {
  EngineConfig cfg;
  cfg.max_locks_per_page = 3;
  SireadLockManager mgr(cfg);
  SerializableXact x;
  x.xid = 1;
  for (int i = 0; i < 10; i++) mgr.AcquireTuple(&x, 1, 5, 2);
  EXPECT_EQ(mgr.TupleLockCount(), 1u);  // re-acquiring never promotes
  EXPECT_FALSE(mgr.HoldsPageLock(&x, 1, 5));
}

TEST(SireadLockManagerTest, TupleToPagePromotionAtThreshold) {
  EngineConfig cfg;
  cfg.max_locks_per_page = 3;
  cfg.max_pages_per_relation = 100;
  SireadLockManager mgr(cfg);
  SerializableXact x;
  x.xid = 9;

  mgr.AcquireTuple(&x, 1, 20, 0);
  mgr.AcquireTuple(&x, 1, 20, 1);
  mgr.AcquireTuple(&x, 1, 20, 2);
  EXPECT_EQ(mgr.TupleLockCount(), 3u);
  EXPECT_FALSE(mgr.HoldsPageLock(&x, 1, 20));
  EXPECT_EQ(mgr.page_promotions(), 0u);

  // The (threshold+1)-th tuple lock on the page escalates.
  mgr.AcquireTuple(&x, 1, 20, 3);
  EXPECT_TRUE(mgr.HoldsPageLock(&x, 1, 20));
  EXPECT_EQ(mgr.TupleLockCount(), 0u);  // tuple locks replaced
  EXPECT_EQ(mgr.page_promotions(), 1u);

  // The page lock still answers probes for any slot on the page,
  // including slots never individually locked.
  EXPECT_TRUE(Holds(mgr.ProbeHeapWrite(1, 20, 0), 9));
  EXPECT_TRUE(Holds(mgr.ProbeHeapWrite(1, 20, 77), 9));
  EXPECT_FALSE(Holds(mgr.ProbeHeapWrite(1, 21, 0), 9));
}

TEST(SireadLockManagerTest, PageToRelationPromotionAtThreshold) {
  EngineConfig cfg;
  cfg.max_locks_per_page = 1;
  cfg.max_pages_per_relation = 2;
  SireadLockManager mgr(cfg);
  SerializableXact x;
  x.xid = 5;

  // Two tuple locks per page promote each page; the third page lock
  // promotes to the relation.
  for (PageId p = 1; p <= 3; p++) {
    mgr.AcquireTuple(&x, 4, p, 0);
    mgr.AcquireTuple(&x, 4, p, 1);
  }
  EXPECT_TRUE(mgr.HoldsRelationLock(&x, 4));
  EXPECT_EQ(mgr.PageLockCount(), 0u);
  EXPECT_EQ(mgr.TupleLockCount(), 0u);
  EXPECT_GE(mgr.relation_promotions(), 1u);

  // Relation lock covers every page/slot of the relation.
  EXPECT_TRUE(Holds(mgr.ProbeHeapWrite(4, 999, 42), 5));
  EXPECT_FALSE(Holds(mgr.ProbeHeapWrite(5, 999, 42), 5));
}

TEST(SireadLockManagerTest, PageSplitTransfersLocks) {
  EngineConfig cfg;
  SireadLockManager mgr(cfg);
  SerializableXact reader;
  reader.xid = 11;
  mgr.AcquireTuple(&reader, 1, /*page=*/1, /*slot=*/5);
  SerializableXact pager;
  pager.xid = 12;
  mgr.AcquirePage(&pager, 1, 1);

  // Leaf 1 splits; slot 5 moves to the new leaf 2.
  mgr.OnPageSplit(1, /*old_page=*/1, /*new_page=*/2, {5});

  EXPECT_TRUE(Holds(mgr.ProbeHeapWrite(1, 2, 5), 11));   // tuple lock moved
  EXPECT_TRUE(Holds(mgr.ProbeHeapWrite(1, 2, 9), 12));   // page lock duplicated
  // The tuple lock moved with its entry — not duplicated — so the old
  // granule no longer answers for the reader, and bookkeeping stays in
  // sync with tuple_locks_ (release after the split frees everything).
  EXPECT_FALSE(Holds(mgr.ProbeHeapWrite(1, 1, 5), 11));
  EXPECT_TRUE(Holds(mgr.ProbeHeapWrite(1, 1, 5), 12));   // old page lock kept
  EXPECT_EQ(mgr.TupleLockCount(), 1u);
  EXPECT_TRUE(mgr.HoldsTupleLock(&reader, 1, 2, 5));
  EXPECT_FALSE(mgr.HoldsTupleLock(&reader, 1, 1, 5));
}

TEST(SireadLockManagerTest, AbortReleasesEverything) {
  EngineConfig cfg;
  SireadLockManager mgr(cfg);
  SerializableXact* x = mgr.Register(21, 0, false);
  mgr.AcquireTuple(x, 1, 1, 1);
  mgr.AcquirePage(x, 1, 2);
  mgr.AcquireRelation(x, 3);
  EXPECT_EQ(mgr.RegisteredCount(), 1u);

  mgr.Abort(x);  // frees x
  EXPECT_EQ(mgr.RegisteredCount(), 0u);
  EXPECT_EQ(mgr.TupleLockCount(), 0u);
  EXPECT_EQ(mgr.PageLockCount(), 0u);
  EXPECT_EQ(mgr.RelationLockCount(), 0u);
  EXPECT_TRUE(mgr.ProbeHeapWrite(1, 1, 1).holder_xids.empty());
}

TEST(SireadLockManagerTest, SireadLocksSurviveCommitUntilCleanup) {
  EngineConfig cfg;
  SireadLockManager mgr(cfg);
  SerializableXact* x = mgr.Register(31, /*snapshot_seq=*/10, false);
  mgr.AcquireTuple(x, 1, 7, 0);

  mgr.MarkCommitted(x, /*commit_seq=*/12);
  // Still held: a transaction concurrent with x (snapshot 11 < 12) exists.
  EXPECT_TRUE(Holds(mgr.ProbeHeapWrite(1, 7, 0), 31));
  mgr.Cleanup(/*oldest_active_snapshot_seq=*/11);
  EXPECT_TRUE(Holds(mgr.ProbeHeapWrite(1, 7, 0), 31));
  EXPECT_EQ(mgr.RegisteredCount(), 1u);

  // Once every concurrent transaction is gone, cleanup frees the xact and
  // its SIREAD locks.
  mgr.Cleanup(/*oldest_active_snapshot_seq=*/12);
  EXPECT_EQ(mgr.RegisteredCount(), 0u);
  EXPECT_TRUE(mgr.ProbeHeapWrite(1, 7, 0).holder_xids.empty());
}

TEST(SireadLockManagerTest, WriteSupersedesSireadRelease) {
  EngineConfig cfg;
  SireadLockManager mgr(cfg);
  SerializableXact x;
  x.xid = 41;
  mgr.AcquireTuple(&x, 1, 3, 4);
  EXPECT_TRUE(Holds(mgr.ProbeHeapWrite(1, 3, 4), 41));
  mgr.ReleaseOwnTuple(&x, 1, 3, 4);
  EXPECT_FALSE(Holds(mgr.ProbeHeapWrite(1, 3, 4), 41));
  // Releasing a non-held granule is a no-op.
  mgr.ReleaseOwnTuple(&x, 1, 3, 4);
}

}  // namespace
}  // namespace pgssi::ssi
