// Network chaos torture harness: probabilistic fault injection at every
// protocol state of the front end (server-side frame tears, stalled
// flushes, dropped connections before/during/after execution, swallowed
// wake callbacks, forced admission refusals; client-side torn writes and
// lost responses), driven by retrying clients running the SIBENCH and
// RUBiS mixes over the wire. The convergence contract after the storm:
// no leaked sessions or row locks, the snapshot horizon fully advanced,
// SIREAD bookkeeping consistent, RUBiS invariants intact, and the
// retrying clients made real forward progress.
//
// Alongside the storm: discriminating regression tests for each parked-
// session deadline (lock-wait timeout over the wire, commit-gate timeout
// under a stalled fsync), idle-in-transaction reaping, half-open
// connection detection via EPOLLRDHUP while reads are paused, the
// ack-loss window when a connection dies between a committed TryCommit
// and its response flush, and a no-retries run proving the faults
// actually inject.
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "util/failpoint.h"
#include "workload/driver.h"
#include "workload/rubis.h"
#include "workload/sibench.h"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PGSSI_CHAOS_SECS 1.0
#else
#define PGSSI_CHAOS_SECS 2.0
#endif

namespace pgssi {
namespace {

namespace fs = std::filesystem;
using net::Op;
using net::Request;
using net::Server;
using net::ServerOptions;
using net::WireClient;
using net::WireDbClient;
using util::FailpointAction;

// Every chaos site in the stack. ChaosConvergence arms them all and
// asserts that at least 8 distinct sites actually fired.
const char* kChaosSites[] = {
    "net_accept_refuse",    "net_read_err",        "net_write_short",
    "net_flush_stall",      "net_drop_before_exec", "net_drop_parked",
    "net_drop_after_commit", "net_wake_delay",      "wireclient_write_err",
    "wireclient_torn_write", "wireclient_read_err",
};

// Failpoints are process-global and fired_ counters survive disarm, so
// every test snapshots baselines and works in deltas; the guard makes
// sure no armed point leaks into the next test.
struct FailpointGuard {
  FailpointGuard() { util::FailpointClearAll(); }
  ~FailpointGuard() { util::FailpointClearAll(); }
};

struct ServerFixture {
  explicit ServerFixture(ServerOptions so = {},
                         DatabaseOptions dbo = DatabaseOptions{}) {
    db = Database::Open(dbo);
    server = std::make_unique<Server>(db.get(), so);
    Status st = server->Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  ~ServerFixture() {
    server->Stop();
    server.reset();
    db.reset();
  }
  uint16_t port() const { return server->port(); }

  std::unique_ptr<Database> db;
  std::unique_ptr<Server> server;
};

::testing::AssertionResult ConvergedClean(Database* db,
                                          int timeout_ms = 10000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (db->OldestActiveSnapshot() == UINT64_MAX && db->RowLockCount() == 0) {
      return ::testing::AssertionSuccess();
    }
    if (std::chrono::steady_clock::now() > deadline) {
      return ::testing::AssertionFailure()
             << "sessions/locks leaked after the storm: oldest="
             << db->OldestActiveSnapshot()
             << " row_locks=" << db->RowLockCount();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

int RawConnect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

void SendAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t w = ::write(fd, bytes.data() + off, bytes.size() - off);
    ASSERT_GT(w, 0);
    off += static_cast<size_t>(w);
  }
}

bool ReadFrame(int fd, uint8_t* code, std::string* payload) {
  char lenbuf[4];
  size_t got = 0;
  while (got < 4) {
    ssize_t r = ::read(fd, lenbuf + got, 4 - got);
    if (r <= 0) return false;
    got += static_cast<size_t>(r);
  }
  uint32_t len = 0;
  std::memcpy(&len, lenbuf, 4);
  if (len == 0 || len > net::kMaxFrameBytes) return false;
  std::string body(len, '\0');
  got = 0;
  while (got < len) {
    ssize_t r = ::read(fd, body.data() + got, len - got);
    if (r <= 0) return false;
    got += static_cast<size_t>(r);
  }
  *code = static_cast<uint8_t>(body[0]);
  *payload = body.substr(1);
  return true;
}

// ----- the storm -----

TEST(NetChaosTest, ChaosConvergence) {
  FailpointGuard guard;
  ServerOptions so;
  so.workers = 2;
  so.max_sessions = 64;
  ServerFixture f(so);

  // Load both workloads over the wire before the faults start; the
  // Begin-level retry policy also heals mid-run connection kills.
  net::WireRetryPolicy wire_retry;
  wire_retry.max_attempts = 12;
  WireDbClient sib_client("127.0.0.1", f.port(), wire_retry);
  workload::Sibench sibench(&sib_client, 16);  // small table: real contention
  ASSERT_TRUE(sibench.Load().ok());

  WireDbClient rubis_client("127.0.0.1", f.port(), wire_retry);
  workload::RubisConfig rcfg;
  rcfg.items = 16;
  workload::Rubis rubis(&rubis_client, rcfg);
  ASSERT_TRUE(rubis.Load().ok());

  uint64_t baseline[std::size(kChaosSites)];
  for (size_t i = 0; i < std::size(kChaosSites); i++) {
    baseline[i] = util::FailpointFireCount(kChaosSites[i]);
  }
  const uint64_t accepted_before = f.server->stats().accepted;

  // Arm everything probabilistically. Rates are chosen so the storm is
  // violent (hundreds of fires) but clients still make progress.
  util::FailpointArmChance("net_accept_refuse", FailpointAction::kErr, 30);
  util::FailpointArmChance("net_read_err", FailpointAction::kErr, 5);
  util::FailpointArmChance("net_write_short", FailpointAction::kErr, 80);
  util::FailpointArmChance("net_flush_stall", FailpointAction::kErr, 40);
  util::FailpointArmChance("net_drop_before_exec", FailpointAction::kErr, 8);
  util::FailpointArmChance("net_drop_parked", FailpointAction::kErr, 60);
  util::FailpointArmChance("net_drop_after_commit", FailpointAction::kErr, 8);
  util::FailpointArmChance("net_wake_delay", FailpointAction::kErr, 120);
  util::FailpointArmChance("wireclient_write_err", FailpointAction::kErr, 6);
  util::FailpointArmChance("wireclient_torn_write", FailpointAction::kErr, 6);
  util::FailpointArmChance("wireclient_read_err", FailpointAction::kErr, 6);

  workload::RetryPolicy retry;
  retry.max_attempts = 10;
  retry.retry_io_errors = true;  // chaos makes transport errors routine
  workload::DriverResult r = workload::RunFixedDurationClassed(
      [&](int i, Random& rng, int* cls) {
        *cls = -1;
        // Even threads hammer SIBENCH, odd threads run the RUBiS mix —
        // both serializable over the wire.
        if (i % 2 == 0) {
          return sibench.RunMixed(rng, IsolationLevel::kSerializable);
        }
        return rubis.RunOne(rng, nullptr);
      },
      {}, 8, PGSSI_CHAOS_SECS, retry);

  util::FailpointClearAll();

  // Forward progress despite the storm.
  EXPECT_GT(r.committed, 50u) << "retrying clients must complete work";
  EXPECT_GT(r.retries, 0u);

  // The storm was real: enough distinct sites fired, across enough
  // connection lifetimes.
  int distinct = 0;
  uint64_t total_fires = 0;
  for (size_t i = 0; i < std::size(kChaosSites); i++) {
    const uint64_t fires = util::FailpointFireCount(kChaosSites[i]) -
                           baseline[i];
    if (fires > 0) distinct++;
    total_fires += fires;
    if (fires == 0) {
      ADD_FAILURE() << "site never fired: " << kChaosSites[i]
                    << " (informational — ≥8 distinct is the contract)";
    }
  }
  EXPECT_GE(distinct, 8) << "chaos must exercise ≥8 distinct fault sites";
  EXPECT_GT(total_fires, 0u);
  EXPECT_GE(f.server->stats().faults_injected, 1u);
  EXPECT_GE(f.server->stats().accepted - accepted_before, 100u)
      << "storm must span ≥100 connection lifetimes";

  // Convergence: every broken session reaped, nothing pinned or locked.
  EXPECT_TRUE(ConvergedClean(f.db.get()));
  EXPECT_TRUE(f.db->CheckSsiLockConsistency());

  // RUBiS invariants survived the storm (checked over a healed wire).
  bool ok = false;
  ASSERT_TRUE(rubis.CheckConsistency(&ok).ok());
  EXPECT_TRUE(ok) << "RUBiS closing-price invariant violated under chaos";
}

// Without retrying clients the same faults surface as hard errors — the
// one-shot proof that injection actually happens (CI runs this to guard
// against the chaos harness rotting into a no-op).
TEST(NetChaosTest, ChaosWithoutRetriesSeesFailures) {
  FailpointGuard guard;
  ServerFixture f;
  WireClient setup;
  ASSERT_TRUE(setup.Connect("127.0.0.1", f.port()).ok());
  TableId t = kInvalidTable;
  ASSERT_TRUE(setup.CreateTable("t", &t).ok());

  const uint64_t drops_before =
      util::FailpointFireCount("net_drop_before_exec");
  util::FailpointArmChance("net_drop_before_exec", FailpointAction::kErr, 300);

  int io_errors = 0;
  for (int i = 0; i < 50; i++) {
    WireClient c;
    if (!c.Connect("127.0.0.1", f.port()).ok()) {
      io_errors++;
      continue;
    }
    Status st = c.Begin({.isolation = IsolationLevel::kSerializable});
    if (st.ok()) st = c.Put(t, "k" + std::to_string(i), "v");
    if (st.ok()) st = c.Commit();
    if (st.code() == Code::kIOError) io_errors++;
  }
  util::FailpointClearAll();

  EXPECT_GT(io_errors, 0) << "with retries disabled, faults must be visible";
  EXPECT_GT(util::FailpointFireCount("net_drop_before_exec"), drops_before);
  EXPECT_GE(f.server->stats().faults_injected, 1u);
  EXPECT_TRUE(ConvergedClean(f.db.get()));
}

// ----- parked-session deadlines -----

// A session parked on a first-updater row-lock wait must time out with
// a retryable error that releases its claim — the discriminating
// message is the lock-wait path's own.
TEST(NetChaosTest, ParkedLockWaitTimesOutOverTheWire) {
  FailpointGuard guard;
  DatabaseOptions dbo;
  dbo.engine.lock_wait_timeout_us = 150'000;
  ServerFixture f({}, dbo);
  WireClient setup;
  ASSERT_TRUE(setup.Connect("127.0.0.1", f.port()).ok());
  TableId t = kInvalidTable;
  ASSERT_TRUE(setup.CreateTable("t", &t).ok());
  ASSERT_TRUE(setup.Begin().ok());
  ASSERT_TRUE(setup.Put(t, "k", "0").ok());
  ASSERT_TRUE(setup.Commit().ok());

  WireClient a;
  ASSERT_TRUE(a.Connect("127.0.0.1", f.port()).ok());
  ASSERT_TRUE(a.Begin({.isolation = IsolationLevel::kSerializable}).ok());
  ASSERT_TRUE(a.Put(t, "k", "a").ok());  // holds the row lock

  WireClient b;
  ASSERT_TRUE(b.Connect("127.0.0.1", f.port()).ok());
  ASSERT_TRUE(b.Begin({.isolation = IsolationLevel::kSerializable}).ok());
  const auto t0 = std::chrono::steady_clock::now();
  Status st = b.Put(t, "k", "b");  // parks behind a, then must time out
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  ASSERT_TRUE(st.IsSerializationFailure()) << st.ToString();
  EXPECT_NE(st.ToString().find("lock wait timeout"), std::string::npos)
      << "wrong enforcement path: " << st.ToString();
  EXPECT_GE(elapsed_ms, 100);
  EXPECT_LT(elapsed_ms, 5000);

  // b's claim is gone: a commits untouched, and the world converges.
  ASSERT_TRUE(a.Commit().ok());
  (void)b.Abort();
  EXPECT_TRUE(ConvergedClean(f.db.get()));
}

// A session parked at the WAL commit gate behind a stalled fsync must
// also time out — with the gate's own retryable error — while the
// transaction that OWNS the stalled round keeps waiting (its record is
// already appended; aborting it would be wrong).
TEST(NetChaosTest, CommitGateTimesOutUnderFsyncStall) {
  FailpointGuard guard;
  fs::path dir = fs::path(testing::TempDir()) / "pgssi_net_chaos_gate";
  fs::remove_all(dir);
  fs::create_directories(dir);
  DatabaseOptions dbo;
  dbo.engine.wal_enabled = true;
  dbo.engine.wal_dir = dir.string();
  dbo.engine.wal_fsync = WalFsyncMode::kBatch;
  dbo.engine.lock_wait_timeout_us = 150'000;
  ServerFixture f({}, dbo);
  WireClient setup;
  ASSERT_TRUE(setup.Connect("127.0.0.1", f.port()).ok());
  TableId t = kInvalidTable;
  ASSERT_TRUE(setup.CreateTable("t", &t).ok());

  // Fire counts survive FailpointClear, so poll the delta — not the
  // absolute count — or a repeat run sails past a not-yet-engaged stall.
  const uint64_t stall_base = util::FailpointFireCount("wal_fsync_stall");
  util::FailpointArmChance("wal_fsync_stall", FailpointAction::kErr, 1000);

  // First committer: appends its record, then its fsync round stalls.
  std::atomic<bool> a_done{false};
  Status a_st;
  std::thread first([&] {
    WireClient a;
    ASSERT_TRUE(a.Connect("127.0.0.1", f.port()).ok());
    ASSERT_TRUE(a.Begin({.isolation = IsolationLevel::kSerializable}).ok());
    ASSERT_TRUE(a.Put(t, "a", "1").ok());
    a_st = a.Commit();  // blocks until the stall is lifted
    a_done.store(true);
  });
  // Wait until the stall is actually engaged.
  const auto stall_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (util::FailpointFireCount("wal_fsync_stall") == stall_base) {
    ASSERT_LT(std::chrono::steady_clock::now(), stall_deadline)
        << "fsync stall never engaged";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Second committer: parks at the commit gate (a round is in flight),
  // and the gate deadline must fire rather than waiting forever.
  WireClient b;
  ASSERT_TRUE(b.Connect("127.0.0.1", f.port()).ok());
  ASSERT_TRUE(b.Begin({.isolation = IsolationLevel::kSerializable}).ok());
  ASSERT_TRUE(b.Put(t, "b", "1").ok());
  const auto t0 = std::chrono::steady_clock::now();
  Status st = b.Commit();
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  ASSERT_TRUE(st.IsSerializationFailure()) << st.ToString();
  EXPECT_NE(st.ToString().find("commit gate timeout"), std::string::npos)
      << "wrong enforcement path: " << st.ToString();
  EXPECT_GE(elapsed_ms, 100);
  EXPECT_FALSE(a_done.load()) << "the round owner must keep waiting";

  // Lift the stall: the owner's commit completes durably, and a retry
  // of the gated transaction succeeds.
  util::FailpointClear("wal_fsync_stall");
  first.join();
  EXPECT_TRUE(a_st.ok()) << a_st.ToString();
  ASSERT_TRUE(b.Begin({.isolation = IsolationLevel::kSerializable}).ok());
  ASSERT_TRUE(b.Put(t, "b", "2").ok());
  EXPECT_TRUE(b.Commit().ok());

  EXPECT_TRUE(ConvergedClean(f.db.get()));
  f.server->Stop();
  f.db.reset();
  fs::remove_all(dir);
}

// ----- idle-in-transaction reaping -----

// The PR-8 "slow client pins OldestActiveSnapshot" scenario self-heals
// when idle_in_txn_timeout_us is set: the session is sent a retryable
// error frame and torn down, and the horizon advances.
TEST(NetChaosTest, IdleInTxnSessionIsReaped) {
  FailpointGuard guard;
  DatabaseOptions dbo;
  dbo.engine.idle_in_txn_timeout_us = 100'000;
  ServerFixture f({}, dbo);
  WireClient setup;
  ASSERT_TRUE(setup.Connect("127.0.0.1", f.port()).ok());
  TableId t = kInvalidTable;
  ASSERT_TRUE(setup.CreateTable("t", &t).ok());
  ASSERT_TRUE(setup.Begin().ok());
  ASSERT_TRUE(setup.Put(t, "k", "0").ok());
  ASSERT_TRUE(setup.Commit().ok());

  // Open a txn over a raw socket, read the responses, then go silent.
  int fd = RawConnect(f.port());
  std::string stream = net::EncodeRequest(net::BeginRequest(
      {.isolation = IsolationLevel::kSerializable}));
  Request get;
  get.op = Op::kGet;
  get.table = t;
  get.key = "k";
  stream += net::EncodeRequest(get);
  SendAll(fd, stream);
  uint8_t code;
  std::string payload;
  ASSERT_TRUE(ReadFrame(fd, &code, &payload));  // begin: OK
  ASSERT_EQ(code, static_cast<uint8_t>(Code::kOk));
  ASSERT_TRUE(ReadFrame(fd, &code, &payload));  // get: OK
  ASSERT_EQ(code, static_cast<uint8_t>(Code::kOk));
  ASSERT_NE(f.db->OldestActiveSnapshot(), UINT64_MAX) << "txn must pin";

  // The sweep must notice the idle session and reap it.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (f.server->stats().idle_reaped == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "idle-in-txn session never reaped";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(ConvergedClean(f.db.get()));

  // The client gets a best-effort retryable error frame, then EOF.
  if (ReadFrame(fd, &code, &payload)) {
    EXPECT_EQ(code, static_cast<uint8_t>(Code::kSerializationFailure));
    EXPECT_NE(payload.find("idle-in-transaction timeout"), std::string::npos);
    EXPECT_FALSE(ReadFrame(fd, &code, &payload)) << "connection must close";
  }
  ::close(fd);

  // An ACTIVE slow session (not idle past the timeout) is untouched:
  // the reaper discriminates on inactivity, not transaction age.
  WireClient active;
  ASSERT_TRUE(active.Connect("127.0.0.1", f.port()).ok());
  ASSERT_TRUE(active.Begin({.isolation = IsolationLevel::kSerializable}).ok());
  for (int i = 0; i < 6; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    std::string v;
    ASSERT_TRUE(active.Get(t, "k", &v).ok())
        << "active session must survive " << i;
  }
  ASSERT_TRUE(active.Commit().ok());
}

// ----- half-open detection -----

// A client that vanishes (FIN, no close of our reading side) while its
// session is parked AND its reads are backpressure-paused: EPOLLRDHUP is
// the only signal left, and it must tear the session down.
TEST(NetChaosTest, HalfOpenParkedConnectionDetectedViaRdhup) {
  FailpointGuard guard;
  ServerOptions so;
  so.backpressure_ops = 2;
  ServerFixture f(so);
  WireClient setup;
  ASSERT_TRUE(setup.Connect("127.0.0.1", f.port()).ok());
  TableId t = kInvalidTable;
  ASSERT_TRUE(setup.CreateTable("t", &t).ok());
  ASSERT_TRUE(setup.Begin().ok());
  ASSERT_TRUE(setup.Put(t, "k", "0").ok());
  ASSERT_TRUE(setup.Commit().ok());

  // a holds the row lock.
  WireClient a;
  ASSERT_TRUE(a.Connect("127.0.0.1", f.port()).ok());
  ASSERT_TRUE(a.Begin({.isolation = IsolationLevel::kSerializable}).ok());
  ASSERT_TRUE(a.Put(t, "k", "a").ok());

  // b pipelines begin + a conflicting put + filler: the put parks the
  // session behind a, the queued filler keeps the op queue over the
  // backpressure threshold, so EPOLLIN stays disarmed.
  int fd = RawConnect(f.port());
  std::string burst = net::EncodeRequest(net::BeginRequest(
      {.isolation = IsolationLevel::kSerializable}));
  Request put;
  put.op = Op::kPut;
  put.table = t;
  put.key = "k";
  put.value = "b";
  burst += net::EncodeRequest(put);
  Request filler;
  filler.op = Op::kPing;
  burst += net::EncodeRequest(filler);
  burst += net::EncodeRequest(filler);
  SendAll(fd, burst);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Vanish: write-side FIN only. The server must notice via RDHUP even
  // though EPOLLIN is off, abort the parked session, release the wait.
  ::shutdown(fd, SHUT_WR);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (f.server->stats().rdhup_closes == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "RDHUP never detected on the half-open parked connection";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::close(fd);

  ASSERT_TRUE(a.Commit().ok());
  EXPECT_TRUE(ConvergedClean(f.db.get()));
}

// ----- the ack-loss window -----

// If the connection dies after TryCommit succeeded but before the OK
// response flushes, the client sees a transport error for a transaction
// that COMMITTED. The client-visible contract: an IOError on commit is
// ambiguous; recover by re-reading (or using idempotent inserts), never
// by blind replay.
TEST(NetChaosTest, AckLossOnCommitDropIsAmbiguousButDurable) {
  FailpointGuard guard;
  ServerFixture f;
  WireClient setup;
  ASSERT_TRUE(setup.Connect("127.0.0.1", f.port()).ok());
  TableId t = kInvalidTable;
  ASSERT_TRUE(setup.CreateTable("t", &t).ok());

  WireClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", f.port()).ok());
  ASSERT_TRUE(c.Begin({.isolation = IsolationLevel::kSerializable}).ok());
  ASSERT_TRUE(c.Insert(t, "ack", "1").ok());

  const uint64_t fires_before =
      util::FailpointFireCount("net_drop_after_commit");
  util::FailpointArm("net_drop_after_commit", FailpointAction::kErr, 1);
  Status st = c.Commit();
  util::FailpointClearAll();
  ASSERT_EQ(st.code(), Code::kIOError)
      << "the ack must be lost: " << st.ToString();
  EXPECT_EQ(util::FailpointFireCount("net_drop_after_commit"),
            fires_before + 1);

  // The commit itself landed: a new connection sees the row, and a
  // blind replay of the insert is caught by uniqueness.
  WireClient verify;
  ASSERT_TRUE(verify.Connect("127.0.0.1", f.port()).ok());
  ASSERT_TRUE(verify.Begin({.isolation = IsolationLevel::kSerializable}).ok());
  std::string v;
  ASSERT_TRUE(verify.Get(t, "ack", &v).ok())
      << "commit executed before the drop; the write must be visible";
  EXPECT_EQ(v, "1");
  EXPECT_EQ(verify.Insert(t, "ack", "replayed").code(), Code::kAlreadyExists)
      << "idempotent-insert recovery must detect the prior commit";
  (void)verify.Abort();
  EXPECT_TRUE(ConvergedClean(f.db.get()));
}

}  // namespace
}  // namespace pgssi
