// Satellite coverage: (a) the Section 4 read-only snapshot optimization —
// a declared read-only transaction neither causes nor suffers SSI aborts
// it shouldn't, and DEFERRABLE transactions get safe snapshots; (b) the
// S2PL serializable implementation — conflicting writers block and then
// proceed instead of aborting, and genuine deadlocks pick one victim.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "db/transaction_handle.h"

namespace pgssi {
namespace {

// ---------------------------------------------------------------------------
// Read-only optimization
// ---------------------------------------------------------------------------

// The three-txn scenario where a read-only reader R is harmless: W is a
// pivot-looking transaction (in-edge from R, out-edge to committed V) but
// V commits AFTER R's snapshot, so per Section 4 the structure cannot
// hurt a read-only R and nobody needs to abort.
// Returns W's commit status.
Status RunReadOnlyScenario(bool read_only_opt, bool declare_read_only) {
  DatabaseOptions opts;
  opts.engine.enable_read_only_opt = read_only_opt;
  auto db = Database::Open(opts);
  TableId t;
  EXPECT_TRUE(db->CreateTable("t", &t).ok());
  {
    auto w = db->Begin();
    EXPECT_TRUE(w->Put(t, "x", "1").ok());
    EXPECT_TRUE(w->Put(t, "y", "1").ok());
    EXPECT_TRUE(w->Commit().ok());
  }
  auto W = db->Begin({.isolation = IsolationLevel::kSerializable});
  auto R = db->Begin({.isolation = IsolationLevel::kSerializable,
                      .read_only = declare_read_only});
  std::string v;
  EXPECT_TRUE(W->Get(t, "y", &v).ok());  // W reads y...

  auto V = db->Begin({.isolation = IsolationLevel::kSerializable});
  EXPECT_TRUE(V->Put(t, "y", "2").ok());  // ...V overwrites it (W -rw-> V)
  EXPECT_TRUE(V->Commit().ok());          // V commits after R's snapshot

  EXPECT_TRUE(W->Put(t, "x", "9").ok());  // W writes x
  EXPECT_TRUE(R->Get(t, "x", &v).ok());   // R reads x  (R -rw-> W)
  EXPECT_TRUE(R->Commit().ok());
  return W->Commit();
}

TEST(ReadOnlyOptTest, DeclaredReadOnlyReaderCausesNoFalseAbort) {
  // With the optimization, the R -rw-> W edge is skipped entirely (V
  // committed after R's snapshot): W commits.
  Status st = RunReadOnlyScenario(/*read_only_opt=*/true,
                                  /*declare_read_only=*/true);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(ReadOnlyOptTest, WithoutOptimizationSameScenarioAborts) {
  // Without it, W looks like a pivot with a committed out-neighbor and is
  // aborted — the false positive the optimization removes.
  Status st = RunReadOnlyScenario(/*read_only_opt=*/false,
                                  /*declare_read_only=*/true);
  EXPECT_EQ(st.code(), Code::kSerializationFailure) << st.ToString();
}

TEST(ReadOnlyOptTest, UndeclaredReaderAlsoAborts) {
  // A reader that doesn't declare read-only can't benefit either.
  Status st = RunReadOnlyScenario(/*read_only_opt=*/true,
                                  /*declare_read_only=*/false);
  EXPECT_EQ(st.code(), Code::kSerializationFailure) << st.ToString();
}

TEST(ReadOnlyOptTest, ReadOnlyTxnStillAbortsWhenGenuinelyDangerous) {
  // Same shape but V commits BEFORE R takes its snapshot: now the
  // dangerous structure is real (R could observe state no serial order
  // allows) and someone must abort even with the optimization on.
  auto db = Database::Open({});
  TableId t;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  {
    auto w = db->Begin();
    ASSERT_TRUE(w->Put(t, "x", "1").ok());
    ASSERT_TRUE(w->Put(t, "y", "1").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto W = db->Begin({.isolation = IsolationLevel::kSerializable});
  std::string v;
  ASSERT_TRUE(W->Get(t, "y", &v).ok());

  auto V = db->Begin({.isolation = IsolationLevel::kSerializable});
  ASSERT_TRUE(V->Put(t, "y", "2").ok());
  ASSERT_TRUE(V->Commit().ok());  // commits before R begins

  ASSERT_TRUE(W->Put(t, "x", "9").ok());
  auto R = db->Begin({.isolation = IsolationLevel::kSerializable,
                      .read_only = true});
  Status r_read = R->Get(t, "x", &v);
  Status r_fin = r_read.ok() ? R->Commit() : r_read;
  Status w_fin = W->Commit();
  // The implementation victimizes the pivot W (still active); either way
  // the pair must not both succeed.
  EXPECT_FALSE(r_fin.ok() && w_fin.ok());
  EXPECT_TRUE(r_fin.IsSerializationFailure() || w_fin.IsSerializationFailure());
}

TEST(ReadOnlyOptTest, EdgeToInFlightWriterIsNotDroppedPrematurely) {
  // Regression: the Section 4 skip is only sound once the writer has
  // committed. Here the writer W has no dangerous out-edge when the
  // read-only R reads past its uncommitted write — but W acquires one
  // (to V, committed before R's snapshot) afterwards. If the R -rw-> W
  // edge were dropped at read time, W would commit and the cycle
  // R -> W -> V -> R would slip through.
  auto db = Database::Open({});
  TableId t;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  {
    auto w = db->Begin();
    ASSERT_TRUE(w->Put(t, "x", "1").ok());
    ASSERT_TRUE(w->Put(t, "y", "1").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto W = db->Begin({.isolation = IsolationLevel::kSerializable});
  ASSERT_TRUE(W->Put(t, "x", "2").ok());  // W writes x first

  auto V = db->Begin({.isolation = IsolationLevel::kSerializable});
  ASSERT_TRUE(V->Put(t, "y", "2").ok());
  ASSERT_TRUE(V->Commit().ok());  // V commits before R begins

  auto R = db->Begin({.isolation = IsolationLevel::kSerializable,
                      .read_only = true});
  std::string v;
  ASSERT_TRUE(R->Get(t, "x", &v).ok());  // R reads past W's write
  EXPECT_EQ(v, "1");

  ASSERT_TRUE(W->Get(t, "y", &v).ok());  // W -rw-> V forms only now
  EXPECT_EQ(v, "1");
  ASSERT_TRUE(R->Commit().ok());
  Status st = W->Commit();
  EXPECT_EQ(st.code(), Code::kSerializationFailure) << st.ToString();
}

TEST(ReadOnlyOptTest, OpportunisticSafeSnapshotSkipsTracking) {
  auto db = Database::Open({});
  TableId t;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  {
    auto w = db->Begin();
    ASSERT_TRUE(w->Put(t, "a", "1").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  // No concurrent read-write serializable txn: the read-only txn gets a
  // safe snapshot immediately (Theorem 4) and counts in the stats.
  auto r = db->Begin({.isolation = IsolationLevel::kSerializable,
                      .read_only = true});
  std::string v;
  ASSERT_TRUE(r->Get(t, "a", &v).ok());
  ASSERT_TRUE(r->Commit().ok());
  EXPECT_GE(db->GetSsiStats().safe_snapshots, 1u);
}

TEST(ReadOnlyOptTest, WritesRejectedInReadOnlyTxn) {
  auto db = Database::Open({});
  TableId t;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  auto r = db->Begin({.isolation = IsolationLevel::kSerializable,
                      .read_only = true});
  EXPECT_EQ(r->Put(t, "a", "1").code(), Code::kInvalidArgument);
}

TEST(ReadOnlyOptTest, DeferrableWaitsForConcurrentRwTxns) {
  auto db = Database::Open({});
  TableId t;
  ASSERT_TRUE(db->CreateTable("t", &t).ok());
  {
    auto w = db->Begin();
    ASSERT_TRUE(w->Put(t, "a", "1").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  // Hold a read-write serializable txn open, then Begin DEFERRABLE on
  // another thread: it must block until the rw txn finishes.
  auto rw = db->Begin({.isolation = IsolationLevel::kSerializable});
  std::string v;
  ASSERT_TRUE(rw->Get(t, "a", &v).ok());

  std::atomic<bool> began{false};
  std::atomic<bool> done{false};
  std::thread thr([&] {
    began = true;
    auto ro = db->Begin({.isolation = IsolationLevel::kSerializable,
                         .read_only = true,
                         .deferrable = true});
    done = true;
    std::string val;
    EXPECT_TRUE(ro->Get(t, "a", &val).ok());
    EXPECT_TRUE(ro->Commit().ok());
  });
  while (!began) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(done) << "DEFERRABLE Begin returned while a concurrent "
                        "read-write serializable txn was still active";
  ASSERT_TRUE(rw->Put(t, "a", "2").ok());
  ASSERT_TRUE(rw->Commit().ok());
  thr.join();
  EXPECT_TRUE(done);
  EXPECT_GE(db->GetSsiStats().safe_snapshots, 1u);
}

// ---------------------------------------------------------------------------
// S2PL serializable mode
// ---------------------------------------------------------------------------

class S2plTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions opts;
    opts.serializable_impl = SerializableImpl::kS2PL;
    opts.engine.lock_wait_timeout_us = 500'000;
    db_ = Database::Open(opts);
    ASSERT_TRUE(db_->CreateTable("t", &t_).ok());
    auto w = db_->Begin();
    ASSERT_TRUE(w->Put(t_, "a", "0").ok());
    ASSERT_TRUE(w->Put(t_, "b", "0").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  std::unique_ptr<Transaction> BeginSer() {
    return db_->Begin({.isolation = IsolationLevel::kSerializable});
  }
  std::unique_ptr<Database> db_;
  TableId t_ = kInvalidTable;
};

TEST_F(S2plTest, ConflictingWriterBlocksThenProceedsWithoutAbort) {
  auto t1 = BeginSer();
  ASSERT_TRUE(t1->Put(t_, "a", "t1").ok());

  std::atomic<bool> started{false};
  std::atomic<bool> done{false};
  Status t2_status;
  std::thread thr([&] {
    auto t2 = BeginSer();
    started = true;
    t2_status = t2->Put(t_, "a", "t2");  // blocks on t1's exclusive lock
    if (t2_status.ok()) t2_status = t2->Commit();
    done = true;
  });
  while (!started) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_FALSE(done) << "S2PL writer did not block on the lock holder";
  ASSERT_TRUE(t1->Commit().ok());
  thr.join();
  // The blocked writer proceeds and commits — no serialization failure.
  EXPECT_TRUE(t2_status.ok()) << t2_status.ToString();
  auto r = db_->Begin();
  std::string v;
  ASSERT_TRUE(r->Get(t_, "a", &v).ok());
  EXPECT_EQ(v, "t2");  // last-committed write wins
  ASSERT_TRUE(r->Commit().ok());
}

TEST_F(S2plTest, ReaderBlocksConflictingWriter) {
  auto reader = BeginSer();
  std::string v;
  ASSERT_TRUE(reader->Get(t_, "a", &v).ok());  // shared lock, held to commit

  std::atomic<bool> done{false};
  Status w_status;
  std::thread thr([&] {
    auto w = BeginSer();
    w_status = w->Put(t_, "a", "w");
    if (w_status.ok()) w_status = w->Commit();
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_FALSE(done) << "writer did not block on reader's shared lock";
  ASSERT_TRUE(reader->Commit().ok());
  thr.join();
  EXPECT_TRUE(w_status.ok()) << w_status.ToString();
}

TEST_F(S2plTest, WriteSkewPreventedByDeadlockVictim) {
  // The write-skew pair under S2PL: both read a and b (shared), then each
  // upgrades a different key. The upgrades deadlock; exactly one victim
  // aborts with a serialization failure and the survivor's effect is
  // serializable.
  std::atomic<int> commits{0}, failures{0};
  auto worker = [&](const std::string& read_first, const std::string& write) {
    auto txn = BeginSer();
    std::string v;
    Status st = txn->Get(t_, "a", &v);
    if (st.ok()) st = txn->Get(t_, "b", &v);
    if (st.ok()) st = txn->Put(t_, write, "1");
    if (st.ok()) st = txn->Commit();
    (void)read_first;
    if (st.ok())
      commits++;
    else if (st.IsSerializationFailure())
      failures++;
  };
  std::thread th1(worker, "a", "a");
  std::thread th2(worker, "b", "b");
  th1.join();
  th2.join();
  // Either they serialized by luck (both commit) or deadlocked (one
  // victim); in no case do both fail or any non-serialization error leak.
  EXPECT_EQ(commits + failures, 2);
  EXPECT_LE(failures, 1);
}

TEST_F(S2plTest, ThreeWayDeadlockCycleAbortsExactlyOneVictim) {
  // a -> b -> c -> a: each txn locks its own key, then (once all three
  // hold their first lock, so the cycle is certain) requests the next
  // one. The detector must see the full cycle — not time out — and every
  // member must agree on the same single victim: exactly one aborts with
  // a serialization failure and the other two commit.
  {
    auto w = db_->Begin();
    ASSERT_TRUE(w->Put(t_, "c", "0").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  const std::string keys[3] = {"a", "b", "c"};
  std::atomic<int> holding{0};
  std::atomic<int> commits{0}, failures{0};
  auto worker = [&](int i) {
    auto txn = BeginSer();
    Status st = txn->Put(t_, keys[i], "w");
    ASSERT_TRUE(st.ok()) << st.ToString();
    holding++;
    while (holding < 3) std::this_thread::yield();
    st = txn->Put(t_, keys[(i + 1) % 3], "w");
    if (st.ok()) st = txn->Commit();
    if (st.ok()) {
      commits++;
    } else {
      EXPECT_TRUE(st.IsSerializationFailure()) << st.ToString();
      failures++;
    }
  };
  std::thread th0(worker, 0), th1(worker, 1), th2(worker, 2);
  th0.join();
  th1.join();
  th2.join();
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(commits, 2);
}

TEST_F(S2plTest, ScanBlocksInsertPhantom) {
  // A scanning S2PL txn holds the table-gap lock: a concurrent insert
  // must block until the scanner commits (no phantoms).
  auto scanner = BeginSer();
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(scanner->Scan(t_, "a", "z", &rows).ok());
  EXPECT_EQ(rows.size(), 2u);

  std::atomic<bool> done{false};
  Status ins_status;
  std::thread thr([&] {
    auto ins = BeginSer();
    ins_status = ins->Insert(t_, "c", "new");
    if (ins_status.ok()) ins_status = ins->Commit();
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_FALSE(done) << "insert did not block on the scanner's gap lock";
  ASSERT_TRUE(scanner->Commit().ok());
  thr.join();
  EXPECT_TRUE(ins_status.ok()) << ins_status.ToString();
}

}  // namespace
}  // namespace pgssi
