// Crash-recovery torture harness (satellite 3): fork a child that
// hammers the engine with concurrent pair-writes while a failpoint kills
// it (_Exit, no destructors — the in-process `kill -9`) at a chosen WAL
// boundary: before an append, mid-frame (torn record), at the fsync,
// after the fsync but before the ack, or after publication but before
// the client ack. The child acks each successful commit through an
// O_APPEND file (one atomic write() per line); the parent reaps it,
// recovers the database, and asserts the durability contract:
//
//   1. every ACKED commit is fully recovered (prefix property);
//   2. every recovered pair is ATOMIC — both keys present with equal
//      values — acked or not (an unacked-but-fully-logged commit may
//      legitimately survive; a torn one must vanish whole);
//   3. the recovered engine is consistent (SSI bookkeeping clean) and
//      keeps committing.
//
// The parent forks before creating any thread, so fork() is safe; the
// child arms its failpoints AFTER the fork and never runs gtest code —
// it reports only through its exit status and the ack file.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "db/transaction_handle.h"
#include "util/failpoint.h"

// Sanitizer runs pay a 10-20x per-access tax; shrink the fixed work so the
// suite stays minutes-not-hours on small CI machines while touching the
// same code paths.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PGSSI_STRESS_SCALE 4
#else
#define PGSSI_STRESS_SCALE 1
#endif

namespace pgssi {
namespace {

namespace fs = std::filesystem;

constexpr int kThreads = 4;
constexpr int kItersPerThread = 80 / PGSSI_STRESS_SCALE;

struct Scenario {
  const char* failpoint;  // nullptr: run to completion, no kill
  uint64_t trigger_at;    // Nth evaluation of that site
};

std::string ScratchDir(const std::string& name) {
  fs::path d = fs::path(testing::TempDir()) / ("pgssi_torture_" + name);
  fs::remove_all(d);
  fs::create_directories(d);
  return d.string();
}

DatabaseOptions TortureOpts(const std::string& dir) {
  DatabaseOptions opts;
  opts.engine.wal_enabled = true;
  opts.engine.wal_dir = dir;
  opts.engine.wal_fsync = WalFsyncMode::kBatch;
  opts.engine.wal_fsync_batch = 8;
  return opts;
}

// Child body: never returns normally — _exit only (no gtest, no
// destructors on the crash path by construction).
[[noreturn]] void RunChild(const std::string& dir, const std::string& ack_path,
                           const Scenario& sc) {
  if (sc.failpoint) {
    util::FailpointArm(sc.failpoint, util::FailpointAction::kCrash,
                       sc.trigger_at);
  }
  const int ack_fd =
      ::open(ack_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (ack_fd < 0) ::_exit(2);

  Status st;
  auto db = Database::Open(TortureOpts(dir), &st);
  if (!db) ::_exit(3);
  TableId t;
  if (!db->CreateTable("t", &t).ok()) ::_exit(4);

  std::vector<std::thread> workers;
  for (int ti = 0; ti < kThreads; ti++) {
    workers.emplace_back([&, ti] {
      for (int j = 0; j < kItersPerThread; j++) {
        const std::string stem =
            "k" + std::to_string(ti) + "_" + std::to_string(j);
        const std::string val = std::to_string(j);
        auto txn = db->Begin();
        if (!txn->Put(t, stem + "_a", val).ok()) continue;
        if (!txn->Put(t, stem + "_b", val).ok()) continue;
        if (!txn->Commit().ok()) continue;
        // Ack AFTER the commit returned: one atomic O_APPEND write.
        const std::string line =
            std::to_string(ti) + " " + std::to_string(j) + "\n";
        (void)!::write(ack_fd, line.data(), line.size());
      }
    });
  }
  for (auto& w : workers) w.join();
  db.reset();  // clean close (final fsync) when no failpoint fired
  ::_exit(0);
}

void VerifyRecovered(const std::string& dir, const std::string& ack_path) {
  // Parse the ack file. A crash can tear the LAST line (the write()
  // itself is atomic, but the process may die before issuing it — never
  // mid-line on O_APPEND); tolerate a trailing partial by requiring the
  // full "ti j" parse.
  std::set<std::pair<int, int>> acked;
  {
    std::ifstream in(ack_path);
    std::string line;
    while (std::getline(in, line)) {
      int ti, j;
      if (std::sscanf(line.c_str(), "%d %d", &ti, &j) == 2) {
        acked.emplace(ti, j);
      }
    }
  }

  Status st;
  auto db = Database::Open(TortureOpts(dir), &st);
  ASSERT_TRUE(st.ok()) << st.ToString();
  const TableId t = db->GetTableId("t");
  ASSERT_NE(t, kInvalidTable);

  auto txn = db->Begin();
  size_t recovered_pairs = 0;
  for (int ti = 0; ti < kThreads; ti++) {
    for (int j = 0; j < kItersPerThread; j++) {
      const std::string stem =
          "k" + std::to_string(ti) + "_" + std::to_string(j);
      std::string va, vb;
      const bool has_a = txn->Get(t, stem + "_a", &va).ok();
      const bool has_b = txn->Get(t, stem + "_b", &vb).ok();
      // Atomicity: never half a pair, acked or not.
      EXPECT_EQ(has_a, has_b) << stem;
      if (has_a && has_b) {
        EXPECT_EQ(va, vb) << stem;
        EXPECT_EQ(va, std::to_string(j)) << stem;
        recovered_pairs++;
      }
      // Prefix property: every acked commit survived.
      if (acked.count({ti, j})) {
        EXPECT_TRUE(has_a && has_b) << "acked commit lost: " << stem;
      }
    }
  }
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_GE(recovered_pairs, acked.size());
  EXPECT_TRUE(db->CheckSsiLockConsistency());

  // The recovered engine keeps committing, and the new write is itself
  // durable across one more reopen.
  {
    auto txn2 = db->Begin();
    ASSERT_TRUE(txn2->Put(t, "post_recovery", "ok").ok());
    ASSERT_TRUE(txn2->Commit().ok());
  }
  db.reset();
  auto db2 = Database::Open(TortureOpts(dir), &st);
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto txn3 = db2->Begin();
  std::string v;
  ASSERT_TRUE(txn3->Get(db2->GetTableId("t"), "post_recovery", &v).ok());
  EXPECT_EQ(v, "ok");
  ASSERT_TRUE(txn3->Commit().ok());
}

void RunScenario(const std::string& name, const Scenario& sc) {
  SCOPED_TRACE(name);
  const std::string dir = ScratchDir(name);
  const std::string ack_path = dir + "/acks.txt";

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork: " << std::strerror(errno);
  if (pid == 0) RunChild(dir, ack_path, sc);  // never returns

  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus)) << "child died abnormally";
  const int code = WEXITSTATUS(wstatus);
  if (sc.failpoint) {
    // Either the injected kill fired, or the run finished before the
    // site was hit that many times (legal for large trigger counts).
    ASSERT_TRUE(code == util::kFailpointCrashExit || code == 0)
        << "child exit " << code;
  } else {
    ASSERT_EQ(code, 0) << "child exit " << code;
  }
  VerifyRecovered(dir, ack_path);
}

TEST(WalTortureTest, CleanRunRecoversEverything) {
  RunScenario("clean", {nullptr, 0});
}

// Kill before any bytes of the Nth append hit the file: the log ends at
// a record boundary; everything earlier replays.
TEST(WalTortureTest, CrashBeforeAppend) {
  RunScenario("append_early", {"wal_append", 3});
  RunScenario("append_mid", {"wal_append", 40});
  RunScenario("append_late", {"wal_append", 150});
}

// Kill after HALF the frame is written: a torn record recovery must
// detect (length/CRC) and truncate away.
TEST(WalTortureTest, CrashMidRecord) {
  RunScenario("torn_early", {"wal_append_partial", 5});
  RunScenario("torn_mid", {"wal_append_partial", 60});
  RunScenario("torn_late", {"wal_append_partial", 170});
}

// Kill at the fsync: the batch's records are appended (page cache) but
// never acked — they may or may not survive; whatever survives must be
// whole, and nothing acked is lost (nothing in the batch WAS acked).
TEST(WalTortureTest, CrashAtFsync) {
  RunScenario("fsync_early", {"wal_fsync", 4});
  RunScenario("fsync_mid", {"wal_fsync", 20});
}

// Kill between the fsync and the ack: the batch is durable, its clients
// never heard back — recovery legitimately replays commits nobody saw
// acknowledged (documented window; the pair-atomicity check still holds).
TEST(WalTortureTest, CrashAfterFsyncBeforeAck) {
  RunScenario("durable_unacked_early", {"wal_after_fsync", 3});
  RunScenario("durable_unacked_mid", {"wal_after_fsync", 15});
}

// Kill after the seq is published (durable AND visible to concurrent
// snapshots) but before Commit returns to the client.
TEST(WalTortureTest, CrashAfterPublication) {
  RunScenario("published_early", {"commit_published", 5});
  RunScenario("published_mid", {"commit_published", 50});
}

}  // namespace
}  // namespace pgssi
