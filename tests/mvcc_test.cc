// MVCC storage engine semantics: snapshot visibility, repeatable reads,
// first-updater-wins write conflicts, rollback, scans, and deletes.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "db/transaction_handle.h"

namespace pgssi {
namespace {

class MvccTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = Database::Open({});
    ASSERT_TRUE(db_->CreateTable("t", &t_).ok());
  }
  std::unique_ptr<Database> db_;
  TableId t_ = kInvalidTable;
};

TEST_F(MvccTest, CommittedWritesVisibleToLaterTxns) {
  auto w = db_->Begin();
  ASSERT_TRUE(w->Put(t_, "a", "1").ok());
  ASSERT_TRUE(w->Commit().ok());

  auto r = db_->Begin();
  std::string v;
  ASSERT_TRUE(r->Get(t_, "a", &v).ok());
  EXPECT_EQ(v, "1");
  EXPECT_EQ(r->Get(t_, "missing", &v).code(), Code::kNotFound);
  ASSERT_TRUE(r->Commit().ok());
}

TEST_F(MvccTest, UncommittedWritesInvisibleToOthersVisibleToSelf) {
  auto w = db_->Begin();
  ASSERT_TRUE(w->Put(t_, "a", "dirty").ok());
  std::string v;
  ASSERT_TRUE(w->Get(t_, "a", &v).ok());
  EXPECT_EQ(v, "dirty");

  auto r = db_->Begin();
  EXPECT_EQ(r->Get(t_, "a", &v).code(), Code::kNotFound);
  ASSERT_TRUE(r->Commit().ok());
  ASSERT_TRUE(w->Abort().ok());
}

TEST_F(MvccTest, RepeatableReadSnapshotIsStable) {
  {
    auto w = db_->Begin();
    ASSERT_TRUE(w->Put(t_, "a", "old").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto r = db_->Begin({.isolation = IsolationLevel::kRepeatableRead});
  std::string v;
  ASSERT_TRUE(r->Get(t_, "a", &v).ok());
  EXPECT_EQ(v, "old");

  {
    auto w = db_->Begin();
    ASSERT_TRUE(w->Put(t_, "a", "new").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  // Same snapshot: still the old value, and the newly committed key is
  // invisible too.
  ASSERT_TRUE(r->Get(t_, "a", &v).ok());
  EXPECT_EQ(v, "old");
  ASSERT_TRUE(r->Commit().ok());

  auto r2 = db_->Begin();
  ASSERT_TRUE(r2->Get(t_, "a", &v).ok());
  EXPECT_EQ(v, "new");
  ASSERT_TRUE(r2->Commit().ok());
}

TEST_F(MvccTest, AbortRollsBackAllWrites) {
  {
    auto w = db_->Begin();
    ASSERT_TRUE(w->Put(t_, "a", "keep").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  {
    auto w = db_->Begin();
    ASSERT_TRUE(w->Put(t_, "a", "discard").ok());
    ASSERT_TRUE(w->Put(t_, "b", "discard").ok());
    ASSERT_TRUE(w->Abort().ok());
  }
  auto r = db_->Begin();
  std::string v;
  ASSERT_TRUE(r->Get(t_, "a", &v).ok());
  EXPECT_EQ(v, "keep");
  EXPECT_EQ(r->Get(t_, "b", &v).code(), Code::kNotFound);
  ASSERT_TRUE(r->Commit().ok());
}

TEST_F(MvccTest, DestructorAbortsUnfinishedTxn) {
  {
    auto w = db_->Begin();
    ASSERT_TRUE(w->Put(t_, "x", "leak?").ok());
    // No commit: handle destruction must roll back.
  }
  auto r = db_->Begin();
  std::string v;
  EXPECT_EQ(r->Get(t_, "x", &v).code(), Code::kNotFound);
  ASSERT_TRUE(r->Commit().ok());
}

TEST_F(MvccTest, FirstUpdaterWinsConcurrentUpdateFails) {
  {
    auto w = db_->Begin();
    ASSERT_TRUE(w->Put(t_, "a", "0").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto t1 = db_->Begin();
  auto t2 = db_->Begin();
  std::string v;
  ASSERT_TRUE(t1->Get(t_, "a", &v).ok());
  ASSERT_TRUE(t2->Get(t_, "a", &v).ok());
  ASSERT_TRUE(t1->Put(t_, "a", "t1").ok());
  ASSERT_TRUE(t1->Commit().ok());
  // t2's snapshot predates t1's commit: the write must fail.
  Status st = t2->Put(t_, "a", "t2");
  EXPECT_EQ(st.code(), Code::kSerializationFailure);
  EXPECT_TRUE(t2->finished());  // statement failure rolled the txn back
}

TEST_F(MvccTest, BlockedWriterFailsAfterHolderCommits) {
  {
    auto w = db_->Begin();
    ASSERT_TRUE(w->Put(t_, "a", "0").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto t1 = db_->Begin();
  ASSERT_TRUE(t1->Put(t_, "a", "t1").ok());

  std::atomic<bool> t2_started{false};
  Status t2_status;
  std::thread thr([&] {
    auto t2 = db_->Begin();
    t2_started = true;
    t2_status = t2->Put(t_, "a", "t2");  // blocks on t1's row lock
    if (t2_status.ok()) t2_status = t2->Commit();
  });
  while (!t2_started) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(t1->Commit().ok());
  thr.join();
  EXPECT_EQ(t2_status.code(), Code::kSerializationFailure);
}

TEST_F(MvccTest, InsertDuplicateAndDelete) {
  auto w = db_->Begin();
  ASSERT_TRUE(w->Insert(t_, "a", "1").ok());
  EXPECT_EQ(w->Insert(t_, "a", "2").code(), Code::kAlreadyExists);
  EXPECT_FALSE(w->finished());  // AlreadyExists is statement-level only
  ASSERT_TRUE(w->Commit().ok());

  auto d = db_->Begin();
  ASSERT_TRUE(d->Delete(t_, "a").ok());
  EXPECT_EQ(d->Delete(t_, "missing").code(), Code::kNotFound);
  ASSERT_TRUE(d->Commit().ok());

  auto r = db_->Begin();
  std::string v;
  EXPECT_EQ(r->Get(t_, "a", &v).code(), Code::kNotFound);
  // After delete, the key can be inserted again.
  ASSERT_TRUE(r->Insert(t_, "a", "3").ok());
  ASSERT_TRUE(r->Commit().ok());
}

TEST_F(MvccTest, ScanAndCountRespectSnapshots) {
  {
    auto w = db_->Begin();
    for (int i = 0; i < 10; i++) {
      ASSERT_TRUE(w->Put(t_, "k" + std::to_string(i), std::to_string(i)).ok());
    }
    ASSERT_TRUE(w->Commit().ok());
  }
  auto r = db_->Begin();
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(r->Scan(t_, "k0", "k9", &rows).ok());
  EXPECT_EQ(rows.size(), 10u);
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));

  // A concurrent insert is invisible to r's snapshot.
  {
    auto w = db_->Begin();
    ASSERT_TRUE(w->Put(t_, "k5b", "new").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  uint64_t n = 0;
  ASSERT_TRUE(r->Count(t_, "k0", "k9", &n).ok());
  EXPECT_EQ(n, 10u);
  ASSERT_TRUE(r->Commit().ok());

  auto r2 = db_->Begin();
  ASSERT_TRUE(r2->Count(t_, "k0", "k9", &n).ok());
  EXPECT_EQ(n, 11u);
  ASSERT_TRUE(r2->Commit().ok());
}

TEST_F(MvccTest, HotChainPruningKeepsEngineUsable) {
  {
    auto w = db_->Begin();
    ASSERT_TRUE(w->Put(t_, "hot", "0").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  for (int i = 1; i <= 100; i++) {
    auto w = db_->Begin();
    ASSERT_TRUE(w->Put(t_, "hot", std::to_string(i)).ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto r = db_->Begin();
  std::string v;
  ASSERT_TRUE(r->Get(t_, "hot", &v).ok());
  EXPECT_EQ(v, "100");
  ASSERT_TRUE(r->Commit().ok());
}

}  // namespace
}  // namespace pgssi
