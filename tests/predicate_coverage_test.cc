// Predicate-coverage regression tests (Section 5.2: SIREAD coverage must
// survive every structural index change, and every read — including the
// existence checks performed implicitly by write statements — must leave
// a lock behind) plus a striped-heap stress:
//  - a failed Insert (kAlreadyExists) / failed Delete (kNotFound) read
//    the row's (non)existence and must SIREAD-track it, or write skew
//    built on those reads commits;
//  - under next-key gap locking, an insert that splits a gap must carry
//    the old next-key granule's holders onto the new entry, or a second
//    insert into the lower sub-gap misses the reader;
//  - an aborted new-key insert must not leak its chain or index entry,
//    and the erased granule's coverage must move back onto the gap;
//  - an 8-thread striped-heap stress (default stripes and the
//    --heap-stripes=1 equivalent) ending in a full consistency check.
// Run under ThreadSanitizer in CI (cmake --preset tsan).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "db/transaction_handle.h"
#include "util/random.h"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PGSSI_STRESS_SCALE 4
#else
#define PGSSI_STRESS_SCALE 1
#endif

namespace pgssi {
namespace {

std::unique_ptr<Transaction> BeginSer(Database* db) {
  return db->Begin({.isolation = IsolationLevel::kSerializable});
}

// ---------------------------------------------------------------------------
// Satellite 1: failed writes are reads.
// ---------------------------------------------------------------------------

// T1 verifies "A exists" via a failed Insert, updates C, and commits —
// its SIREAD lock on A must survive the commit (Section 5.3). T2,
// concurrent with T1, reads the old C (edge T2 -rw-> T1) and deletes A:
// the probe of A must find T1's lock (edge T1 -rw-> T2), completing a
// cycle with T1 already committed, so T2 must abort. Without tracking
// the failed Insert's read, both commit a non-serializable execution
// (T1 saw A that T2 deleted; T2 saw the C that T1 overwrote).
TEST(PredicateCoverageTest, FailedInsertExistenceCheckIsTracked) {
  auto db = Database::Open({});
  TableId t;
  ASSERT_TRUE(db->CreateTable("fi", &t).ok());
  {
    auto w = db->Begin();
    ASSERT_TRUE(w->Put(t, "A", "a").ok());
    ASSERT_TRUE(w->Put(t, "C", "c1").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto t2 = BeginSer(db.get());  // snapshot taken before t1 commits
  auto t1 = BeginSer(db.get());
  EXPECT_EQ(t1->Insert(t, "A", "x").code(), Code::kAlreadyExists);
  ASSERT_TRUE(t1->Put(t, "C", "c2").ok());
  ASSERT_TRUE(t1->Commit().ok());
  std::string v;
  ASSERT_TRUE(t2->Get(t, "C", &v).ok());
  EXPECT_EQ(v, "c1");
  Status s2 = t2->Delete(t, "A");
  if (s2.ok()) s2 = t2->Commit();
  EXPECT_EQ(s2.code(), Code::kSerializationFailure) << s2.ToString();
}

// Same shape through a failed Delete on an existing-but-deleted chain:
// T1 verifies "A absent" (kNotFound), updates C, commits; T2 reads the
// old C and re-inserts A — the insert lands on A's surviving chain, and
// its probe must find T1's lock from the failed Delete.
TEST(PredicateCoverageTest, FailedDeleteExistenceCheckIsTracked) {
  auto db = Database::Open({});
  TableId t;
  ASSERT_TRUE(db->CreateTable("fd", &t).ok());
  {
    auto w = db->Begin();
    ASSERT_TRUE(w->Put(t, "A", "a").ok());
    ASSERT_TRUE(w->Put(t, "C", "c1").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  {
    auto w = db->Begin();
    ASSERT_TRUE(w->Delete(t, "A").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto t2 = BeginSer(db.get());
  auto t1 = BeginSer(db.get());
  EXPECT_EQ(t1->Delete(t, "A").code(), Code::kNotFound);
  ASSERT_TRUE(t1->Put(t, "C", "c2").ok());
  ASSERT_TRUE(t1->Commit().ok());
  std::string v;
  ASSERT_TRUE(t2->Get(t, "C", &v).ok());
  EXPECT_EQ(v, "c1");
  Status s2 = t2->Insert(t, "A", "x");
  if (s2.ok()) s2 = t2->Commit();
  EXPECT_EQ(s2.code(), Code::kSerializationFailure) << s2.ToString();
}

// Failed Delete of a key with no chain at all: the statement read the
// GAP the key would occupy and must gap-lock it exactly as a Get miss
// does, so T2's later insert of that key probes into T1's coverage.
TEST(PredicateCoverageTest, FailedDeleteOfAbsentKeyLocksGap) {
  auto db = Database::Open({});
  TableId t;
  ASSERT_TRUE(db->CreateTable("fg", &t).ok());
  {
    auto w = db->Begin();
    ASSERT_TRUE(w->Put(t, "C", "c1").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto t2 = BeginSer(db.get());
  auto t1 = BeginSer(db.get());
  EXPECT_EQ(t1->Delete(t, "A").code(), Code::kNotFound);  // no chain for A
  ASSERT_TRUE(t1->Put(t, "C", "c2").ok());
  ASSERT_TRUE(t1->Commit().ok());
  std::string v;
  ASSERT_TRUE(t2->Get(t, "C", &v).ok());
  EXPECT_EQ(v, "c1");
  Status s2 = t2->Insert(t, "A", "x");
  if (s2.ok()) s2 = t2->Commit();
  EXPECT_EQ(s2.code(), Code::kSerializationFailure) << s2.ToString();
}

// ---------------------------------------------------------------------------
// Satellite 2: a gap-splitting insert must not strand the reader's
// next-key gap lock on the old granule.
// ---------------------------------------------------------------------------

// Two transactions each verify the range (b..y) is empty by scanning,
// then insert into it. The second insert's gap probe lands on the FIRST
// insert's entry (the new next key), not the granule the scans locked —
// without holder transfer the rw edge is lost and both commit, breaking
// the "insert only into an empty range" invariant.
TEST(PredicateCoverageTest, GapSplittingInsertKeepsScannerCoverage) {
  DatabaseOptions opts;
  opts.engine.index_gap_locking = IndexGapLocking::kNextKey;
  auto db = Database::Open(opts);
  TableId t;
  ASSERT_TRUE(db->CreateTable("gs", &t).ok());
  {
    auto w = db->Begin();
    ASSERT_TRUE(w->Put(t, "a", "lo").ok());
    ASSERT_TRUE(w->Put(t, "z", "hi").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto ta = BeginSer(db.get());
  auto tb = BeginSer(db.get());
  uint64_t n = 0;
  ASSERT_TRUE(ta->Count(t, "b", "y", &n).ok());
  EXPECT_EQ(n, 0u);
  ASSERT_TRUE(tb->Count(t, "b", "y", &n).ok());
  EXPECT_EQ(n, 0u);
  // tb splits the gap first; ta's insert then probes tb's new entry.
  Status sb = tb->Insert(t, "m", "vb");
  Status sa = ta->Insert(t, "c", "va");
  if (sb.ok()) sb = tb->Commit();
  if (sa.ok()) sa = ta->Commit();
  EXPECT_NE(sa.ok(), sb.ok()) << "sa=" << sa.ToString()
                              << " sb=" << sb.ToString();
  // The surviving state honors the invariant: exactly one key landed.
  auto r = db->Begin();
  ASSERT_TRUE(r->Count(t, "b", "y", &n).ok());
  EXPECT_EQ(n, 1u);
  ASSERT_TRUE(r->Commit().ok());
}

// ROADMAP PR 3 item: every gap-splitting insert copies the old next-key
// granule's holders onto the new entry, so a long-lived scanner over a
// hot insert range would otherwise accumulate one tuple lock per insert
// without bound. The transfer path must escalate to a page lock at the
// usual per-page threshold; this asserts the bound after an insert-heavy
// run against a live scanner (fails with the escalation removed: the
// tuple-lock count tracks the insert count).
TEST(PredicateCoverageTest, GapTransferGrowthBoundedUnderInsertStorm) {
  DatabaseOptions opts;
  opts.engine.index_gap_locking = IndexGapLocking::kNextKey;
  opts.engine.max_locks_per_page = 4;
  auto db = Database::Open(opts);
  TableId t;
  ASSERT_TRUE(db->CreateTable("gb", &t).ok());
  {
    auto w = db->Begin();
    ASSERT_TRUE(w->Put(t, "a", "v").ok());
    ASSERT_TRUE(w->Put(t, "z", "v").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto scanner = BeginSer(db.get());
  uint64_t n = 0;
  // Scan [a, y]: the right boundary's gap lock is a next-key TUPLE lock
  // on "z" (not a page lock, which would already cover the landing pages
  // and suppress the copies this regression is about). Every insert
  // below probes "z" as its successor and transfers that granule.
  ASSERT_TRUE(scanner->Count(t, "a", "y", &n).ok());

  constexpr int kInserts = 200;
  for (int i = 0; i < kInserts; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "m%06d", i);
    auto w = BeginSer(db.get());
    Status st = w->Insert(t, key, "v");
    if (st.ok()) st = w->Commit();  // serialization failures are fine
  }
  // The scanner is still live, so every insert transferred coverage to
  // its new granule — but escalation caps the copies at
  // max_locks_per_page tuple locks per leaf plus one page lock per leaf,
  // far below one lock per insert.
  EXPECT_LT(db->SireadTupleLockCount(), kInserts / 2);
  EXPECT_TRUE(db->CheckSsiLockConsistency());
  ASSERT_TRUE(scanner->Abort().ok());
}

// ---------------------------------------------------------------------------
// Satellite 3: aborted new-key inserts must not leak chains or entries.
// ---------------------------------------------------------------------------

TEST(PredicateCoverageTest, AbortedInsertLeavesNoChainOrIndexEntry) {
  auto db = Database::Open({});
  TableId t;
  ASSERT_TRUE(db->CreateTable("leak", &t).ok());
  {
    auto w = db->Begin();
    ASSERT_TRUE(w->Put(t, "a", "1").ok());
    ASSERT_TRUE(w->Put(t, "z", "1").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  ASSERT_EQ(db->IndexEntryCount(t), 2u);
  ASSERT_EQ(db->LiveTupleChainCount(t), 2u);

  // Explicit abort, destructor abort, and serialization-failure rollback
  // all funnel through the same path; hammer it to prove recycling too.
  for (int i = 0; i < 16; i++) {
    auto txn = BeginSer(db.get());
    ASSERT_TRUE(txn->Insert(t, "m" + std::to_string(i % 4), "v").ok());
    if (i % 2 == 0) {
      ASSERT_TRUE(txn->Abort().ok());
    }  // else: destructor aborts
  }
  EXPECT_EQ(db->IndexEntryCount(t), 2u) << "aborted inserts leaked entries";
  EXPECT_EQ(db->LiveTupleChainCount(t), 2u) << "aborted inserts leaked chains";

  // The key is genuinely gone: reads miss, and a fresh insert (which
  // recycles an aborted chain) works and commits.
  {
    auto r = db->Begin();
    std::string v;
    EXPECT_EQ(r->Get(t, "m0", &v).code(), Code::kNotFound);
    ASSERT_TRUE(r->Commit().ok());
  }
  {
    auto txn = BeginSer(db.get());
    ASSERT_TRUE(txn->Insert(t, "m0", "final").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  EXPECT_EQ(db->IndexEntryCount(t), 3u);
  EXPECT_EQ(db->LiveTupleChainCount(t), 3u);
}

// A reader that observed an uncommitted key as absent holds a SIREAD
// lock on that entry's granule. When the insert aborts and the entry is
// erased, that coverage must transfer back onto the gap, so a later
// re-insert of the key still finds the reader.
TEST(PredicateCoverageTest, AbortedInsertTransfersCoverageBackToGap) {
  DatabaseOptions opts;
  opts.engine.index_gap_locking = IndexGapLocking::kNextKey;
  auto db = Database::Open(opts);
  TableId t;
  ASSERT_TRUE(db->CreateTable("xfer", &t).ok());
  {
    auto w = db->Begin();
    ASSERT_TRUE(w->Put(t, "a", "1").ok());
    ASSERT_TRUE(w->Put(t, "r", "0").ok());
    ASSERT_TRUE(w->Put(t, "z", "1").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto tc = BeginSer(db.get());  // creates then aborts "m"
  ASSERT_TRUE(tc->Insert(t, "m", "tmp").ok());
  auto tr = BeginSer(db.get());  // reads "m absent", writes "r"
  auto tw = BeginSer(db.get());  // reads "r", re-inserts "m"
  std::string v;
  EXPECT_EQ(tr->Get(t, "m", &v).code(), Code::kNotFound);
  ASSERT_TRUE(tw->Get(t, "r", &v).ok());
  ASSERT_TRUE(tc->Abort().ok());  // erases the entry tr's lock sat on
  Status sw = tw->Insert(t, "m", "real");
  Status sr = tr->Put(t, "r", "1");
  if (sw.ok()) sw = tw->Commit();
  if (sr.ok()) sr = tr->Commit();
  EXPECT_NE(sr.ok(), sw.ok()) << "sr=" << sr.ToString()
                              << " sw=" << sw.ToString();
}

// Erase leaves empty leaves behind, so an open tail gap can span
// several leaves: a reader's boundary page lock lands on the LAST
// (empty) leaf while a later insert into the gap lands on an earlier
// one. The insert must probe every leaf its gap spans (ProbePages), or
// the rw edge is lost.
TEST(PredicateCoverageTest, TailGapInsertProbesAcrossEmptyLeaves) {
  DatabaseOptions opts;
  opts.engine.index_gap_locking = IndexGapLocking::kNextKey;
  opts.engine.btree_fanout = 4;  // force splits with a handful of keys
  auto db = Database::Open(opts);
  TableId t;
  ASSERT_TRUE(db->CreateTable("tg", &t).ok());
  {
    auto w = db->Begin();
    ASSERT_TRUE(w->Put(t, "a", "1").ok());
    ASSERT_TRUE(w->Put(t, "b", "1").ok());
    ASSERT_TRUE(w->Put(t, "Flag", "0").ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  {
    // Drive leaf splits, then abort: the upper keys vanish but their
    // (now empty) leaves — and the inner separators routing to them —
    // remain.
    auto w0 = BeginSer(db.get());
    for (const char* k : {"k", "l", "m", "n", "o", "p"}) {
      ASSERT_TRUE(w0->Insert(t, k, "tmp").ok());
    }
    ASSERT_TRUE(w0->Abort().ok());
  }
  auto tw = BeginSer(db.get());  // reads flag, inserts into the tail gap
  auto tr = BeginSer(db.get());  // scans the tail gap, writes flag
  std::string v;
  ASSERT_TRUE(tw->Get(t, "Flag", &v).ok());
  uint64_t n = 0;
  ASSERT_TRUE(tr->Count(t, "c", "y", &n).ok());  // boundary lock: empty tail leaf
  EXPECT_EQ(n, 0u);
  ASSERT_TRUE(tr->Put(t, "Flag", "1").ok());
  // "c" routes to the first leaf; tr's boundary lock sits on the last,
  // empty one. Only the multi-leaf probe finds it.
  Status sw = tw->Insert(t, "c", "x");
  if (sw.ok()) sw = tw->Commit();
  Status sr = tr->Commit();
  EXPECT_NE(sr.ok(), sw.ok()) << "sr=" << sr.ToString()
                              << " sw=" << sw.ToString();
}

// ---------------------------------------------------------------------------
// Striped-heap stress: disjoint-key writers, gap-probing inserts and
// aborted inserts from 8 threads, ending in a full consistency check.
// ---------------------------------------------------------------------------

void RunStripedHeapStress(uint32_t stripes) {
  DatabaseOptions opts;
  opts.engine.heap_stripes = stripes;
  auto db = Database::Open(opts);
  TableId t;
  ASSERT_TRUE(db->CreateTable("stress", &t).ok());

  constexpr int kThreads = 8;
  constexpr int kKeysPerThread = 4;
  constexpr int kIters = 240 / PGSSI_STRESS_SCALE;
  auto own_key = [](int ti, int j) {
    return "own-" + std::to_string(ti) + "-" + std::to_string(j);
  };
  {
    auto w = db->Begin();
    for (int ti = 0; ti < kThreads; ti++) {
      for (int j = 0; j < kKeysPerThread; j++) {
        ASSERT_TRUE(w->Put(t, own_key(ti, j), "0").ok());
      }
    }
    ASSERT_TRUE(w->Commit().ok());
  }
  const size_t preloaded = kThreads * kKeysPerThread;

  std::vector<std::array<int, kKeysPerThread>> counts(kThreads);
  std::vector<std::thread> workers;
  for (int ti = 0; ti < kThreads; ti++) {
    counts[ti].fill(0);
    workers.emplace_back([&, ti] {
      Random rng(31u + static_cast<uint64_t>(ti));
      for (int it = 0; it < kIters; it++) {
        int j = static_cast<int>(rng.Uniform(kKeysPerThread));
        // Disjoint-key read-modify-write: only this thread writes these
        // keys, so contention is scans/gap-probes, never ww conflicts.
        for (int attempt = 0; attempt < 64; attempt++) {
          auto txn = BeginSer(db.get());
          std::string v;
          if (!txn->Get(t, own_key(ti, j), &v).ok()) continue;
          if (!txn->Put(t, own_key(ti, j), std::to_string(atoi(v.c_str()) + 1))
                   .ok()) {
            continue;
          }
          if (txn->Commit().ok()) {
            counts[ti][static_cast<size_t>(j)]++;
            break;
          }
        }
        if (it % 6 == 0) {
          // Insert-then-abort: exercises chain GC + gap-coverage
          // transfer under concurrency.
          auto txn = BeginSer(db.get());
          (void)txn->Insert(
              t, "tmp-" + std::to_string(ti) + "-" + std::to_string(it), "x");
          (void)txn->Abort();
        }
        if (it % 9 == 0) {
          // Serializable scans across everyone's keys: gap locks that
          // concurrent inserts and aborted-insert erases must honor.
          auto txn = BeginSer(db.get());
          uint64_t n = 0;
          if (txn->Count(t, "own-", "own-~", &n).ok()) (void)txn->Commit();
        }
        if (it % 14 == 0) {
          // Read a key that never exists: tuple-gap lock traffic.
          auto txn = BeginSer(db.get());
          std::string v;
          (void)txn->Get(t, "miss-" + std::to_string(it), &v);
          (void)txn->Commit();
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  // Every aborted insert was garbage-collected; every committed
  // increment is visible; the SIREAD tables mirror holder bookkeeping.
  EXPECT_EQ(db->IndexEntryCount(t), preloaded);
  EXPECT_EQ(db->LiveTupleChainCount(t), preloaded);
  auto r = db->Begin(
      {.isolation = IsolationLevel::kSerializable, .read_only = true});
  for (int ti = 0; ti < kThreads; ti++) {
    for (int j = 0; j < kKeysPerThread; j++) {
      std::string v;
      ASSERT_TRUE(r->Get(t, own_key(ti, j), &v).ok());
      EXPECT_EQ(atoi(v.c_str()), counts[ti][static_cast<size_t>(j)])
          << own_key(ti, j);
    }
  }
  ASSERT_TRUE(r->Commit().ok());
  EXPECT_TRUE(db->CheckSsiLockConsistency());
}

TEST(PredicateCoverageTest, StripedHeapStressDefaultStripes) {
  RunStripedHeapStress(kHeapStripes);
}

TEST(PredicateCoverageTest, StripedHeapStressSingleStripeBaseline) {
  RunStripedHeapStress(1);
}

}  // namespace
}  // namespace pgssi
