// TxnManager unit tests: atomic xid/commit-seq allocation, watermark
// publication through the completion ring, and the invariant the
// safe-snapshot / DEFERRABLE machinery relies on — a transaction absent
// from the active registry is already published, i.e. Commit blocks
// until its own seq is covered by the watermark.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <thread>
#include <vector>

#include "txn/txn_manager.h"

namespace pgssi::txn {
namespace {

TEST(TxnManagerTest, BeginAssignsMonotonicXidsAndTracksRw) {
  TxnManager m;
  auto a = m.Begin(/*serializable_rw=*/false);
  auto b = m.Begin(/*serializable_rw=*/true);
  EXPECT_LT(a.xid, b.xid);
  EXPECT_EQ(a.snapshot_seq, 0u);
  EXPECT_TRUE(m.AnyActiveSerializableRW());
  m.Abort(a.xid);
  m.Abort(b.xid);
  EXPECT_FALSE(m.AnyActiveSerializableRW());
}

TEST(TxnManagerTest, CommitPublishesBeforeReturning) {
  TxnManager m;
  auto a = m.Begin(true);
  uint64_t stamped = 0;
  uint64_t seq = m.Commit(a.xid, [&](uint64_t s) {
    stamped = s;
    return true;
  });
  EXPECT_EQ(stamped, seq);
  EXPECT_EQ(m.LastCommittedSeq(), seq);
  auto b = m.Begin(false);  // a later snapshot sees the published seq
  EXPECT_EQ(b.snapshot_seq, seq);
  m.Abort(b.xid);
}

// Regression (PR 4 review): a committer whose predecessor is still
// stamping must NOT deregister and return before its own seq is
// published. Otherwise a read-only SERIALIZABLE Begin could take an
// older snapshot, observe no active read-write transaction, and wrongly
// claim a safe snapshot while this committed-but-unpublished
// transaction is concurrent with it.
TEST(TxnManagerTest, CommitBlocksUntilOwnSeqIsPublished) {
  TxnManager m;
  auto p = m.Begin(/*serializable_rw=*/false);  // predecessor, stalls
  auto w = m.Begin(/*serializable_rw=*/true);
  std::atomic<bool> release{false};
  std::atomic<bool> w_done{false};
  std::atomic<bool> p_in_stamp{false};

  std::thread pt([&] {
    m.Commit(p.xid, [&](uint64_t) {
      p_in_stamp.store(true);
      while (!release.load()) std::this_thread::yield();
      return true;
    });
  });
  while (!p_in_stamp.load()) std::this_thread::yield();

  std::thread wt([&] {
    m.Commit(w.xid, nullptr);  // seq follows p's unpublished one
    w_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // w cannot have finished: its seq is after the gap p holds open. In
  // particular it must still be counted as an active read-write txn.
  EXPECT_FALSE(w_done.load());
  EXPECT_TRUE(m.AnyActiveSerializableRW());

  release.store(true);
  pt.join();
  wt.join();
  EXPECT_TRUE(w_done.load());
  EXPECT_EQ(m.LastCommittedSeq(), 2u);  // the gap-closer published both
  EXPECT_FALSE(m.AnyActiveSerializableRW());
}

// Regression (PR 6, WAL failure ordering): a stamp that FAILS (WAL
// append/fsync error) must return 0, publish its consumed seq as a
// no-op — the watermark moves past it instead of sticking forever —
// and leave the manager fully usable for the next commit.
TEST(TxnManagerTest, FailedStampPublishesSeqAndReturnsZero) {
  TxnManager m;
  auto a = m.Begin(true);
  EXPECT_EQ(m.Commit(a.xid, [](uint64_t) { return false; }), 0u);
  // The seq was consumed-but-unused; the watermark covers it.
  EXPECT_EQ(m.LastCommittedSeq(), 1u);
  EXPECT_FALSE(m.AnyActiveSerializableRW());  // deregistered all the same

  // A successor blocked behind the failed seq is released normally.
  auto b = m.Begin(false);
  uint64_t stamped = 0;
  uint64_t seq = m.Commit(b.xid, [&](uint64_t s) {
    stamped = s;
    return true;
  });
  EXPECT_EQ(seq, 2u);
  EXPECT_EQ(stamped, 2u);
  EXPECT_EQ(m.LastCommittedSeq(), 2u);
}

TEST(TxnManagerTest, OldestActiveSnapshotAndWaitForFinish) {
  TxnManager m;
  auto a = m.Begin(true);
  m.Commit(a.xid, nullptr);  // seq 1
  auto b = m.Begin(true);    // snapshot 1
  auto c = m.Begin(false);
  EXPECT_EQ(m.OldestActiveSnapshot(), 1u);
  auto rw = m.ActiveSerializableRW();
  ASSERT_EQ(rw.size(), 1u);
  EXPECT_EQ(rw[0], b.xid);

  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    m.Commit(b.xid, nullptr);
  });
  m.WaitForFinish({b.xid});  // returns only once b is gone
  t.join();
  m.Abort(c.xid);
  EXPECT_EQ(m.OldestActiveSnapshot(), std::numeric_limits<uint64_t>::max());
}

// Regression for the O(1) cached-minimum OldestActiveSnapshot: the
// cleanup bound must never pass a concurrent Begin. Every active
// transaction checks, from its own thread, that no bound computed while
// it is registered exceeds its snapshot — i.e. the lock-free shard
// minimum can be conservative but never misses a live registration.
TEST(TxnManagerTest, CleanupBoundNeverPassesConcurrentBegin) {
  TxnManager m;
  {
    auto seed = m.Begin(false);
    m.Commit(seed.xid, nullptr);  // nonzero watermark
  }
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> violations{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; i++) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto r = m.Begin(false);
        // While we are active, OldestActiveSnapshot <= our snapshot, so
        // any cleanup bound computed NOW must not exceed it.
        for (int j = 0; j < 4; j++) {
          if (m.CleanupBound() > r.snapshot_seq) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
        m.Commit(r.xid, nullptr);
      }
    });
  }
  // A dedicated cleaner hammering the bound while Begins race it.
  std::thread cleaner([&] {
    while (!stop.load(std::memory_order_acquire)) (void)m.CleanupBound();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  cleaner.join();
  EXPECT_EQ(violations.load(), 0u);
}

}  // namespace
}  // namespace pgssi::txn
