#include "ssi/siread_lock_manager.h"

#include <algorithm>
#include <limits>

namespace pgssi::ssi {
namespace {
constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();
constexpr size_t kMaxPartitions = 1024;

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

uint64_t MixHash(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

void DeleteXact(void* p) { delete static_cast<SerializableXact*>(p); }
void DeleteHolderSet(void* p) {
  delete static_cast<std::unordered_set<SerializableXact*>*>(p);
}
}  // namespace

SireadLockManager::SireadLockManager(const EngineConfig& cfg,
                                     util::EpochManager* epoch)
    : cfg_(cfg),
      fine_locking_(cfg.conflict_lock_mode != 0),
      epoch_(epoch),
      epoch_mode_(cfg.epoch_reclaim != 0 && epoch != nullptr),
      partition_count_(RoundUpPow2(std::min<size_t>(
          kMaxPartitions, std::max<uint32_t>(1, cfg.lock_partitions)))),
      partition_mask_(partition_count_ - 1),
      partitions_(new Partition[partition_count_]),
      xact_shards_(new XactShard[kXactShards]),
      min_committed_seq_(kInf) {}

SireadLockManager::~SireadLockManager() {
  // Destruction contract: quiesced. Anything already handed to the
  // epoch limbo is freed by the EpochManager; everything still linked
  // here is freed directly.
  for (size_t i = 0; i < partition_count_; ++i) {
    Partition& p = partitions_[i];
    for (auto& [k, s] : p.tuple_locks) delete s;
    for (auto& [k, s] : p.page_locks) delete s;
    for (auto& [k, s] : p.rel_locks) delete s;
  }
  for (size_t i = 0; i < kXactShards; ++i) {
    for (auto& [xid, x] : xact_shards_[i].map) delete x;
  }
}

// ---------------------------------------------------------------------------
// Conflict-graph locking guards (EngineConfig::conflict_lock_mode A/B)
//
// Fine mode: the registry lock is taken SHARED on the conflict path and
// the per-xact edge locks provide mutual exclusion, pairs always in
// ascending-xid order. Global mode: the registry lock is taken EXCLUSIVE
// everywhere and the edge guards are no-ops, reproducing the old
// one-mutex-around-everything design as an honest same-binary baseline.
//
// Pointer liveness across teardown differs by reclamation mode. Legacy
// (epoch_reclaim=0): teardown takes the registry exclusive, so holding
// it shared pins every resolved xact. Epoch mode: teardown runs under
// shard locks only, and liveness comes from PinGuard — a torn-down
// xact's memory sits in the grace-period limbo until every pin taken
// before its retire has been released.
// ---------------------------------------------------------------------------

class SireadLockManager::RegistryReadLock {
 public:
  explicit RegistryReadLock(const SireadLockManager* m) : m_(m) {
    if (m_->fine_locking_) {
      m_->registry_mu_.lock_shared();
    } else {
      m_->registry_mu_.lock();
      m_->registry_exclusive_acquires_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ~RegistryReadLock() {
    if (m_->fine_locking_) {
      m_->registry_mu_.unlock_shared();
    } else {
      m_->registry_mu_.unlock();
    }
  }
  RegistryReadLock(const RegistryReadLock&) = delete;
  RegistryReadLock& operator=(const RegistryReadLock&) = delete;

 private:
  const SireadLockManager* m_;
};

class SireadLockManager::EdgeLock {
 public:
  EdgeLock(const SireadLockManager* m, SerializableXact* x)
      : x_(m->fine_locking_ ? x : nullptr) {
    if (x_) x_->edge_mu.lock();
  }
  ~EdgeLock() {
    if (x_) x_->edge_mu.unlock();
  }
  EdgeLock(const EdgeLock&) = delete;
  EdgeLock& operator=(const EdgeLock&) = delete;

 private:
  SerializableXact* x_;
};

class SireadLockManager::EdgePairLock {
 public:
  EdgePairLock(const SireadLockManager* m, SerializableXact* a,
               SerializableXact* b) {
    if (!m->fine_locking_) return;  // covered by the exclusive registry lock
    lo_ = a->xid <= b->xid ? a : b;
    hi_ = a->xid <= b->xid ? b : a;
    lo_->edge_mu.lock();
    if (hi_ != lo_) hi_->edge_mu.lock();
  }
  ~EdgePairLock() {
    if (lo_ == nullptr) return;
    if (hi_ != lo_) hi_->edge_mu.unlock();
    lo_->edge_mu.unlock();
  }
  EdgePairLock(const EdgePairLock&) = delete;
  EdgePairLock& operator=(const EdgePairLock&) = delete;

 private:
  SerializableXact* lo_ = nullptr;
  SerializableXact* hi_ = nullptr;
};

class SireadLockManager::PinGuard {
 public:
  explicit PinGuard(const SireadLockManager* m) {
    if (m->epoch_mode_) pin_.emplace(m->epoch_);
  }
  PinGuard(const PinGuard&) = delete;
  PinGuard& operator=(const PinGuard&) = delete;

 private:
  std::optional<util::EpochManager::Pin> pin_;
};

size_t SireadLockManager::PartitionIndex(RelationId rel, PageId page) const {
  return static_cast<size_t>(MixHash(
             static_cast<uint64_t>(rel) * 0x9E3779B97F4A7C15ULL ^ page)) &
         partition_mask_;
}

size_t SireadLockManager::PartitionIndexForRelation(RelationId rel) const {
  // Any deterministic partition works; spread relations with a distinct
  // stream so they don't pile onto the partition of some hot page.
  return static_cast<size_t>(
             MixHash(static_cast<uint64_t>(rel) + 0xC2B2AE3D27D4EB4FULL)) &
         partition_mask_;
}

SireadLockManager::XactShard& SireadLockManager::ShardFor(XactId xid) const {
  return xact_shards_[MixHash(xid) & (kXactShards - 1)];
}

void SireadLockManager::SyncOccupancy(Partition& p) const {
  p.mu.AssertHeld();
  p.occupancy.store(
      static_cast<int64_t>(p.tuple_locks.size() + p.page_locks.size() +
                           p.rel_locks.size()),
      std::memory_order_seq_cst);
}

void SireadLockManager::FreeHolderSet(HolderSet* s) {
  if (epoch_mode_) {
    epoch_->Retire(s, DeleteHolderSet);
  } else {
    delete s;
  }
}

SireadLockManager::HolderSet* SireadLockManager::GetOrCreate(
    std::map<TupleTag, HolderSet*>& m, const TupleTag& k) {
  auto [it, inserted] = m.try_emplace(k, nullptr);
  if (inserted) it->second = new HolderSet();
  return it->second;
}

SireadLockManager::HolderSet* SireadLockManager::GetOrCreate(
    std::map<std::pair<RelationId, PageId>, HolderSet*>& m,
    const std::pair<RelationId, PageId>& k) {
  auto [it, inserted] = m.try_emplace(k, nullptr);
  if (inserted) it->second = new HolderSet();
  return it->second;
}

SireadLockManager::HolderSet* SireadLockManager::GetOrCreate(
    std::unordered_map<RelationId, HolderSet*>& m, RelationId k) {
  auto [it, inserted] = m.try_emplace(k, nullptr);
  if (inserted) it->second = new HolderSet();
  return it->second;
}

SerializableXact* SireadLockManager::Register(XactId xid, uint64_t snapshot_seq,
                                              bool read_only) {
  auto* x = new SerializableXact();
  x->xid = xid;
  x->snapshot_seq = snapshot_seq;
  x->read_only = read_only;
  // Shared registry + one shard mutex: registration never needs the
  // global exclusive (legacy teardown's exclusive still excludes it).
  RegistryReadLock l(this);
  XactShard& sh = ShardFor(xid);
  std::lock_guard<CheckedMutex> sl(sh.mu);
  sh.map[xid] = x;
  return x;
}

SerializableXact* SireadLockManager::LookupXact(XactId xid) const {
  XactShard& sh = ShardFor(xid);
  std::lock_guard<CheckedMutex> sl(sh.mu);
  auto it = sh.map.find(xid);
  return it == sh.map.end() ? nullptr : it->second;
}

SerializableXact* SireadLockManager::Find(XactId xid) {
  RegistryReadLock l(this);
  return LookupXact(xid);
}

bool SireadLockManager::UnregisterFromShard(SerializableXact* x) {
  XactShard& sh = ShardFor(x->xid);
  std::lock_guard<CheckedMutex> sl(sh.mu);
  auto it = sh.map.find(x->xid);
  if (it == sh.map.end() || it->second != x) return false;
  sh.map.erase(it);
  return true;
}

void SireadLockManager::FreeXact(SerializableXact* x) {
  if (epoch_mode_) {
    epoch_->Retire(x, DeleteXact);
  } else {
    delete x;
  }
}

// ---------------------------------------------------------------------------
// SIREAD acquisition with tuple -> page -> relation promotion (Section 5.1)
//
// Fast path: one partition lock (tuple and page granules of a (rel, page)
// share a partition) plus the xact's held_mu spinlock. Escalation to
// relation granularity leaves the fast path and takes the relation's
// partition, then retires the finer locks partition by partition — the
// relation lock is installed FIRST, so coverage is never lost, and map
// entries are only ever removed together with their held-list twin, so
// the bookkeeping invariant holds at every instant.
// ---------------------------------------------------------------------------

bool SireadLockManager::PromoteTuplesToPageLocked(Partition& p, RelationId rel,
                                                  PageId page,
                                                  SerializableXact* x) {
  p.mu.AssertHeld();
  auto ht = x->held_tuples.find({rel, page});
  if (ht != x->held_tuples.end()) {
    for (uint32_t s : ht->second) EraseTupleHolder(p, rel, page, s, x);
    x->held_tuples.erase(ht);
  }
  page_promotions_.fetch_add(1, std::memory_order_relaxed);
  auto& pages = x->held_pages[rel];
  if (pages.insert(page).second) {
    GetOrCreate(p.page_locks, {rel, page})->insert(x);
  }
  return pages.size() > cfg_.max_pages_per_relation;
}

void SireadLockManager::EraseTupleHolder(Partition& p, RelationId rel,
                                         PageId page, uint32_t slot,
                                         SerializableXact* x) {
  p.mu.AssertHeld();
  auto it = p.tuple_locks.find({rel, page, slot});
  if (it == p.tuple_locks.end()) return;
  it->second->erase(x);
  if (it->second->empty()) {
    HolderSet* s = it->second;
    p.tuple_locks.erase(it);
    FreeHolderSet(s);
  }
}

void SireadLockManager::ErasePageHolder(Partition& p, RelationId rel,
                                        PageId page, SerializableXact* x) {
  p.mu.AssertHeld();
  auto it = p.page_locks.find({rel, page});
  if (it == p.page_locks.end()) return;
  it->second->erase(x);
  if (it->second->empty()) {
    HolderSet* s = it->second;
    p.page_locks.erase(it);
    FreeHolderSet(s);
  }
}

void SireadLockManager::EraseRelationHolder(Partition& p, RelationId rel,
                                            SerializableXact* x) {
  p.mu.AssertHeld();
  auto it = p.rel_locks.find(rel);
  if (it == p.rel_locks.end()) return;
  if (it->second->erase(x)) {
    rel_lock_count_.fetch_sub(1, std::memory_order_acq_rel);
  }
  if (it->second->empty()) {
    HolderSet* s = it->second;
    p.rel_locks.erase(it);
    FreeHolderSet(s);
  }
}

void SireadLockManager::AcquireTuple(SerializableXact* x, RelationId rel,
                                     PageId page, uint32_t slot) {
  if (x == nullptr || x->safe_snapshot.load(std::memory_order_relaxed) ||
      x->aborted.load(std::memory_order_relaxed)) {
    return;
  }
  bool need_relation_promotion = false;
  {
    Partition& p = PartitionFor(rel, page);
    std::lock_guard<CheckedMutex> pl(p.mu);
    std::lock_guard<SpinLock> hl(x->held_mu);
    if (x->defunct.load(std::memory_order_relaxed)) return;
    if (x->held_relations.count(rel)) return;  // covered by coarser lock
    auto hp = x->held_pages.find(rel);
    if (hp != x->held_pages.end() && hp->second.count(page)) return;

    auto& slots = x->held_tuples[{rel, page}];
    if (std::find(slots.begin(), slots.end(), slot) != slots.end()) return;
    slots.push_back(slot);
    GetOrCreate(p.tuple_locks, {rel, page, slot})->insert(x);

    if (slots.size() > cfg_.max_locks_per_page) {
      // Promote: replace this xact's tuple locks on the page with one page
      // lock (escalation never loses information, only precision).
      need_relation_promotion = PromoteTuplesToPageLocked(p, rel, page, x);
    }
    SyncOccupancy(p);
  }
  if (need_relation_promotion) {
    AcquireRelationInternal(x, rel, /*from_promotion=*/true);
  }
}

void SireadLockManager::AcquirePage(SerializableXact* x, RelationId rel,
                                    PageId page) {
  if (x == nullptr || x->safe_snapshot.load(std::memory_order_relaxed) ||
      x->aborted.load(std::memory_order_relaxed)) {
    return;
  }
  bool need_relation_promotion = false;
  {
    Partition& p = PartitionFor(rel, page);
    std::lock_guard<CheckedMutex> pl(p.mu);
    std::lock_guard<SpinLock> hl(x->held_mu);
    if (x->defunct.load(std::memory_order_relaxed)) return;
    if (x->held_relations.count(rel)) return;
    auto& pages = x->held_pages[rel];
    if (!pages.insert(page).second) return;
    GetOrCreate(p.page_locks, {rel, page})->insert(x);
    // Drop now-redundant tuple locks on this page (same partition).
    auto ht = x->held_tuples.find({rel, page});
    if (ht != x->held_tuples.end()) {
      for (uint32_t s : ht->second) EraseTupleHolder(p, rel, page, s, x);
      x->held_tuples.erase(ht);
    }
    need_relation_promotion = pages.size() > cfg_.max_pages_per_relation;
    SyncOccupancy(p);
  }
  if (need_relation_promotion) {
    AcquireRelationInternal(x, rel, /*from_promotion=*/true);
  }
}

void SireadLockManager::AcquireRelation(SerializableXact* x, RelationId rel) {
  if (x == nullptr || x->safe_snapshot.load(std::memory_order_relaxed) ||
      x->aborted.load(std::memory_order_relaxed)) {
    return;
  }
  AcquireRelationInternal(x, rel, /*from_promotion=*/false);
}

void SireadLockManager::AcquireRelationInternal(SerializableXact* x,
                                                RelationId rel,
                                                bool from_promotion) {
  {
    // Install the relation-granule lock first: from this instant probes of
    // any page in `rel` see x, so retiring the finer locks below can never
    // open a coverage gap.
    Partition& rp = PartitionForRelation(rel);
    std::lock_guard<CheckedMutex> pl(rp.mu);
    std::lock_guard<SpinLock> hl(x->held_mu);
    if (x->defunct.load(std::memory_order_relaxed)) return;
    if (!x->held_relations.insert(rel).second) return;  // already held
    GetOrCreate(rp.rel_locks, rel)->insert(x);
    rel_lock_count_.fetch_add(1, std::memory_order_acq_rel);
    SyncOccupancy(rp);
  }
  if (from_promotion) {
    relation_promotions_.fetch_add(1, std::memory_order_relaxed);
  }

  // Retire x's finer-granularity locks in this relation. They are spread
  // across partitions, so snapshot the keys and then remove each map
  // entry together with its held-list twin under (partition, held_mu).
  std::vector<PageId> page_keys;
  std::vector<PageId> tuple_pages;
  {
    std::lock_guard<SpinLock> hl(x->held_mu);
    auto hp = x->held_pages.find(rel);
    if (hp != x->held_pages.end()) {
      page_keys.assign(hp->second.begin(), hp->second.end());
    }
    for (const auto& [key, slots] : x->held_tuples) {
      if (key.first == rel) tuple_pages.push_back(key.second);
    }
  }
  for (PageId pg : page_keys) {
    Partition& p = PartitionFor(rel, pg);
    std::lock_guard<CheckedMutex> pl(p.mu);
    std::lock_guard<SpinLock> hl(x->held_mu);
    auto hp = x->held_pages.find(rel);
    if (hp != x->held_pages.end() && hp->second.erase(pg)) {
      if (hp->second.empty()) x->held_pages.erase(hp);
      ErasePageHolder(p, rel, pg, x);
    }
    SyncOccupancy(p);
  }
  for (PageId pg : tuple_pages) {
    Partition& p = PartitionFor(rel, pg);
    std::lock_guard<CheckedMutex> pl(p.mu);
    std::lock_guard<SpinLock> hl(x->held_mu);
    auto ht = x->held_tuples.find({rel, pg});
    if (ht != x->held_tuples.end()) {
      for (uint32_t s : ht->second) EraseTupleHolder(p, rel, pg, s, x);
      x->held_tuples.erase(ht);
    }
    SyncOccupancy(p);
  }
}

void SireadLockManager::ReleaseOwnTuple(SerializableXact* x, RelationId rel,
                                        PageId page, uint32_t slot) {
  if (x == nullptr) return;
  Partition& p = PartitionFor(rel, page);
  std::lock_guard<CheckedMutex> pl(p.mu);
  std::lock_guard<SpinLock> hl(x->held_mu);
  auto ht = x->held_tuples.find({rel, page});
  if (ht == x->held_tuples.end()) return;
  auto& slots = ht->second;
  auto sit = std::find(slots.begin(), slots.end(), slot);
  if (sit == slots.end()) return;
  slots.erase(sit);
  if (slots.empty()) x->held_tuples.erase(ht);
  EraseTupleHolder(p, rel, page, slot, x);
  SyncOccupancy(p);
}

ProbeResult SireadLockManager::ProbeHeapWrite(RelationId rel, PageId page,
                                              uint32_t slot) {
  ProbeResult r;
  auto add = [&r](const HolderSet& holders) {
    for (SerializableXact* h : holders) {
      // Holders stay reachable while we hold their partition's lock: the
      // releasing thread must sweep this partition (taking its mutex)
      // before the xact can be freed or retired — if the entry is still
      // here, the sweep (and therefore the retire) has not happened.
      // This holds in both reclamation modes. Skip holders already being
      // torn down.
      if (!h->aborted.load(std::memory_order_acquire) &&
          !h->defunct.load(std::memory_order_acquire)) {
        r.holder_xids.push_back(h->xid);
      }
    }
  };
  {
    Partition& p = PartitionFor(rel, page);
    // Lock-free probe-miss fast path: an empty partition cannot hold a
    // conflicting granule. The occupancy counter is republished (seq_cst)
    // at the end of every mutating critical section, so reading 0 here
    // linearizes the probe before whichever acquisition would first make
    // it nonzero — indistinguishable from taking the lock just before
    // that acquisition, which is a legal (and handled) interleaving.
    if (p.occupancy.load(std::memory_order_seq_cst) != 0) {
      std::lock_guard<CheckedMutex> pl(p.mu);
      auto t = p.tuple_locks.find({rel, page, slot});
      if (t != p.tuple_locks.end()) add(*t->second);
      auto pg = p.page_locks.find({rel, page});
      if (pg != p.page_locks.end()) add(*pg->second);
    }
  }
  // Relation granules live in their own partition; skip the second lock
  // while no relation lock exists anywhere. A relation lock appearing
  // concurrently cannot be missed for a conflicting access: conflicting
  // accesses to one tuple are serialized by its heap stripe (gap reads
  // vs inserts by the index latch), and escalation installs the coarse
  // relation lock — and bumps the count — before retiring fine locks.
  if (rel_lock_count_.load(std::memory_order_acquire) > 0) {
    Partition& rp = PartitionForRelation(rel);
    std::lock_guard<CheckedMutex> pl(rp.mu);
    auto rl = rp.rel_locks.find(rel);
    if (rl != rp.rel_locks.end()) add(*rl->second);
  }
  std::sort(r.holder_xids.begin(), r.holder_xids.end());
  r.holder_xids.erase(std::unique(r.holder_xids.begin(), r.holder_xids.end()),
                      r.holder_xids.end());
  return r;
}

void SireadLockManager::OnPageSplit(RelationId rel, PageId old_page,
                                    PageId new_page,
                                    const std::vector<uint32_t>& moved_slots) {
  const size_t oi = PartitionIndex(rel, old_page);
  const size_t ni = PartitionIndex(rel, new_page);
  Partition& P = partitions_[oi];
  Partition& Q = partitions_[ni];
  // Two partition locks in canonical index order — the only place the
  // manager nests them — so concurrent splits cannot deadlock.
  std::unique_lock<CheckedMutex> l1(partitions_[std::min(oi, ni)].mu);
  std::unique_lock<CheckedMutex> l2;
  if (oi != ni) {
    l2 = std::unique_lock<CheckedMutex>(partitions_[std::max(oi, ni)].mu);
  }

  for (uint32_t s : moved_slots) {
    auto it = P.tuple_locks.find({rel, old_page, s});
    if (it == P.tuple_locks.end()) continue;
    // Move, don't duplicate: the entry now lives only on the new page and
    // writers probe the index-reported coordinates, so nothing consults
    // the old granule again; a retained copy would only bloat holders'
    // bookkeeping and drift from the lock table.
    HolderSet* holders = it->second;
    P.tuple_locks.erase(it);
    for (SerializableXact* h : *holders) {
      std::lock_guard<SpinLock> hl(h->held_mu);
      auto ht = h->held_tuples.find({rel, old_page});
      if (ht != h->held_tuples.end()) {
        auto& slots = ht->second;
        slots.erase(std::remove(slots.begin(), slots.end(), s), slots.end());
        if (slots.empty()) h->held_tuples.erase(ht);
      }
      // A holder whose final release has begun is dropped, not moved:
      // its release sweep may already be past the new page's partition.
      if (h->defunct.load(std::memory_order_relaxed)) continue;
      GetOrCreate(Q.tuple_locks, {rel, new_page, s})->insert(h);
      h->held_tuples[{rel, new_page}].push_back(s);
    }
    FreeHolderSet(holders);
  }
  auto p = P.page_locks.find({rel, old_page});
  if (p != P.page_locks.end()) {
    // The iterated set is never mutated below (only the NEW page's set
    // and holders' bookkeeping), so iterate it in place.
    for (SerializableXact* h : *p->second) {
      std::lock_guard<SpinLock> hl(h->held_mu);
      if (h->defunct.load(std::memory_order_relaxed)) continue;
      if (h->held_pages[rel].insert(new_page).second) {
        GetOrCreate(Q.page_locks, {rel, new_page})->insert(h);
      }
    }
  }
  SyncOccupancy(P);
  if (oi != ni) SyncOccupancy(Q);
}

void SireadLockManager::OnGapTransfer(RelationId rel, PageId from_page,
                                      uint32_t from_slot, PageId to_page,
                                      uint32_t to_slot) {
  GapTransferInternal(rel, from_page, from_slot, to_page, to_slot,
                      /*to_page_granule=*/false);
}

void SireadLockManager::OnGapTransferToPage(RelationId rel, PageId from_page,
                                            uint32_t from_slot,
                                            PageId to_page) {
  GapTransferInternal(rel, from_page, from_slot, to_page, /*to_slot=*/0,
                      /*to_page_granule=*/true);
}

void SireadLockManager::GapTransferInternal(RelationId rel, PageId from_page,
                                            uint32_t from_slot, PageId to_page,
                                            uint32_t to_slot,
                                            bool to_page_granule) {
  const size_t fi = PartitionIndex(rel, from_page);
  const size_t ti = PartitionIndex(rel, to_page);
  Partition& F = partitions_[fi];
  Partition& T = partitions_[ti];
  // Same canonical-index-order nesting as OnPageSplit, so concurrent
  // structural transfers (other tables' splits) cannot deadlock.
  std::unique_lock<CheckedMutex> l1(partitions_[std::min(fi, ti)].mu);
  std::unique_lock<CheckedMutex> l2;
  if (fi != ti) {
    l2 = std::unique_lock<CheckedMutex>(partitions_[std::max(fi, ti)].mu);
  }

  // Candidates: tuple-granule holders of the source entry, plus — only
  // when the target page differs — page-granule holders of the source
  // page, whose coverage would otherwise stop at the page boundary.
  std::vector<SerializableXact*> candidates;
  if (auto it = F.tuple_locks.find({rel, from_page, from_slot});
      it != F.tuple_locks.end()) {
    candidates.assign(it->second->begin(), it->second->end());
  }
  if (from_page != to_page) {
    if (auto it = F.page_locks.find({rel, from_page});
        it != F.page_locks.end()) {
      candidates.insert(candidates.end(), it->second->begin(),
                        it->second->end());
    }
  }
  // A holder can appear through both sources; process it once.
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  for (SerializableXact* h : candidates) {
    if (h->aborted.load(std::memory_order_acquire)) continue;
    // A doomed holder can never commit, so no serializable execution
    // depends on its coverage: skip it instead of growing its granules.
    if (h->doomed.load(std::memory_order_acquire)) continue;
    std::lock_guard<SpinLock> hl(h->held_mu);
    // A holder whose final release has begun is dropped, not copied: its
    // release sweep may already be past the target partition.
    if (h->defunct.load(std::memory_order_relaxed)) continue;
    if (h->held_relations.count(rel)) continue;  // coarser lock covers it
    auto hp = h->held_pages.find(rel);
    const bool has_to_page =
        hp != h->held_pages.end() && hp->second.count(to_page);
    if (to_page_granule) {
      if (has_to_page) continue;
      h->held_pages[rel].insert(to_page);
      GetOrCreate(T.page_locks, {rel, to_page})->insert(h);
    } else {
      if (has_to_page) continue;  // page granule already covers the slot
      auto& slots = h->held_tuples[{rel, to_page}];
      if (std::find(slots.begin(), slots.end(), to_slot) != slots.end()) {
        continue;
      }
      slots.push_back(to_slot);
      GetOrCreate(T.tuple_locks, {rel, to_page, to_slot})->insert(h);
      if (slots.size() > cfg_.max_locks_per_page) {
        // Bound the growth a long-lived scanner over a hot insert range
        // would otherwise suffer — every insert into its gap copies its
        // coverage onto a new granule. Escalate to one page lock exactly
        // as AcquireTuple does; the page partition is T (already held).
        // Page->relation escalation is NOT chained here: it would need a
        // third partition lock while two are held, and the per-relation
        // growth is already bounded by pages * max_locks_per_page.
        (void)PromoteTuplesToPageLocked(T, rel, to_page, h);
      }
    }
  }
  SyncOccupancy(T);
  if (fi != ti) SyncOccupancy(F);
}

// ---------------------------------------------------------------------------
// Conflict graph + dangerous structures (Sections 3.1-3.3, 4)
//
// Edges form once per conflict and the dangerous-structure tests run
// once per edge or commit — orders of magnitude rarer than SIREAD
// traffic, which never touches these locks. Under fine-grained locking
// the path still scales with CONFLICT rate: an edge only locks its <=2
// parties (ascending xid) plus the registry SHARED, so edges on
// disjoint xact pairs proceed in parallel — and with epoch reclamation
// on, not even teardown serializes against it.
//
// Pointer-liveness argument (fine mode): while a thread holds x's edge
// lock, every neighbour reachable through x's edge lists stays
// allocated — retiring or freeing a neighbour n requires dissolving the
// (n, x) edge first, and that dissolve takes x's edge lock. Neighbour
// lifecycle fields read during the dangerous-structure tests
// (committed, commit_seq, read_only, snapshot_seq) are atomics or
// immutable, so neighbours' edge locks are never needed. Pointers
// resolved by xid (not reached through an edge list) are pinned by the
// shared registry lock in legacy mode and by an epoch pin in epoch
// mode.
// ---------------------------------------------------------------------------

void SireadLockManager::Doom(SerializableXact* x) {
  if (!x->doomed.exchange(true, std::memory_order_acq_rel)) {
    ssi_aborts_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool SireadLockManager::HasIn(const SerializableXact* x) const {
  AssertEdgeHeld(x);
  return x->sticky_in || !x->in_edges.empty();
}

bool SireadLockManager::HasOutAny(const SerializableXact* x) const {
  AssertEdgeHeld(x);
  return x->sticky_out || !x->out_edges.empty();
}

bool SireadLockManager::HasOutCommittedBefore(const SerializableXact* x,
                                              uint64_t seq) const {
  AssertEdgeHeld(x);
  if (x->sticky_out_commit_seq < seq) return true;  // kNoStickySeq: never
  for (const SerializableXact* o : x->out_edges) {
    if (o->committed.load(std::memory_order_relaxed) &&
        o->commit_seq.load(std::memory_order_relaxed) < seq) {
      return true;
    }
  }
  return false;
}

void SireadLockManager::FlagRwConflict(SerializableXact* reader,
                                       SerializableXact* writer) {
  if (reader == nullptr || writer == nullptr || reader == writer) return;
  PinGuard pg(this);
  RegistryReadLock l(this);
  EdgePairLock el(this, reader, writer);
  FlagRwConflictLocked(reader, writer);
}

void SireadLockManager::FlagRwConflictWithWriter(SerializableXact* reader,
                                                 XactId writer_xid) {
  if (reader == nullptr) return;
  // Liveness of the resolved pointer across the whole flagging: the
  // epoch pin (epoch mode) or the shared registry lock (legacy, where
  // teardown needs the registry exclusive). The pin must cover the
  // resolution itself — a pointer resolved before pinning could already
  // be past its grace period.
  PinGuard pg(this);
  RegistryReadLock l(this);
  SerializableXact* writer = LookupXact(writer_xid);
  if (writer == nullptr) return;  // non-serializable or already cleaned
  if (writer == reader) return;
  EdgePairLock el(this, reader, writer);
  FlagRwConflictLocked(reader, writer);
}

void SireadLockManager::FlagRwConflictWithReader(XactId reader_xid,
                                                 SerializableXact* writer) {
  if (writer == nullptr) return;
  PinGuard pg(this);
  RegistryReadLock l(this);
  SerializableXact* reader = LookupXact(reader_xid);
  if (reader == nullptr) return;
  if (reader == writer) return;
  EdgePairLock el(this, reader, writer);
  FlagRwConflictLocked(reader, writer);
}

void SireadLockManager::FlagRwConflictLocked(SerializableXact* reader,
                                             SerializableXact* writer) {
  if (reader == nullptr || writer == nullptr || reader == writer) return;
  AssertEdgeHeld(reader);
  AssertEdgeHeld(writer);
  if (reader->aborted.load(std::memory_order_relaxed) ||
      writer->aborted.load(std::memory_order_relaxed)) {
    return;
  }
  // A defunct party is mid-teardown: its edges are being dissolved (or
  // about to be) without the exclusive registry lock in epoch mode, so
  // adding one now could strand a dangling partner pointer. Skipping is
  // sound — it is observationally the interleaving where this flagging
  // ran after the teardown erased the xact from the registry, which the
  // xid-resolving paths already produce.
  if (reader->defunct.load(std::memory_order_acquire) ||
      writer->defunct.load(std::memory_order_acquire)) {
    return;
  }
  if (reader->safe_snapshot.load(std::memory_order_relaxed)) return;
  if (reader->out_edges.count(writer)) return;  // already recorded

  if (cfg_.enable_read_only_opt && reader->read_only &&
      writer->committed.load(std::memory_order_relaxed)) {
    // Section 4: an edge from a read-only reader matters only when the
    // writer (the would-be pivot) has an out-edge to a transaction that
    // committed before the reader's snapshot (i.e. visible to it — hence
    // the +1 on the exclusive bound). The skip is only sound once the
    // writer has committed — its out-edge set is final then; for an
    // in-flight writer the edge must be recorded and the per-reader
    // bound applied later by DangerousPivot.
    uint64_t bound = reader->snapshot_seq + 1;
    uint64_t wseq = writer->commit_seq.load(std::memory_order_relaxed);
    if (wseq != 0 && wseq < bound) {
      bound = wseq;  // T3 must also precede the pivot
    }
    if (!HasOutCommittedBefore(writer, bound)) return;
    // The committed pivot's structure is already dangerous for this
    // reader; the reader is the only abortable party left.
    Doom(reader);
    return;
  }

  reader->out_edges.insert(writer);
  writer->in_edges.insert(reader);
  MaybeDoomOnEdge(reader, writer);
}

bool SireadLockManager::DangerousPivot(const SerializableXact* x,
                                       uint64_t pivot_bound) const {
  AssertEdgeHeld(x);
  // x is a dangerous pivot if some in-neighbour R and some committed
  // out-neighbour exist with the out-commit preceding `pivot_bound`
  // (commit-ordering opt) — and, for a declared read-only R under the
  // Section 4 optimization, also preceding R's snapshot.
  if (x->sticky_in && HasOutCommittedBefore(x, pivot_bound)) return true;
  for (const SerializableXact* r : x->in_edges) {
    uint64_t bound = pivot_bound;
    if (cfg_.enable_read_only_opt && r->read_only) {
      bound = std::min(bound, r->snapshot_seq + 1);
    }
    if (HasOutCommittedBefore(x, bound)) return true;
  }
  return false;
}

void SireadLockManager::MaybeDoomOnEdge(SerializableXact* reader,
                                        SerializableXact* writer) {
  // Writer just gained an in-edge: is it a pivot whose dangerous structure
  // is already unavoidable (its out-neighbour committed first)?
  // A commit-pending xact (committed, seq still 0) is treated as having
  // committed "now": bound at infinity, conservatively.
  const bool writer_committed = writer->committed.load(std::memory_order_relaxed);
  const uint64_t writer_seq = writer->commit_seq.load(std::memory_order_relaxed);
  uint64_t writer_bound = writer_committed && writer_seq != 0 ? writer_seq : kInf;
  if (DangerousPivot(writer, writer_bound)) {
    if (!writer_committed) {
      Doom(writer);
    } else if (!reader->committed.load(std::memory_order_relaxed)) {
      // The pivot already committed; the only transaction still abortable
      // is the incoming reader.
      Doom(reader);
    }
    return;
  }
  if (!cfg_.enable_commit_ordering_opt &&
      reader->committed.load(std::memory_order_relaxed) && HasIn(reader) &&
      !writer_committed) {
    // Without the commit-ordering refinement, a committed pivot dooms the
    // overwriting transaction regardless of commit order.
    Doom(writer);
    return;
  }
  if (!cfg_.enable_safe_retry && !writer_committed && HasIn(writer) &&
      HasOutAny(writer)) {
    // Eager victim policy: abort the pivot as soon as the structure forms,
    // even though its partners are still in flight and a retry may hit the
    // same conflict again (Section 5.4 discusses why this is wasteful).
    Doom(writer);
  }
}

Status SireadLockManager::PreCommit(SerializableXact* x) {
  if (!fine_locking_) {
    std::unique_lock<std::shared_mutex> l(registry_mu_);
    registry_exclusive_acquires_.fetch_add(1, std::memory_order_relaxed);
    return PreCommitLocked(x);
  }
  // Fine mode: only x's own edge lock. The dangerous-structure test
  // reads x's edge lists (guarded by edge_mu) plus neighbour lifecycle
  // atomics, and neighbours cannot be freed from under us in either
  // reclamation mode (see the liveness argument at the top of this
  // section — dissolution requires x's edge lock, and retire follows
  // dissolution). No registry lock: x is the caller's own transaction,
  // so it cannot be torn down here.
  std::lock_guard<CheckedMutex> el(x->edge_mu);
  return PreCommitLocked(x);
}

Status SireadLockManager::PreCommitLocked(SerializableXact* x) {
  AssertEdgeHeld(x);
  if (x->doomed.load(std::memory_order_relaxed)) {
    return Status::SerializationFailure(
        "canceled due to rw-antidependency conflict (doomed)");
  }
  bool hazard;
  if (cfg_.enable_commit_ordering_opt) {
    hazard = DangerousPivot(x, kInf);
  } else {
    hazard = HasIn(x) && HasOutAny(x);
  }
  if (hazard) {
    ssi_aborts_.fetch_add(1, std::memory_order_relaxed);
    return Status::SerializationFailure(
        "canceled on commit: pivot in dangerous structure");
  }
  // Passed: mark commit-pending NOW, under the same lock as the check.
  // Without this, an edge formed between the check and MarkCommitted
  // could doom this xact after it is already past its last doomed-flag
  // inspection — and both sides of the dangerous structure would commit.
  // Marking it committed makes any such concurrent edge doom the other
  // party instead (this transaction is certain to commit first).
  //
  // Re-proof under per-xact edge locks: every edge formation involving x
  // — as reader or writer — locks x's edge_mu (EdgePairLock covers both
  // parties), and this check-then-mark runs entirely under that same
  // lock. So any concurrent edge either completed before the lock was
  // taken (the test above sees it) or starts after the store below (its
  // MaybeDoomOnEdge observes committed==true and dooms the other party).
  // The window the old global mutex closed stays closed.
  x->committed.store(true, std::memory_order_release);
  return Status::OK();
}

void SireadLockManager::MarkCommitted(SerializableXact* x,
                                      uint64_t commit_seq) {
  if (epoch_mode_) {
    // The shard mutex both orders the commit-seq store against epoch
    // Cleanup's shard scan (the scan holds it) and makes the per-shard
    // floor ratchet race-free against the scan's exact recompute — the
    // legacy design needed the whole registry lock for the same pair of
    // guarantees.
    XactShard& sh = ShardFor(x->xid);
    std::lock_guard<CheckedMutex> sl(sh.mu);
    x->committed.store(true, std::memory_order_relaxed);
    x->commit_seq.store(commit_seq, std::memory_order_release);
    const uint64_t cur = sh.min_committed.load(std::memory_order_relaxed);
    if (commit_seq < cur) {
      sh.min_committed.store(commit_seq, std::memory_order_release);
    }
    return;
  }
  // The shared registry lock (exclusive in global mode) is what makes
  // the min ratchet below safe against Cleanup's exact recompute: the
  // recompute runs under the exclusive registry lock, so it cannot scan
  // this xact while still commit-pending and then clobber the ratchet —
  // either it sees the seq stored here, or this whole block runs after.
  RegistryReadLock l(this);
  x->committed.store(true, std::memory_order_relaxed);
  x->commit_seq.store(commit_seq, std::memory_order_release);
  uint64_t cur = min_committed_seq_.load(std::memory_order_relaxed);
  while (commit_seq < cur &&
         !min_committed_seq_.compare_exchange_weak(
             cur, commit_seq, std::memory_order_acq_rel)) {
  }
}

void SireadLockManager::DissolveEdges(SerializableXact* x, bool make_sticky) {
  // Snapshot x's lists under x's edge lock. Legacy teardown holds the
  // registry exclusive, so the snapshot is trivially complete. Epoch
  // mode: x is aborted or defunct by now, and FlagRwConflictLocked
  // checks both flags under the pair's edge locks — so any edge added
  // concurrently either completed before this snapshot (we see it) or
  // its flagger, serialized after us on x's edge_mu, observes the flag
  // and backs off. After the snapshot the lists can only shrink
  // (partners dissolving themselves), which the erase-checks below
  // tolerate.
  std::vector<SerializableXact*> outs;
  std::vector<SerializableXact*> ins;
  {
    EdgeLock el(this, x);
    outs.assign(x->out_edges.begin(), x->out_edges.end());
    ins.assign(x->in_edges.begin(), x->in_edges.end());
  }
  const bool x_committed = x->committed.load(std::memory_order_relaxed);
  const uint64_t x_seq = x->commit_seq.load(std::memory_order_relaxed);
  for (SerializableXact* o : outs) {
    EdgePairLock el(this, x, o);
    if (fine_locking_ && x->out_edges.erase(o) == 0) {
      continue;  // the partner dissolved this edge first
    }
    o->in_edges.erase(x);
    if (make_sticky && x_committed) o->sticky_in = true;
  }
  for (SerializableXact* i : ins) {
    EdgePairLock el(this, x, i);
    if (fine_locking_ && x->in_edges.erase(i) == 0) continue;
    i->out_edges.erase(x);
    if (make_sticky && x_committed) {
      PGSSI_DCHECK(x_seq != 0);  // only Cleanup makes sticky: seq assigned
      i->sticky_out = true;
      i->sticky_out_commit_seq = std::min(i->sticky_out_commit_seq, x_seq);
    }
  }
  EdgeLock el(this, x);
  x->out_edges.clear();
  x->in_edges.clear();
}

void SireadLockManager::ReleaseAllLocks(SerializableXact* x) {
  decltype(x->held_tuples) tuples;
  decltype(x->held_pages) pages;
  decltype(x->held_relations) rels;
  {
    // Marking defunct and emptying the held lists is one atomic step:
    // any page split that observed x NOT defunct finished its held-list
    // update before this (so the swap captures it); any later split sees
    // defunct and drops x instead of re-adding it.
    std::lock_guard<SpinLock> hl(x->held_mu);
    x->defunct.store(true, std::memory_order_release);
    tuples.swap(x->held_tuples);
    pages.swap(x->held_pages);
    rels.swap(x->held_relations);
  }
  for (const auto& [key, slots] : tuples) {
    Partition& p = PartitionFor(key.first, key.second);
    std::lock_guard<CheckedMutex> pl(p.mu);
    for (uint32_t s : slots) {
      EraseTupleHolder(p, key.first, key.second, s, x);
    }
    SyncOccupancy(p);
  }
  for (const auto& [rel, pgs] : pages) {
    for (PageId pg : pgs) {
      Partition& p = PartitionFor(rel, pg);
      std::lock_guard<CheckedMutex> pl(p.mu);
      ErasePageHolder(p, rel, pg, x);
      SyncOccupancy(p);
    }
  }
  for (RelationId rel : rels) {
    Partition& rp = PartitionForRelation(rel);
    std::lock_guard<CheckedMutex> pl(rp.mu);
    EraseRelationHolder(rp, rel, x);
    SyncOccupancy(rp);
  }
}

void SireadLockManager::Abort(SerializableXact* x) {
  x->aborted.store(true, std::memory_order_release);
  ReleaseAllLocks(x);
  if (!epoch_mode_) {
    SerializableXact* owned = nullptr;
    {
      std::unique_lock<std::shared_mutex> l(registry_mu_);
      registry_exclusive_acquires_.fetch_add(1, std::memory_order_relaxed);
      DissolveEdges(x, /*make_sticky=*/false);
      XactShard& sh = ShardFor(x->xid);
      std::lock_guard<CheckedMutex> sl(sh.mu);
      auto it = sh.map.find(x->xid);
      if (it != sh.map.end() && it->second == x) {
        owned = x;  // frees below; no-op for stack xacts
        sh.map.erase(it);
      }
    }
    delete owned;
    return;
  }
  // Epoch mode: unlink from the registry shard first (flaggers can no
  // longer resolve the xid; ones that already did are pinned and will
  // observe aborted/defunct under the edge locks), dissolve under the
  // shared registry lock + a pin (partners mid-teardown themselves stay
  // dereferenceable through the pin), and retire the memory. No
  // exclusive registry acquisition anywhere on this path.
  const bool registered = UnregisterFromShard(x);
  {
    RegistryReadLock l(this);
    PinGuard pg(this);
    DissolveEdges(x, /*make_sticky=*/false);
  }
  if (registered) FreeXact(x);
  epoch_->AmortizedTick();
}

void SireadLockManager::Cleanup(uint64_t oldest_active_snapshot_seq) {
  if (!epoch_mode_) {
    // Fast out: nothing committed early enough to be freeable. The hint
    // is conservative (monotone min maintained by MarkCommitted,
    // recomputed exactly whenever xacts are freed), so a skipped cleanup
    // is always retried by the next caller once something is freeable.
    if (min_committed_seq_.load(std::memory_order_acquire) >
        oldest_active_snapshot_seq) {
      return;
    }
    std::vector<SerializableXact*> dead;
    {
      std::unique_lock<std::shared_mutex> l(registry_mu_);
      registry_exclusive_acquires_.fetch_add(1, std::memory_order_relaxed);
      uint64_t min_seq = kInf;
      for (size_t i = 0; i < kXactShards; ++i) {
        XactShard& sh = xact_shards_[i];
        std::lock_guard<CheckedMutex> sl(sh.mu);
        for (auto it = sh.map.begin(); it != sh.map.end();) {
          SerializableXact* x = it->second;
          const uint64_t seq = x->commit_seq.load(std::memory_order_relaxed);
          // commit_seq == 0 means commit-pending: not freeable yet.
          if (x->committed.load(std::memory_order_relaxed) && seq != 0 &&
              seq <= oldest_active_snapshot_seq) {
            DissolveEdges(x, /*make_sticky=*/true);
            dead.push_back(x);
            it = sh.map.erase(it);
          } else {
            if (x->committed.load(std::memory_order_relaxed) && seq != 0) {
              min_seq = std::min(min_seq, seq);
            }
            ++it;
          }
        }
      }
      // Exact recompute over the survivors: without this the hint would
      // stay at the retired floor forever and the early-out above would
      // never fire again. Safe against concurrent MarkCommitted ratchets
      // because those hold the registry lock shared.
      min_committed_seq_.store(min_seq, std::memory_order_release);
    }
    // Lock release happens outside the registry lock: the partition sweep
    // synchronizes with concurrent probes/splits, which is all that is
    // needed before freeing.
    for (SerializableXact* x : dead) {
      ReleaseAllLocks(x);
      delete x;
    }
    return;
  }

  // Epoch mode. Drive the limbo on every call — index GC and granule
  // sets wait on epoch advancement even when no xact is freeable.
  epoch_->TryAdvanceAndSweep();
  if (min_committed_seq_hint() > oldest_active_snapshot_seq) return;

  // Phase 1: unlink candidates shard by shard. Holding only the shard
  // mutex, recompute that shard's committed floor exactly — concurrent
  // MarkCommitted ratchets for this shard take the same mutex, so the
  // recompute cannot clobber a commit it did not see.
  std::vector<SerializableXact*> dead;
  for (size_t i = 0; i < kXactShards; ++i) {
    XactShard& sh = xact_shards_[i];
    std::lock_guard<CheckedMutex> sl(sh.mu);
    uint64_t min_seq = kInf;
    for (auto it = sh.map.begin(); it != sh.map.end();) {
      SerializableXact* x = it->second;
      const uint64_t seq = x->commit_seq.load(std::memory_order_relaxed);
      if (x->committed.load(std::memory_order_relaxed) && seq != 0 &&
          seq <= oldest_active_snapshot_seq) {
        dead.push_back(x);
        it = sh.map.erase(it);
      } else {
        if (x->committed.load(std::memory_order_relaxed) && seq != 0) {
          min_seq = std::min(min_seq, seq);
        }
        ++it;
      }
    }
    sh.min_committed.store(min_seq, std::memory_order_release);
  }
  if (dead.empty()) return;

  // Phase 2: release SIREAD locks FIRST — this sets defunct, the
  // barrier that stops new edges from landing on a candidate — then
  // dissolve edges into sticky summaries under a pin (partners being
  // torn down concurrently stay dereferenceable), and hand the memory
  // to the limbo.
  for (SerializableXact* x : dead) ReleaseAllLocks(x);
  {
    RegistryReadLock l(this);
    PinGuard pg(this);
    for (SerializableXact* x : dead) {
      DissolveEdges(x, /*make_sticky=*/true);
    }
  }
  for (SerializableXact* x : dead) FreeXact(x);
  epoch_->TryAdvanceAndSweep();
}

bool SireadLockManager::CommittedWithDangerousOut(XactId xid,
                                                  uint64_t snapshot_seq) {
  PinGuard pg(this);
  RegistryReadLock l(this);
  SerializableXact* x = LookupXact(xid);
  if (x == nullptr) return false;  // cleaned up => no longer relevant
  if (!x->committed.load(std::memory_order_relaxed)) return false;
  EdgeLock el(this, x);
  return HasOutCommittedBefore(x, snapshot_seq + 1);
}

uint64_t SireadLockManager::min_committed_seq_hint() const {
  if (!epoch_mode_) {
    return min_committed_seq_.load(std::memory_order_acquire);
  }
  uint64_t m = kInf;
  for (size_t i = 0; i < kXactShards; ++i) {
    m = std::min(m,
                 xact_shards_[i].min_committed.load(std::memory_order_acquire));
  }
  return m;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

bool SireadLockManager::HoldsTupleLock(const SerializableXact* x,
                                       RelationId rel, PageId page,
                                       uint32_t slot) const {
  Partition& p = PartitionFor(rel, page);
  std::lock_guard<CheckedMutex> pl(p.mu);
  auto it = p.tuple_locks.find({rel, page, slot});
  return it != p.tuple_locks.end() &&
         it->second->count(const_cast<SerializableXact*>(x));
}

bool SireadLockManager::HoldsPageLock(const SerializableXact* x,
                                      RelationId rel, PageId page) const {
  Partition& p = PartitionFor(rel, page);
  std::lock_guard<CheckedMutex> pl(p.mu);
  auto it = p.page_locks.find({rel, page});
  return it != p.page_locks.end() &&
         it->second->count(const_cast<SerializableXact*>(x));
}

bool SireadLockManager::HoldsRelationLock(const SerializableXact* x,
                                          RelationId rel) const {
  Partition& rp = PartitionForRelation(rel);
  std::lock_guard<CheckedMutex> pl(rp.mu);
  auto it = rp.rel_locks.find(rel);
  return it != rp.rel_locks.end() &&
         it->second->count(const_cast<SerializableXact*>(x));
}

size_t SireadLockManager::RegisteredCount() const {
  RegistryReadLock l(this);
  size_t n = 0;
  for (size_t i = 0; i < kXactShards; ++i) {
    std::lock_guard<CheckedMutex> sl(xact_shards_[i].mu);
    n += xact_shards_[i].map.size();
  }
  return n;
}

size_t SireadLockManager::TupleLockCount() const {
  size_t n = 0;
  for (size_t i = 0; i < partition_count_; i++) {
    std::lock_guard<CheckedMutex> pl(partitions_[i].mu);
    n += partitions_[i].tuple_locks.size();
  }
  return n;
}

size_t SireadLockManager::PageLockCount() const {
  size_t n = 0;
  for (size_t i = 0; i < partition_count_; i++) {
    std::lock_guard<CheckedMutex> pl(partitions_[i].mu);
    n += partitions_[i].page_locks.size();
  }
  return n;
}

size_t SireadLockManager::RelationLockCount() const {
  size_t n = 0;
  for (size_t i = 0; i < partition_count_; i++) {
    std::lock_guard<CheckedMutex> pl(partitions_[i].mu);
    n += partitions_[i].rel_locks.size();
  }
  return n;
}

size_t SireadLockManager::TotalLockCount() const {
  size_t n = 0;
  for (size_t i = 0; i < partition_count_; i++) {
    std::lock_guard<CheckedMutex> pl(partitions_[i].mu);
    n += partitions_[i].tuple_locks.size() + partitions_[i].page_locks.size() +
         partitions_[i].rel_locks.size();
  }
  return n;
}

bool SireadLockManager::CheckConsistency() const {
  std::unique_lock<std::shared_mutex> xl(registry_mu_);
  registry_exclusive_acquires_.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::unique_lock<CheckedMutex>> shard_locks;
  shard_locks.reserve(kXactShards);
  for (size_t i = 0; i < kXactShards; ++i) {
    shard_locks.emplace_back(xact_shards_[i].mu);
  }
  std::vector<std::unique_lock<CheckedMutex>> locks;
  locks.reserve(partition_count_);
  for (size_t i = 0; i < partition_count_; i++) {
    locks.emplace_back(partitions_[i].mu);
  }
  bool ok = true;
  int64_t rel_entries = 0;
  // Forward: every lock-table entry is mirrored in its holder's held
  // lists (and hashed to the right partition), and the published
  // occupancy matches the maps.
  for (size_t i = 0; i < partition_count_; i++) {
    const Partition& p = partitions_[i];
    const int64_t entries =
        static_cast<int64_t>(p.tuple_locks.size() + p.page_locks.size() +
                             p.rel_locks.size());
    if (p.occupancy.load(std::memory_order_relaxed) != entries) ok = false;
    for (const auto& [tag, holders] : p.tuple_locks) {
      if (PartitionIndex(tag.rel, tag.page) != i) ok = false;
      for (SerializableXact* h : *holders) {
        std::lock_guard<SpinLock> hl(h->held_mu);
        auto ht = h->held_tuples.find({tag.rel, tag.page});
        if (ht == h->held_tuples.end() ||
            std::find(ht->second.begin(), ht->second.end(), tag.slot) ==
                ht->second.end()) {
          ok = false;
        }
      }
    }
    for (const auto& [key, holders] : p.page_locks) {
      if (PartitionIndex(key.first, key.second) != i) ok = false;
      for (SerializableXact* h : *holders) {
        std::lock_guard<SpinLock> hl(h->held_mu);
        auto hp = h->held_pages.find(key.first);
        if (hp == h->held_pages.end() || !hp->second.count(key.second)) {
          ok = false;
        }
      }
    }
    for (const auto& [rel, holders] : p.rel_locks) {
      if (PartitionIndexForRelation(rel) != i) ok = false;
      rel_entries += static_cast<int64_t>(holders->size());
      for (SerializableXact* h : *holders) {
        std::lock_guard<SpinLock> hl(h->held_mu);
        if (!h->held_relations.count(rel)) ok = false;
      }
    }
  }
  if (rel_entries != rel_lock_count_.load(std::memory_order_relaxed)) {
    ok = false;
  }
  // Reverse: every registered xact's held entry exists in the tables.
  for (size_t si = 0; si < kXactShards; ++si) {
    for (const auto& [xid, x] : xact_shards_[si].map) {
      std::lock_guard<SpinLock> hl(x->held_mu);
      for (const auto& [key, slots] : x->held_tuples) {
        const Partition& p =
            partitions_[PartitionIndex(key.first, key.second)];
        for (uint32_t s : slots) {
          auto it = p.tuple_locks.find({key.first, key.second, s});
          if (it == p.tuple_locks.end() || !it->second->count(x)) {
            ok = false;
          }
        }
      }
      for (const auto& [rel, pgs] : x->held_pages) {
        for (PageId pg : pgs) {
          const Partition& p = partitions_[PartitionIndex(rel, pg)];
          auto it = p.page_locks.find({rel, pg});
          if (it == p.page_locks.end() || !it->second->count(x)) ok = false;
        }
      }
      for (RelationId rel : x->held_relations) {
        const Partition& p = partitions_[PartitionIndexForRelation(rel)];
        auto it = p.rel_locks.find(rel);
        if (it == p.rel_locks.end() || !it->second->count(x)) ok = false;
      }
    }
  }
  // Conflict-graph invariants (at a quiescent point nothing mutates the
  // lists; the registry + shard locks exclude registration/teardown):
  // each edge is mirrored by its partner, partners of live edges are
  // themselves registered, and the sticky commit-seq is either the
  // sentinel or a real (nonzero) sequence number.
  std::unordered_set<const SerializableXact*> registered;
  for (size_t si = 0; si < kXactShards; ++si) {
    for (const auto& [xid, x] : xact_shards_[si].map) registered.insert(x);
  }
  for (size_t si = 0; si < kXactShards; ++si) {
    for (const auto& [xid, x] : xact_shards_[si].map) {
      for (SerializableXact* o : x->out_edges) {
        if (!registered.count(o) || !o->in_edges.count(x)) ok = false;
      }
      for (SerializableXact* i : x->in_edges) {
        if (!registered.count(i) || !i->out_edges.count(x)) ok = false;
      }
      if (x->sticky_out_commit_seq == 0) ok = false;
      if (x->sticky_out_commit_seq != kNoStickySeq && !x->sticky_out) {
        ok = false;
      }
    }
  }
  return ok;
}

}  // namespace pgssi::ssi
