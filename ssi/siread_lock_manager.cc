#include "ssi/siread_lock_manager.h"

#include <algorithm>
#include <limits>

namespace pgssi::ssi {

namespace {
constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();
}

SireadLockManager::SireadLockManager(const EngineConfig& cfg) : cfg_(cfg) {}

SerializableXact* SireadLockManager::Register(XactId xid, uint64_t snapshot_seq,
                                              bool read_only) {
  std::lock_guard<std::mutex> l(mu_);
  auto x = std::make_unique<SerializableXact>();
  x->xid = xid;
  x->snapshot_seq = snapshot_seq;
  x->read_only = read_only;
  SerializableXact* raw = x.get();
  xacts_[xid] = std::move(x);
  return raw;
}

SerializableXact* SireadLockManager::Find(XactId xid) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = xacts_.find(xid);
  return it == xacts_.end() ? nullptr : it->second.get();
}

// ---------------------------------------------------------------------------
// SIREAD acquisition with tuple -> page -> relation promotion (Section 5.1)
// ---------------------------------------------------------------------------

void SireadLockManager::AcquireTuple(SerializableXact* x, RelationId rel,
                                     PageId page, uint32_t slot) {
  std::lock_guard<std::mutex> l(mu_);
  AcquireTupleLocked(x, rel, page, slot);
}

void SireadLockManager::AcquireTupleLocked(SerializableXact* x, RelationId rel,
                                           PageId page, uint32_t slot) {
  if (x->safe_snapshot || x->aborted) return;
  if (x->held_relations.count(rel)) return;  // covered by coarser lock
  auto hp = x->held_pages.find(rel);
  if (hp != x->held_pages.end() && hp->second.count(page)) return;

  auto& slots = x->held_tuples[{rel, page}];
  if (std::find(slots.begin(), slots.end(), slot) != slots.end()) return;
  slots.push_back(slot);
  tuple_locks_[{rel, page, slot}].insert(x);

  if (slots.size() > cfg_.max_locks_per_page) {
    // Promote: replace this xact's tuple locks on the page with one page
    // lock (escalation never loses information, only precision).
    for (uint32_t s : slots) {
      auto it = tuple_locks_.find({rel, page, s});
      if (it != tuple_locks_.end()) {
        it->second.erase(x);
        if (it->second.empty()) tuple_locks_.erase(it);
      }
    }
    x->held_tuples.erase({rel, page});
    page_promotions_++;
    AcquirePageLocked(x, rel, page);
  }
}

void SireadLockManager::AcquirePage(SerializableXact* x, RelationId rel,
                                    PageId page) {
  std::lock_guard<std::mutex> l(mu_);
  AcquirePageLocked(x, rel, page);
}

void SireadLockManager::AcquirePageLocked(SerializableXact* x, RelationId rel,
                                          PageId page) {
  if (x->safe_snapshot || x->aborted) return;
  if (x->held_relations.count(rel)) return;
  auto& pages = x->held_pages[rel];
  if (!pages.insert(page).second) return;
  page_locks_[{rel, page}].insert(x);
  // Drop now-redundant tuple locks on this page.
  auto ht = x->held_tuples.find({rel, page});
  if (ht != x->held_tuples.end()) {
    for (uint32_t s : ht->second) {
      auto it = tuple_locks_.find({rel, page, s});
      if (it != tuple_locks_.end()) {
        it->second.erase(x);
        if (it->second.empty()) tuple_locks_.erase(it);
      }
    }
    x->held_tuples.erase(ht);
  }

  if (pages.size() > cfg_.max_pages_per_relation) {
    relation_promotions_++;
    AcquireRelationLocked(x, rel);
  }
}

void SireadLockManager::AcquireRelation(SerializableXact* x, RelationId rel) {
  std::lock_guard<std::mutex> l(mu_);
  AcquireRelationLocked(x, rel);
}

void SireadLockManager::AcquireRelationLocked(SerializableXact* x,
                                              RelationId rel) {
  if (x->safe_snapshot || x->aborted) return;
  if (!x->held_relations.insert(rel).second) return;
  rel_locks_[rel].insert(x);
  // Drop finer-granularity locks in this relation.
  auto hp = x->held_pages.find(rel);
  if (hp != x->held_pages.end()) {
    for (PageId p : hp->second) {
      auto it = page_locks_.find({rel, p});
      if (it != page_locks_.end()) {
        it->second.erase(x);
        if (it->second.empty()) page_locks_.erase(it);
      }
    }
    x->held_pages.erase(hp);
  }
  for (auto it = x->held_tuples.begin(); it != x->held_tuples.end();) {
    if (it->first.first == rel) {
      for (uint32_t s : it->second) {
        auto tl = tuple_locks_.find({rel, it->first.second, s});
        if (tl != tuple_locks_.end()) {
          tl->second.erase(x);
          if (tl->second.empty()) tuple_locks_.erase(tl);
        }
      }
      it = x->held_tuples.erase(it);
    } else {
      ++it;
    }
  }
}

void SireadLockManager::ReleaseOwnTuple(SerializableXact* x, RelationId rel,
                                        PageId page, uint32_t slot) {
  std::lock_guard<std::mutex> l(mu_);
  auto ht = x->held_tuples.find({rel, page});
  if (ht == x->held_tuples.end()) return;
  auto& slots = ht->second;
  auto sit = std::find(slots.begin(), slots.end(), slot);
  if (sit == slots.end()) return;
  slots.erase(sit);
  if (slots.empty()) x->held_tuples.erase(ht);
  auto it = tuple_locks_.find({rel, page, slot});
  if (it != tuple_locks_.end()) {
    it->second.erase(x);
    if (it->second.empty()) tuple_locks_.erase(it);
  }
}

ProbeResult SireadLockManager::ProbeHeapWrite(RelationId rel, PageId page,
                                              uint32_t slot) {
  std::lock_guard<std::mutex> l(mu_);
  ProbeResult r;
  auto add = [&r](const std::unordered_set<SerializableXact*>& holders) {
    for (SerializableXact* h : holders) {
      if (!h->aborted) r.holder_xids.push_back(h->xid);
    }
  };
  auto t = tuple_locks_.find({rel, page, slot});
  if (t != tuple_locks_.end()) add(t->second);
  auto p = page_locks_.find({rel, page});
  if (p != page_locks_.end()) add(p->second);
  auto rl = rel_locks_.find(rel);
  if (rl != rel_locks_.end()) add(rl->second);
  std::sort(r.holder_xids.begin(), r.holder_xids.end());
  r.holder_xids.erase(std::unique(r.holder_xids.begin(), r.holder_xids.end()),
                      r.holder_xids.end());
  return r;
}

void SireadLockManager::OnPageSplit(RelationId rel, PageId old_page,
                                    PageId new_page,
                                    const std::vector<uint32_t>& moved_slots) {
  std::lock_guard<std::mutex> l(mu_);
  for (uint32_t s : moved_slots) {
    auto it = tuple_locks_.find({rel, old_page, s});
    if (it == tuple_locks_.end()) continue;
    // Move, don't duplicate: the entry now lives only on the new page and
    // writers probe the index-reported coordinates, so nothing consults
    // the old granule again; a retained copy would only bloat holders'
    // bookkeeping and drift from tuple_locks_.
    auto holders = std::move(it->second);
    tuple_locks_.erase(it);
    for (SerializableXact* h : holders) {
      tuple_locks_[{rel, new_page, s}].insert(h);
      h->held_tuples[{rel, new_page}].push_back(s);
      auto ht = h->held_tuples.find({rel, old_page});
      if (ht != h->held_tuples.end()) {
        auto& slots = ht->second;
        slots.erase(std::remove(slots.begin(), slots.end(), s), slots.end());
        if (slots.empty()) h->held_tuples.erase(ht);
      }
    }
  }
  auto p = page_locks_.find({rel, old_page});
  if (p != page_locks_.end()) {
    // Copy: the insertions below must not invalidate the iterated set.
    auto holders = p->second;
    for (SerializableXact* h : holders) {
      if (h->held_pages[rel].insert(new_page).second) {
        page_locks_[{rel, new_page}].insert(h);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Conflict graph + dangerous structures (Sections 3.1-3.3, 4)
// ---------------------------------------------------------------------------

bool SireadLockManager::HasIn(const SerializableXact* x) const {
  return x->sticky_in || !x->in_edges.empty();
}

bool SireadLockManager::HasOutAny(const SerializableXact* x) const {
  return x->sticky_out || !x->out_edges.empty();
}

bool SireadLockManager::HasOutCommittedBefore(const SerializableXact* x,
                                              uint64_t seq) const {
  if (x->sticky_out_commit_seq != 0 && x->sticky_out_commit_seq < seq)
    return true;
  for (const SerializableXact* o : x->out_edges) {
    if (o->committed && o->commit_seq < seq) return true;
  }
  return false;
}

void SireadLockManager::FlagRwConflict(SerializableXact* reader,
                                       SerializableXact* writer) {
  std::lock_guard<std::mutex> l(mu_);
  FlagRwConflictLocked(reader, writer);
}

void SireadLockManager::FlagRwConflictWithWriter(SerializableXact* reader,
                                                 XactId writer_xid) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = xacts_.find(writer_xid);
  if (it == xacts_.end()) return;  // non-serializable or already cleaned
  FlagRwConflictLocked(reader, it->second.get());
}

void SireadLockManager::FlagRwConflictWithReader(XactId reader_xid,
                                                 SerializableXact* writer) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = xacts_.find(reader_xid);
  if (it == xacts_.end()) return;
  FlagRwConflictLocked(it->second.get(), writer);
}

void SireadLockManager::FlagRwConflictLocked(SerializableXact* reader,
                                             SerializableXact* writer) {
  if (reader == nullptr || writer == nullptr || reader == writer) return;
  if (reader->aborted || writer->aborted) return;
  if (reader->safe_snapshot) return;
  if (reader->out_edges.count(writer)) return;  // already recorded

  if (cfg_.enable_read_only_opt && reader->read_only && writer->committed) {
    // Section 4: an edge from a read-only reader matters only when the
    // writer (the would-be pivot) has an out-edge to a transaction that
    // committed before the reader's snapshot (i.e. visible to it — hence
    // the +1 on the exclusive bound). The skip is only sound once the
    // writer has committed — its out-edge set is final then; for an
    // in-flight writer the edge must be recorded and the per-reader
    // bound applied later by DangerousPivot.
    uint64_t bound = reader->snapshot_seq + 1;
    if (writer->commit_seq != 0 && writer->commit_seq < bound) {
      bound = writer->commit_seq;  // T3 must also precede the pivot
    }
    if (!HasOutCommittedBefore(writer, bound)) return;
    if (!reader->doomed) {
      // The committed pivot's structure is already dangerous for this
      // reader; the reader is the only abortable party left.
      reader->doomed = true;
      ssi_aborts_++;
    }
    return;
  }

  reader->out_edges.insert(writer);
  writer->in_edges.insert(reader);
  MaybeDoomOnEdge(reader, writer);
}

bool SireadLockManager::DangerousPivot(const SerializableXact* x,
                                       uint64_t pivot_bound) const {
  // x is a dangerous pivot if some in-neighbour R and some committed
  // out-neighbour exist with the out-commit preceding `pivot_bound`
  // (commit-ordering opt) — and, for a declared read-only R under the
  // Section 4 optimization, also preceding R's snapshot.
  if (x->sticky_in && HasOutCommittedBefore(x, pivot_bound)) return true;
  for (const SerializableXact* r : x->in_edges) {
    uint64_t bound = pivot_bound;
    if (cfg_.enable_read_only_opt && r->read_only) {
      bound = std::min(bound, r->snapshot_seq + 1);
    }
    if (HasOutCommittedBefore(x, bound)) return true;
  }
  return false;
}

void SireadLockManager::MaybeDoomOnEdge(SerializableXact* reader,
                                        SerializableXact* writer) {
  // Writer just gained an in-edge: is it a pivot whose dangerous structure
  // is already unavoidable (its out-neighbour committed first)?
  // A commit-pending xact (committed, seq still 0) is treated as having
  // committed "now": bound at infinity, conservatively.
  uint64_t writer_bound =
      writer->committed && writer->commit_seq != 0 ? writer->commit_seq : kInf;
  if (DangerousPivot(writer, writer_bound)) {
    if (!writer->committed) {
      if (!writer->doomed) {
        writer->doomed = true;
        ssi_aborts_++;
      }
    } else if (!reader->committed && !reader->doomed) {
      // The pivot already committed; the only transaction still abortable
      // is the incoming reader.
      reader->doomed = true;
      ssi_aborts_++;
    }
    return;
  }
  if (!cfg_.enable_commit_ordering_opt && reader->committed &&
      HasIn(reader) && !writer->doomed && !writer->committed) {
    // Without the commit-ordering refinement, a committed pivot dooms the
    // overwriting transaction regardless of commit order.
    writer->doomed = true;
    ssi_aborts_++;
    return;
  }
  if (!cfg_.enable_safe_retry && !writer->committed && !writer->doomed &&
      HasIn(writer) && HasOutAny(writer)) {
    // Eager victim policy: abort the pivot as soon as the structure forms,
    // even though its partners are still in flight and a retry may hit the
    // same conflict again (Section 5.4 discusses why this is wasteful).
    writer->doomed = true;
    ssi_aborts_++;
  }
}

Status SireadLockManager::PreCommit(SerializableXact* x) {
  std::lock_guard<std::mutex> l(mu_);
  if (x->doomed) {
    return Status::SerializationFailure(
        "canceled due to rw-antidependency conflict (doomed)");
  }
  bool hazard;
  if (cfg_.enable_commit_ordering_opt) {
    hazard = DangerousPivot(x, kInf);
  } else {
    hazard = HasIn(x) && HasOutAny(x);
  }
  if (hazard) {
    ssi_aborts_++;
    return Status::SerializationFailure(
        "canceled on commit: pivot in dangerous structure");
  }
  // Passed: mark commit-pending NOW, under the same lock as the check.
  // Without this, an edge formed between the check and MarkCommitted
  // could doom this xact after it is already past its last doomed-flag
  // inspection — and both sides of the dangerous structure would commit.
  // Marking it committed makes any such concurrent edge doom the other
  // party instead (this transaction is certain to commit first).
  x->committed = true;
  return Status::OK();
}

bool SireadLockManager::Doomed(const SerializableXact* x) const {
  std::lock_guard<std::mutex> l(mu_);
  return x->doomed;
}

void SireadLockManager::MarkCommitted(SerializableXact* x,
                                      uint64_t commit_seq) {
  std::lock_guard<std::mutex> l(mu_);
  x->committed = true;
  x->commit_seq = commit_seq;
}

void SireadLockManager::DissolveEdgesLocked(SerializableXact* x,
                                            bool make_sticky) {
  for (SerializableXact* o : x->out_edges) {
    o->in_edges.erase(x);
    if (make_sticky && x->committed) o->sticky_in = true;
  }
  for (SerializableXact* i : x->in_edges) {
    i->out_edges.erase(x);
    if (make_sticky && x->committed) {
      i->sticky_out = true;
      if (i->sticky_out_commit_seq == 0 ||
          x->commit_seq < i->sticky_out_commit_seq) {
        i->sticky_out_commit_seq = x->commit_seq;
      }
    }
  }
  x->out_edges.clear();
  x->in_edges.clear();
}

void SireadLockManager::ReleaseAllLocksLocked(SerializableXact* x) {
  for (auto& [key, slots] : x->held_tuples) {
    for (uint32_t s : slots) {
      auto it = tuple_locks_.find({key.first, key.second, s});
      if (it != tuple_locks_.end()) {
        it->second.erase(x);
        if (it->second.empty()) tuple_locks_.erase(it);
      }
    }
  }
  x->held_tuples.clear();
  for (auto& [rel, pages] : x->held_pages) {
    for (PageId p : pages) {
      auto it = page_locks_.find({rel, p});
      if (it != page_locks_.end()) {
        it->second.erase(x);
        if (it->second.empty()) page_locks_.erase(it);
      }
    }
  }
  x->held_pages.clear();
  for (RelationId rel : x->held_relations) {
    auto it = rel_locks_.find(rel);
    if (it != rel_locks_.end()) {
      it->second.erase(x);
      if (it->second.empty()) rel_locks_.erase(it);
    }
  }
  x->held_relations.clear();
}

void SireadLockManager::Abort(SerializableXact* x) {
  std::lock_guard<std::mutex> l(mu_);
  x->aborted = true;
  DissolveEdgesLocked(x, /*make_sticky=*/false);
  ReleaseAllLocksLocked(x);
  xacts_.erase(x->xid);  // frees x when engine-registered; no-op for stack
}

void SireadLockManager::Cleanup(uint64_t oldest_active_snapshot_seq) {
  std::lock_guard<std::mutex> l(mu_);
  std::vector<XactId> dead;
  for (auto& [xid, x] : xacts_) {
    // commit_seq == 0 means commit-pending: not freeable yet.
    if (x->committed && x->commit_seq != 0 &&
        x->commit_seq <= oldest_active_snapshot_seq) {
      dead.push_back(xid);
    }
  }
  for (XactId xid : dead) {
    auto it = xacts_.find(xid);
    SerializableXact* x = it->second.get();
    DissolveEdgesLocked(x, /*make_sticky=*/true);
    ReleaseAllLocksLocked(x);
    xacts_.erase(it);
  }
}

bool SireadLockManager::CommittedWithDangerousOut(XactId xid,
                                                  uint64_t snapshot_seq) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = xacts_.find(xid);
  if (it == xacts_.end()) return false;  // cleaned up => no longer relevant
  SerializableXact* x = it->second.get();
  return x->committed && HasOutCommittedBefore(x, snapshot_seq + 1);
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

bool SireadLockManager::HoldsTupleLock(const SerializableXact* x,
                                       RelationId rel, PageId page,
                                       uint32_t slot) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = tuple_locks_.find({rel, page, slot});
  return it != tuple_locks_.end() &&
         it->second.count(const_cast<SerializableXact*>(x));
}

bool SireadLockManager::HoldsPageLock(const SerializableXact* x,
                                      RelationId rel, PageId page) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = page_locks_.find({rel, page});
  return it != page_locks_.end() &&
         it->second.count(const_cast<SerializableXact*>(x));
}

bool SireadLockManager::HoldsRelationLock(const SerializableXact* x,
                                          RelationId rel) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = rel_locks_.find(rel);
  return it != rel_locks_.end() &&
         it->second.count(const_cast<SerializableXact*>(x));
}

size_t SireadLockManager::RegisteredCount() const {
  std::lock_guard<std::mutex> l(mu_);
  return xacts_.size();
}
size_t SireadLockManager::TupleLockCount() const {
  std::lock_guard<std::mutex> l(mu_);
  return tuple_locks_.size();
}
size_t SireadLockManager::PageLockCount() const {
  std::lock_guard<std::mutex> l(mu_);
  return page_locks_.size();
}
size_t SireadLockManager::RelationLockCount() const {
  std::lock_guard<std::mutex> l(mu_);
  return rel_locks_.size();
}

}  // namespace pgssi::ssi
