// SIREAD lock manager + rw-antidependency (conflict) graph.
//
// This is the engine's implementation of the paper's core machinery:
//  - multi-granularity SIREAD locks (tuple -> page -> relation) with
//    promotion thresholds from EngineConfig (Section 5.1);
//  - ProbeHeapWrite: the check every heap write performs to discover
//    readers it creates an rw-antidependency with;
//  - the per-transaction conflict flags / edge lists and the
//    dangerous-structure test (two consecutive rw edges with the final
//    transaction committing first) run both eagerly when an edge forms and
//    at commit (Sections 3.1-3.3);
//  - SIREAD locks surviving commit, released only once every concurrent
//    transaction has finished (Section 5.3 cleanup);
//  - the Section 4 read-only optimization: an edge from a read-only
//    reader is only dangerous if the pivot's out-edge leads to a
//    transaction that committed before the reader's snapshot.
//
// Concurrency design (the multicore hot path, mirroring PostgreSQL's
// partitioned predicate-lock hash table):
//  - The lock tables are hashed into EngineConfig::lock_partitions
//    independent partitions, each with its own mutex. Tuple and page
//    granules of the same (relation, page) hash to the same partition, so
//    AcquireTuple/AcquirePage/ProbeHeapWrite take exactly ONE partition
//    lock on the fast path. Relation granules live in a per-relation
//    partition; probes skip it entirely while no relation lock exists
//    anywhere (rel_lock_count_ == 0). Each partition additionally keeps
//    an atomic granule-entry count, so a probe of an EMPTY partition is
//    one atomic load — no lock at all (the probe-miss fast path).
//  - Each SerializableXact's held-lock bookkeeping is guarded by its own
//    spinlock (held_mu), always acquired AFTER the owning partition lock.
//  - The conflict graph scales with conflict rate, not read rate
//    (EngineConfig::conflict_lock_mode, default fine-grained): each
//    SerializableXact's edge lists and sticky flags are guarded by its
//    own edge_mu (the analogue of PostgreSQL's per-SERIALIZABLEXACT
//    LWLock). Flagging an edge locks the two parties in ascending-xid
//    order under a SHARED registry lock; PreCommit's dangerous-structure
//    test needs only the committing xact's edge lock (neighbour
//    lifecycle fields are atomics, and a neighbour cannot be freed while
//    its edge to the pivot exists — dissolution requires the pivot's
//    edge lock).
//  - Xact registry membership lives in 16 hashed shards, each with its
//    own mutex: registration and teardown touch one shard. With
//    epoch-based reclamation on (EngineConfig::epoch_reclaim, default),
//    Abort and Cleanup NEVER take the registry lock exclusive — they
//    unlink under the shard lock + the parties' edge locks and hand the
//    memory to a grace-period limbo (util/epoch.h); conflict-path
//    pointer liveness comes from epoch pins instead of a reader-writer
//    lock. With epoch_reclaim=0 teardown reverts to the old exclusive
//    registry sweeps (same-binary A/B). The registry lock is then only
//    taken exclusive by that legacy teardown, by consistency checks,
//    and in conflict_lock_mode=0 (which maps every conflict-path
//    acquisition back onto it — the old single-global-mutex design).
//  - Lifecycle flags (committed/aborted/doomed/...) are atomics so the
//    hot path (Doomed(), probe holder filtering) reads them lock-free.
//
// Lock ordering (outermost first): registry_mu_ > xact shard mutex >
// per-xact edge_mu > ... > partition mutex > per-xact held_mu
// (conflict-graph locks and SIREAD-table locks are never actually
// nested; the order is total for safety). Two partition locks are only
// ever held together in canonical (index) order — OnPageSplit / gap
// transfers moving locks between leaves, never on the acquire/probe
// fast path. Two edge locks are only ever held together in
// ascending-xid order. Epoch pins are not locks and impose no order.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "db/config.h"
#include "util/dcheck.h"
#include "util/epoch.h"
#include "util/spinlock.h"
#include "util/status.h"
#include "util/types.h"

namespace pgssi::ssi {

/// "No sticky out-partner" sentinel for sticky_out_commit_seq. Must be
/// the max value, not 0: commit sequence numbers are compared with `<`
/// against snapshot bounds, and a 0 sentinel would make a partner that
/// committed at seq 0 indistinguishable from no partner at all.
inline constexpr uint64_t kNoStickySeq = std::numeric_limits<uint64_t>::max();

struct SerializableXact {
  XactId xid = 0;
  uint64_t snapshot_seq = 0;
  bool read_only = false;
  // Read-only with a safe snapshot: no tracking. Written by the owning
  // thread at Begin, read by writers flagging conflicts: atomic.
  std::atomic<bool> safe_snapshot{false};

  // Lifecycle. Written under the owner's edge lock / the registry lock
  // (or by the releasing thread for `defunct`), read lock-free on the
  // hot path.
  std::atomic<uint64_t> commit_seq{0};  // 0 while in flight
  std::atomic<bool> committed{false};
  std::atomic<bool> aborted{false};
  // Set when this transaction must abort with a serialization failure at
  // its next operation or commit (it is the chosen victim of a dangerous
  // structure it can no longer avoid).
  std::atomic<bool> doomed{false};
  // Final lock release has begun: no new SIREAD entries may be added for
  // this xact (page splits drop it instead) and probes skip it. Set under
  // held_mu, checked under held_mu by anyone about to add an entry. Edge
  // flagging also skips defunct parties (checked under the pair's edge
  // locks) — the barrier epoch-mode teardown relies on in place of the
  // exclusive registry lock.
  std::atomic<bool> defunct{false};

  // Conflict graph. `in_edges` holds T1 for each T1 -rw-> this edge
  // (T1 read a version this transaction overwrote); `out_edges` holds T3
  // for each this -rw-> T3 edge. Guarded by edge_mu under fine-grained
  // conflict locking (EngineConfig::conflict_lock_mode != 0; two edge
  // locks always nest in ascending-xid order), or by the manager's
  // exclusive registry lock in global-mutex mode.
  mutable CheckedMutex edge_mu;
  std::unordered_set<SerializableXact*> in_edges;
  std::unordered_set<SerializableXact*> out_edges;
  // Summary flags left behind when a committed partner is cleaned up.
  bool sticky_in = false;
  bool sticky_out = false;
  // Min commit seq of cleaned-up out-partners; kNoStickySeq when none.
  uint64_t sticky_out_commit_seq = kNoStickySeq;

  // SIREAD lock bookkeeping (which granules this xact holds), so release
  // and promotion are O(held locks). Guarded by held_mu, which is always
  // acquired after the partition lock owning the granule being changed.
  mutable SpinLock held_mu;
  std::map<std::pair<RelationId, PageId>, std::vector<uint32_t>> held_tuples;
  std::map<RelationId, std::unordered_set<PageId>> held_pages;
  std::unordered_set<RelationId> held_relations;
};

struct ProbeResult {
  std::vector<XactId> holder_xids;
};

class SireadLockManager {
 public:
  /// `epoch` may be null; epoch-based reclamation is active only when
  /// both cfg.epoch_reclaim != 0 AND an EpochManager is supplied (the
  /// Database always supplies its own; standalone tests opt in).
  explicit SireadLockManager(const EngineConfig& cfg,
                             util::EpochManager* epoch = nullptr);
  ~SireadLockManager();

  // ----- xact registry (engine-managed transactions) -----
  SerializableXact* Register(XactId xid, uint64_t snapshot_seq, bool read_only);
  /// Epoch mode: the returned pointer is only guaranteed live while the
  /// xact cannot be torn down (it is the caller's own, or the caller
  /// holds an epoch pin taken before the call).
  SerializableXact* Find(XactId xid);

  // ----- SIREAD acquisition (Section 5.1) -----
  void AcquireTuple(SerializableXact* x, RelationId rel, PageId page,
                    uint32_t slot);
  void AcquirePage(SerializableXact* x, RelationId rel, PageId page);
  void AcquireRelation(SerializableXact* x, RelationId rel);
  /// Section 7.3: drop x's own tuple-granularity SIREAD lock after x
  /// itself writes that tuple.
  void ReleaseOwnTuple(SerializableXact* x, RelationId rel, PageId page,
                       uint32_t slot);

  /// Every heap write probes for SIREAD locks (tuple, its page, and the
  /// relation) held by other transactions. Returns all holders' xids.
  /// Takes only the (rel, page) partition lock unless a relation-granule
  /// lock exists somewhere in the system — and not even that when the
  /// partition's granule count reads zero (one atomic load, no lock:
  /// equivalent to probing just before any in-flight acquisition).
  ProbeResult ProbeHeapWrite(RelationId rel, PageId page, uint32_t slot);

  /// Section 5.2.2: a B+-tree leaf split moved `moved_slots` from
  /// `old_page` to `new_page`; move the tuple locks and duplicate the
  /// page locks. May take two partition locks, in canonical index order.
  /// Called from the tree's split listener with the structure lock and
  /// both leaves' write locks held, so no granule it transfers can move
  /// again concurrently.
  void OnPageSplit(RelationId rel, PageId old_page, PageId new_page,
                   const std::vector<uint32_t>& moved_slots);

  /// Predicate-coverage transfer when an index entry subdivides or
  /// rejoins a gap (the Section 5.2 structural-change family, sibling of
  /// OnPageSplit):
  ///  - an insert lands inside a gap: every holder covering the old
  ///    next-key granule (`from`) must also cover the new entry's
  ///    granule (`to`), or a second insert into the lower sub-gap probes
  ///    the new entry and misses them;
  ///  - an aborted insert's index entry is removed: holders of the
  ///    erased granule must move onto the granule future inserts of that
  ///    key will probe (its new next-key entry, or — via the ...ToPage
  ///    variant — the leaf page when no successor entry exists).
  /// Copies (never moves: the old granule may still be a live entry)
  /// tuple-granule holders of (from_page, from_slot) plus, when the
  /// pages differ, page-granule holders of from_page — their page lock
  /// does not reach to_page. May take two partition locks, in canonical
  /// index order. The caller must hold whatever serializes structural
  /// changes to the affected gap: with index_olc=0 the table's
  /// exclusive index latch; with index_olc=1 the write locks of every
  /// leaf the gap spans (InsertHooks/EraseHooks run there) — readers
  /// then follow acquire-then-validate, so a lock acquired against the
  /// pre-transfer granule is either visible to this copy or the
  /// reader's validation fails and it re-resolves.
  void OnGapTransfer(RelationId rel, PageId from_page, uint32_t from_slot,
                     PageId to_page, uint32_t to_slot);
  void OnGapTransferToPage(RelationId rel, PageId from_page,
                           uint32_t from_slot, PageId to_page);

  // ----- conflict flagging + dangerous structure (Sections 3.1-3.3) -----
  /// Record reader -rw-> writer. May doom one of the parties if this edge
  /// completes a dangerous structure that can no longer resolve safely.
  void FlagRwConflict(SerializableXact* reader, SerializableXact* writer);
  /// Same, resolving one side by xid (the pointer for a foreign xact may
  /// be freed concurrently, so callers outside the manager must not hold
  /// one across calls). Unknown xids are ignored. The whole flagging
  /// runs under an epoch pin (epoch mode) or the shared registry lock
  /// (legacy), either of which keeps the resolved xact's memory live.
  void FlagRwConflictWithWriter(SerializableXact* reader, XactId writer_xid);
  void FlagRwConflictWithReader(XactId reader_xid, SerializableXact* writer);

  /// Commit-time dangerous-structure test. Returns a serialization
  /// failure if `x` is doomed or is a pivot whose abort is required.
  Status PreCommit(SerializableXact* x);

  void MarkCommitted(SerializableXact* x, uint64_t commit_seq);
  /// Abort: dissolve edges, release all SIREAD locks, unregister.
  void Abort(SerializableXact* x);

  /// Free committed xacts (and their SIREAD locks) whose commit precedes
  /// every active snapshot. Edges to still-live partners become sticky
  /// summary flags. Cheap no-op (a few atomic loads) when nothing is
  /// freeable. Epoch mode: the sweep runs shard by shard under shard
  /// locks, the freed memory goes to the epoch limbo, and the registry
  /// lock is never taken exclusive.
  void Cleanup(uint64_t oldest_active_snapshot_seq);

  /// True if `x` (a committed concurrent txn) makes a candidate snapshot
  /// taken at `snapshot_seq` unsafe: it committed with an rw-out-edge to
  /// a transaction that committed before that snapshot (Section 4).
  bool CommittedWithDangerousOut(XactId xid, uint64_t snapshot_seq);

  /// Lock-free: one atomic load (called before every operation).
  bool Doomed(const SerializableXact* x) const {
    return x->doomed.load(std::memory_order_acquire);
  }

  // ----- introspection (tests, stats) -----
  bool HoldsTupleLock(const SerializableXact* x, RelationId rel, PageId page,
                      uint32_t slot) const;
  bool HoldsPageLock(const SerializableXact* x, RelationId rel,
                     PageId page) const;
  bool HoldsRelationLock(const SerializableXact* x, RelationId rel) const;
  size_t RegisteredCount() const;
  size_t TupleLockCount() const;
  size_t PageLockCount() const;
  size_t RelationLockCount() const;
  /// Tuple + page + relation lock-table entries across all partitions.
  size_t TotalLockCount() const;
  /// Cross-checks every partition map entry against its holder's held-lock
  /// bookkeeping and (for registered xacts) vice versa. Intended for tests
  /// at quiescent points; takes every lock in the manager.
  bool CheckConsistency() const;
  size_t partition_count() const { return partition_count_; }
  /// Cleanup's early-out threshold (smallest commit seq among live
  /// committed xacts, kNoStickySeq when none). Introspection only: the
  /// regression tests assert it advances when the floor xact retires.
  uint64_t min_committed_seq_hint() const;
  uint64_t page_promotions() const {
    return page_promotions_.load(std::memory_order_relaxed);
  }
  uint64_t relation_promotions() const {
    return relation_promotions_.load(std::memory_order_relaxed);
  }
  uint64_t ssi_aborts() const {
    return ssi_aborts_.load(std::memory_order_relaxed);
  }
  /// How many times registry_mu_ was acquired EXCLUSIVE. The epoch-mode
  /// audit: under the default config this must not grow during
  /// abort/cleanup churn (only legacy teardown, conflict_lock_mode=0,
  /// and CheckConsistency take it).
  uint64_t registry_exclusive_acquires() const {
    return registry_exclusive_acquires_.load(std::memory_order_relaxed);
  }
  bool epoch_mode() const { return epoch_mode_; }

 private:
  struct TupleTag {
    RelationId rel;
    PageId page;
    uint32_t slot;
    bool operator<(const TupleTag& o) const {
      if (rel != o.rel) return rel < o.rel;
      if (page != o.page) return page < o.page;
      return slot < o.slot;
    }
  };

  /// Holder sets are heap objects so teardown can unlink one from the
  /// partition map under the partition lock and defer the free through
  /// the epoch limbo (epoch mode) — the shape a future fully lock-free
  /// probe needs, and what keeps frees off the partition critical
  /// sections today.
  using HolderSet = std::unordered_set<SerializableXact*>;

  // One shard of the lock table. Tuple and page granules of a given
  // (relation, page) always live in the same partition; relation granules
  // live in the partition chosen by PartitionIndexForRelation.
  struct alignas(64) Partition {
    mutable CheckedMutex mu;
    std::map<TupleTag, HolderSet*> tuple_locks;
    std::map<std::pair<RelationId, PageId>, HolderSet*> page_locks;
    std::unordered_map<RelationId, HolderSet*> rel_locks;
    // Exact granule-entry count (tuple + page + rel map entries),
    // republished at the end of every mutating critical section. A probe
    // reading 0 can skip the lock: it linearizes before whichever
    // acquisition would make the count nonzero.
    std::atomic<int64_t> occupancy{0};
  };

  // One shard of the xact registry. Registration, xid resolution, and
  // teardown unlinking touch one shard's mutex; the per-shard committed
  // floor lets epoch-mode Cleanup recompute its early-out hint without
  // any global exclusive lock (MarkCommitted's ratchet takes the same
  // shard mutex, so the recompute cannot clobber a concurrent commit).
  static constexpr size_t kXactShards = 16;
  struct alignas(64) XactShard {
    mutable CheckedMutex mu;
    std::unordered_map<XactId, SerializableXact*> map;
    std::atomic<uint64_t> min_committed{kNoStickySeq};
  };

  size_t PartitionIndex(RelationId rel, PageId page) const;
  size_t PartitionIndexForRelation(RelationId rel) const;
  Partition& PartitionFor(RelationId rel, PageId page) const {
    return partitions_[PartitionIndex(rel, page)];
  }
  Partition& PartitionForRelation(RelationId rel) const {
    return partitions_[PartitionIndexForRelation(rel)];
  }
  XactShard& ShardFor(XactId xid) const;

  /// Republish p.occupancy from the map sizes; p.mu must be held. Call
  /// before leaving any critical section that mutated the maps.
  void SyncOccupancy(Partition& p) const;
  /// Free (or epoch-retire) an emptied holder set just unlinked from a
  /// partition map.
  void FreeHolderSet(HolderSet* s);
  static HolderSet* GetOrCreate(std::map<TupleTag, HolderSet*>& m,
                                const TupleTag& k);
  static HolderSet* GetOrCreate(
      std::map<std::pair<RelationId, PageId>, HolderSet*>& m,
      const std::pair<RelationId, PageId>& k);
  static HolderSet* GetOrCreate(std::unordered_map<RelationId, HolderSet*>& m,
                                RelationId k);

  /// Replaces x's tuple locks on (rel, page) with one page lock; the
  /// owning partition lock and x's held_mu must be held. Returns true
  /// when x's page count in `rel` now exceeds the relation-promotion
  /// threshold (the caller decides whether escalation can be chained).
  bool PromoteTuplesToPageLocked(Partition& p, RelationId rel, PageId page,
                                 SerializableXact* x);

  // Map-entry erase helpers; the owning partition lock must be held.
  void EraseTupleHolder(Partition& p, RelationId rel, PageId page,
                        uint32_t slot, SerializableXact* x);
  void ErasePageHolder(Partition& p, RelationId rel, PageId page,
                       SerializableXact* x);
  void EraseRelationHolder(Partition& p, RelationId rel, SerializableXact* x);

  // Slow path: install the relation-granule lock, then retire x's finer
  // locks in `rel` partition by partition. `from_promotion` counts the
  // escalation in relation_promotions_.
  void AcquireRelationInternal(SerializableXact* x, RelationId rel,
                               bool from_promotion);

  // Shared core of OnGapTransfer / OnGapTransferToPage. When
  // `to_page_granule` is set the holders are installed as a page lock on
  // to_page and `to_slot` is ignored.
  void GapTransferInternal(RelationId rel, PageId from_page,
                           uint32_t from_slot, PageId to_page,
                           uint32_t to_slot, bool to_page_granule);

  /// Marks x defunct and removes every SIREAD entry it holds from the
  /// partition tables. After this returns, no other thread can reach x
  /// through the lock tables.
  void ReleaseAllLocks(SerializableXact* x);

  // Conflict-graph locking guards (see the file comment). In
  // global-mutex mode RegistryReadLock is exclusive and the edge guards
  // are no-ops; in fine mode RegistryReadLock is shared and the edge
  // guards lock edge_mu (pairs in ascending-xid order). PinGuard pins
  // the epoch (epoch mode only): raw xact pointers obtained while
  // pinned stay dereferenceable even if the xact is torn down
  // concurrently — its memory sits in the limbo until the pin passes.
  class RegistryReadLock;
  class EdgeLock;
  class EdgePairLock;
  class PinGuard;
  /// DCHECK that the lock protecting x's edge lists is held by this
  /// thread (x's edge_mu in fine mode; vacuous under the global mutex,
  /// whose std::shared_mutex cannot assert ownership).
  void AssertEdgeHeld(const SerializableXact* x) const {
    if (fine_locking_) x->edge_mu.AssertHeld();
  }
  /// Idempotent doom + stats bump (the edge lock of x must be held, so
  /// two racing doomers cannot double-count).
  void Doom(SerializableXact* x);

  // Dangerous-structure predicate helpers; the caller must hold the
  // edge lock of the xact whose lists are read (asserted inside).
  bool HasIn(const SerializableXact* x) const;
  bool HasOutAny(const SerializableXact* x) const;
  bool HasOutCommittedBefore(const SerializableXact* x, uint64_t seq) const;
  bool DangerousPivot(const SerializableXact* x, uint64_t pivot_bound) const;
  void FlagRwConflictLocked(SerializableXact* reader, SerializableXact* writer);
  void MaybeDoomOnEdge(SerializableXact* reader, SerializableXact* writer);
  Status PreCommitLocked(SerializableXact* x);
  /// Dissolve every edge of x. Legacy mode: the caller holds the
  /// registry lock EXCLUSIVE, which freezes x's lists. Epoch mode: the
  /// caller holds the registry lock per RegistryReadLock plus an epoch
  /// pin, and x must already be aborted or defunct — the flag paths
  /// skip such parties under the pair's edge locks, so after the
  /// snapshot below no new edge can land on x. Partner back-edges and
  /// sticky flags are always updated under the pair's edge locks
  /// because a partner's PreCommit reads its lists under only its own
  /// edge lock.
  void DissolveEdges(SerializableXact* x, bool make_sticky);
  /// Unlink x->xid from its registry shard. Returns true when x was the
  /// registered entry (i.e. the registry owned it).
  bool UnregisterFromShard(SerializableXact* x);
  /// Resolve an xid through its shard (takes the shard mutex). Epoch
  /// mode: the caller must hold a PinGuard taken before this call.
  SerializableXact* LookupXact(XactId xid) const;
  /// Free x now (legacy) or retire it to the epoch limbo.
  void FreeXact(SerializableXact* x);

  EngineConfig cfg_;
  // Fine-grained conflict locking (cfg_.conflict_lock_mode != 0).
  bool fine_locking_;
  // Epoch-based reclamation (cfg_.epoch_reclaim != 0 && epoch_ != null).
  util::EpochManager* epoch_;
  bool epoch_mode_;
  size_t partition_count_;  // power of two
  size_t partition_mask_;
  std::unique_ptr<Partition[]> partitions_;

  // Global count of relation-granule lock entries; probes skip the
  // relation partition lookup entirely while it is zero (the common case
  // under default promotion thresholds).
  std::atomic<int64_t> rel_lock_count_{0};

  // Xact registry. Membership lives in the hashed shards (insertion and
  // unlinking take one shard mutex). registry_mu_ is the mode switch:
  // shared on the conflict path; exclusive only for legacy
  // (epoch_reclaim=0) teardown sweeps — which freeze membership and
  // edge lists the old way — for CheckConsistency, and for every
  // conflict-path acquisition in global-mutex conflict_lock_mode=0.
  // Epoch-mode teardown never takes it exclusive: pointer liveness
  // comes from epoch pins, edge freezing from the defunct barrier.
  mutable std::shared_mutex registry_mu_;
  std::unique_ptr<XactShard[]> xact_shards_;

  // Legacy-mode hint: smallest commit_seq among registered committed
  // xacts; lets Cleanup bail with one atomic load when nothing can be
  // freed yet. Ratcheted down by MarkCommitted (CAS, under the shared
  // registry lock), recomputed exactly by legacy Cleanup under the
  // exclusive registry lock. Epoch mode keeps the floor per shard
  // instead (XactShard::min_committed, maintained under the shard
  // mutex) — min_committed_seq_hint() folds whichever is active.
  std::atomic<uint64_t> min_committed_seq_;

  // Stats: relaxed atomics, incremented from whichever lock context the
  // event occurs under and read lock-free by accessors.
  std::atomic<uint64_t> page_promotions_{0};
  std::atomic<uint64_t> relation_promotions_{0};
  std::atomic<uint64_t> ssi_aborts_{0};
  // Mutable: bumped by const introspection (CheckConsistency) and by
  // guards holding only a const manager pointer.
  mutable std::atomic<uint64_t> registry_exclusive_acquires_{0};
};

}  // namespace pgssi::ssi
