// SIREAD lock manager + rw-antidependency (conflict) graph.
//
// This is the engine's implementation of the paper's core machinery:
//  - multi-granularity SIREAD locks (tuple -> page -> relation) with
//    promotion thresholds from EngineConfig (Section 5.1);
//  - ProbeHeapWrite: the check every heap write performs to discover
//    readers it creates an rw-antidependency with;
//  - the per-transaction conflict flags / edge lists and the
//    dangerous-structure test (two consecutive rw edges with the final
//    transaction committing first) run both eagerly when an edge forms and
//    at commit (Sections 3.1-3.3);
//  - SIREAD locks surviving commit, released only once every concurrent
//    transaction has finished (Section 5.3 cleanup);
//  - the Section 4 read-only optimization: an edge from a read-only
//    reader is only dangerous if the pivot's out-edge leads to a
//    transaction that committed before the reader's snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "db/config.h"
#include "util/status.h"
#include "util/types.h"

namespace pgssi::ssi {

struct SerializableXact {
  XactId xid = 0;
  uint64_t snapshot_seq = 0;
  uint64_t commit_seq = 0;  // 0 while in flight
  bool read_only = false;
  bool safe_snapshot = false;  // read-only with a safe snapshot: no tracking
  bool committed = false;
  bool aborted = false;
  // Set when this transaction must abort with a serialization failure at
  // its next operation or commit (it is the chosen victim of a dangerous
  // structure it can no longer avoid).
  bool doomed = false;

  // Conflict graph. `in_edges` holds T1 for each T1 -rw-> this edge
  // (T1 read a version this transaction overwrote); `out_edges` holds T3
  // for each this -rw-> T3 edge. Guarded by the manager mutex.
  std::unordered_set<SerializableXact*> in_edges;
  std::unordered_set<SerializableXact*> out_edges;
  // Summary flags left behind when a committed partner is cleaned up.
  bool sticky_in = false;
  bool sticky_out = false;
  uint64_t sticky_out_commit_seq = 0;  // min commit seq of cleaned out-partners

  // SIREAD lock bookkeeping (which granules this xact holds), so release
  // and promotion are O(held locks). Guarded by the manager mutex.
  std::map<std::pair<RelationId, PageId>, std::vector<uint32_t>> held_tuples;
  std::map<RelationId, std::unordered_set<PageId>> held_pages;
  std::unordered_set<RelationId> held_relations;
};

struct ProbeResult {
  std::vector<XactId> holder_xids;
};

class SireadLockManager {
 public:
  explicit SireadLockManager(const EngineConfig& cfg);

  // ----- xact registry (engine-managed transactions) -----
  SerializableXact* Register(XactId xid, uint64_t snapshot_seq, bool read_only);
  SerializableXact* Find(XactId xid);

  // ----- SIREAD acquisition (Section 5.1) -----
  void AcquireTuple(SerializableXact* x, RelationId rel, PageId page,
                    uint32_t slot);
  void AcquirePage(SerializableXact* x, RelationId rel, PageId page);
  void AcquireRelation(SerializableXact* x, RelationId rel);
  /// Section 7.3: drop x's own tuple-granularity SIREAD lock after x
  /// itself writes that tuple.
  void ReleaseOwnTuple(SerializableXact* x, RelationId rel, PageId page,
                       uint32_t slot);

  /// Every heap write probes for SIREAD locks (tuple, its page, and the
  /// relation) held by other transactions. Returns all holders' xids.
  ProbeResult ProbeHeapWrite(RelationId rel, PageId page, uint32_t slot);

  /// Section 5.2.2: a B+-tree leaf split moved `moved_slots` from
  /// `old_page` to `new_page`; duplicate the covering locks.
  void OnPageSplit(RelationId rel, PageId old_page, PageId new_page,
                   const std::vector<uint32_t>& moved_slots);

  // ----- conflict flagging + dangerous structure (Sections 3.1-3.3) -----
  /// Record reader -rw-> writer. May doom one of the parties if this edge
  /// completes a dangerous structure that can no longer resolve safely.
  void FlagRwConflict(SerializableXact* reader, SerializableXact* writer);
  /// Same, resolving one side by xid under the manager lock (the pointer
  /// for a foreign xact may be freed concurrently, so callers outside the
  /// manager must not hold one across calls). Unknown xids are ignored.
  void FlagRwConflictWithWriter(SerializableXact* reader, XactId writer_xid);
  void FlagRwConflictWithReader(XactId reader_xid, SerializableXact* writer);

  /// Commit-time dangerous-structure test. Returns a serialization
  /// failure if `x` is doomed or is a pivot whose abort is required.
  Status PreCommit(SerializableXact* x);

  void MarkCommitted(SerializableXact* x, uint64_t commit_seq);
  /// Abort: dissolve edges, release all SIREAD locks, unregister.
  void Abort(SerializableXact* x);

  /// Free committed xacts (and their SIREAD locks) whose commit precedes
  /// every active snapshot. Edges to still-live partners become sticky
  /// summary flags.
  void Cleanup(uint64_t oldest_active_snapshot_seq);

  /// True if `x` (a committed concurrent txn) makes a candidate snapshot
  /// taken at `snapshot_seq` unsafe: it committed with an rw-out-edge to
  /// a transaction that committed before that snapshot (Section 4).
  bool CommittedWithDangerousOut(XactId xid, uint64_t snapshot_seq);

  bool Doomed(const SerializableXact* x) const;

  // ----- introspection (tests, stats) -----
  bool HoldsTupleLock(const SerializableXact* x, RelationId rel, PageId page,
                      uint32_t slot) const;
  bool HoldsPageLock(const SerializableXact* x, RelationId rel,
                     PageId page) const;
  bool HoldsRelationLock(const SerializableXact* x, RelationId rel) const;
  size_t RegisteredCount() const;
  size_t TupleLockCount() const;
  size_t PageLockCount() const;
  size_t RelationLockCount() const;
  uint64_t page_promotions() const {
    return page_promotions_.load(std::memory_order_relaxed);
  }
  uint64_t relation_promotions() const {
    return relation_promotions_.load(std::memory_order_relaxed);
  }
  uint64_t ssi_aborts() const {
    return ssi_aborts_.load(std::memory_order_relaxed);
  }

 private:
  struct TupleTag {
    RelationId rel;
    PageId page;
    uint32_t slot;
    bool operator<(const TupleTag& o) const {
      if (rel != o.rel) return rel < o.rel;
      if (page != o.page) return page < o.page;
      return slot < o.slot;
    }
  };
  void AcquireTupleLocked(SerializableXact* x, RelationId rel, PageId page,
                          uint32_t slot);
  void AcquirePageLocked(SerializableXact* x, RelationId rel, PageId page);
  void AcquireRelationLocked(SerializableXact* x, RelationId rel);
  void ReleaseAllLocksLocked(SerializableXact* x);
  void DissolveEdgesLocked(SerializableXact* x, bool make_sticky);
  // Dangerous-structure predicate helpers (manager mutex held).
  bool HasIn(const SerializableXact* x) const;
  bool HasOutAny(const SerializableXact* x) const;
  bool HasOutCommittedBefore(const SerializableXact* x, uint64_t seq) const;
  bool DangerousPivot(const SerializableXact* x, uint64_t pivot_bound) const;
  void FlagRwConflictLocked(SerializableXact* reader, SerializableXact* writer);
  void MaybeDoomOnEdge(SerializableXact* reader, SerializableXact* writer);

  EngineConfig cfg_;
  mutable std::mutex mu_;

  std::unordered_map<XactId, std::unique_ptr<SerializableXact>> xacts_;
  std::map<TupleTag, std::unordered_set<SerializableXact*>> tuple_locks_;
  std::map<std::pair<RelationId, PageId>, std::unordered_set<SerializableXact*>>
      page_locks_;
  std::unordered_map<RelationId, std::unordered_set<SerializableXact*>>
      rel_locks_;

  // Mutated under mu_, but read by stats accessors without it: atomic.
  std::atomic<uint64_t> page_promotions_{0};
  std::atomic<uint64_t> relation_promotions_{0};
  std::atomic<uint64_t> ssi_aborts_{0};
};

}  // namespace pgssi::ssi
