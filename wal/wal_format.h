// WAL record codec: little-endian payload encoding plus length+CRC32
// framing.
//
// On-disk layout is a flat sequence of frames:
//
//   frame   := [len u32][crc u32][payload bytes × len]
//   payload := [type u8] body
//
// `crc` is CRC-32 (util/crc32.h) over the payload only; `len` is
// validated against kMaxRecordLen and the remaining file size, so a
// torn tail — a partial frame from a crash mid-append — fails either
// the length or the CRC check and recovery stops exactly there.
//
// Record types:
//   kCreateTable  [id u32][name str]           — DDL, synced eagerly
//   kCommit       [seq u64][xid u64][n u32]    — one committed write set
//                 n × ([table u32][deleted u8][key str][value str])
//   kAbortMark    [seq u64]                    — the commit record for
//                 `seq` is already in the log but its fsync failed and
//                 the transaction was aborted; recovery must skip it.
//
// str := [len u32][bytes]. The commit payload is built before the
// commit sequence is allocated (the seq arrives inside the TxnManager
// stamp callback), so EncodeCommit writes a placeholder and returns its
// offset for PatchCommitSeq.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/crc32.h"
#include "util/types.h"

namespace pgssi::wal {

inline constexpr uint32_t kFrameHeaderBytes = 8;  // len + crc
inline constexpr uint32_t kMaxRecordLen = 1u << 30;

enum class RecordType : uint8_t {
  kCreateTable = 1,
  kCommit = 2,
  kAbortMark = 3,
};

struct CommitEntry {
  TableId table = kInvalidTable;
  bool deleted = false;
  std::string key;
  std::string value;
};

struct CommitRecord {
  uint64_t seq = 0;
  XactId xid = kInvalidXact;
  std::vector<CommitEntry> entries;
};

// ----- little-endian primitives -----

inline void PutU8(std::string* s, uint8_t v) {
  s->push_back(static_cast<char>(v));
}
inline void PutU32(std::string* s, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; i++) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  s->append(b, 4);
}
inline void PutU64(std::string* s, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; i++) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  s->append(b, 8);
}
inline void PutStr(std::string* s, std::string_view v) {
  PutU32(s, static_cast<uint32_t>(v.size()));
  s->append(v.data(), v.size());
}

/// Bounds-checked sequential reader; every getter returns false once any
/// read has run past the end (the caller treats that as corruption).
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : p_(data) {}
  bool U8(uint8_t* v) {
    if (p_.size() - off_ < 1) return false;
    *v = static_cast<uint8_t>(p_[off_++]);
    return true;
  }
  bool U32(uint32_t* v) {
    if (p_.size() - off_ < 4) return false;
    uint32_t r = 0;
    for (int i = 0; i < 4; i++) {
      r |= static_cast<uint32_t>(static_cast<uint8_t>(p_[off_ + i])) << (8 * i);
    }
    off_ += 4;
    *v = r;
    return true;
  }
  bool U64(uint64_t* v) {
    if (p_.size() - off_ < 8) return false;
    uint64_t r = 0;
    for (int i = 0; i < 8; i++) {
      r |= static_cast<uint64_t>(static_cast<uint8_t>(p_[off_ + i])) << (8 * i);
    }
    off_ += 8;
    *v = r;
    return true;
  }
  bool Str(std::string* v) {
    uint32_t n;
    if (!U32(&n)) return false;
    if (p_.size() - off_ < n) return false;
    v->assign(p_.data() + off_, n);
    off_ += n;
    return true;
  }
  bool AtEnd() const { return off_ == p_.size(); }

 private:
  std::string_view p_;
  size_t off_ = 0;
};

// ----- payload encoders -----

inline std::string EncodeCreateTable(TableId id, std::string_view name) {
  std::string s;
  PutU8(&s, static_cast<uint8_t>(RecordType::kCreateTable));
  PutU32(&s, id);
  PutStr(&s, name);
  return s;
}

/// Encodes a commit payload with `rec.seq` as written (usually a 0
/// placeholder); `*seq_offset` receives the byte offset of the seq field
/// for PatchCommitSeq.
inline std::string EncodeCommit(const CommitRecord& rec, size_t* seq_offset) {
  std::string s;
  PutU8(&s, static_cast<uint8_t>(RecordType::kCommit));
  if (seq_offset) *seq_offset = s.size();
  PutU64(&s, rec.seq);
  PutU64(&s, rec.xid);
  PutU32(&s, static_cast<uint32_t>(rec.entries.size()));
  for (const CommitEntry& e : rec.entries) {
    PutU32(&s, e.table);
    PutU8(&s, e.deleted ? 1 : 0);
    PutStr(&s, e.key);
    PutStr(&s, e.value);
  }
  return s;
}

inline void PatchCommitSeq(std::string* payload, size_t seq_offset,
                           uint64_t seq) {
  for (int i = 0; i < 8; i++) {
    (*payload)[seq_offset + static_cast<size_t>(i)] =
        static_cast<char>((seq >> (8 * i)) & 0xFF);
  }
}

inline std::string EncodeAbortMark(uint64_t seq) {
  std::string s;
  PutU8(&s, static_cast<uint8_t>(RecordType::kAbortMark));
  PutU64(&s, seq);
  return s;
}

/// Wraps a payload in the [len][crc] frame.
inline std::string EncodeFrame(std::string_view payload) {
  std::string s;
  PutU32(&s, static_cast<uint32_t>(payload.size()));
  PutU32(&s, util::Crc32(payload.data(), payload.size()));
  s.append(payload.data(), payload.size());
  return s;
}

// ----- decoder -----

struct DecodedRecord {
  RecordType type = RecordType::kCommit;
  // kCreateTable
  TableId table_id = kInvalidTable;
  std::string table_name;
  // kCommit
  CommitRecord commit;
  // kAbortMark
  uint64_t abort_seq = 0;
};

/// Decodes one payload (framing already stripped and CRC-verified).
/// Returns false on any structural mismatch — recovery treats that the
/// same as a torn frame and stops.
inline bool DecodePayload(std::string_view payload, DecodedRecord* out) {
  PayloadReader r(payload);
  uint8_t type;
  if (!r.U8(&type)) return false;
  switch (static_cast<RecordType>(type)) {
    case RecordType::kCreateTable:
      out->type = RecordType::kCreateTable;
      return r.U32(&out->table_id) && r.Str(&out->table_name) && r.AtEnd();
    case RecordType::kCommit: {
      out->type = RecordType::kCommit;
      uint32_t n;
      if (!r.U64(&out->commit.seq) || !r.U64(&out->commit.xid) || !r.U32(&n)) {
        return false;
      }
      if (n > payload.size()) return false;  // cheap sanity bound
      out->commit.entries.clear();
      out->commit.entries.reserve(n);
      for (uint32_t i = 0; i < n; i++) {
        CommitEntry e;
        uint8_t del;
        if (!r.U32(&e.table) || !r.U8(&del) || !r.Str(&e.key) ||
            !r.Str(&e.value)) {
          return false;
        }
        e.deleted = del != 0;
        out->commit.entries.push_back(std::move(e));
      }
      return r.AtEnd();
    }
    case RecordType::kAbortMark:
      out->type = RecordType::kAbortMark;
      return r.U64(&out->abort_seq) && r.AtEnd();
    default:
      return false;
  }
}

}  // namespace pgssi::wal
