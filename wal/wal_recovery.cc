#include "wal/wal_recovery.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <set>

#include "util/crc32.h"

namespace pgssi::wal {

namespace {
// Reads the whole file. The log is replayed in full on every open (no
// checkpointing yet — see ROADMAP), so a streaming reader would buy
// nothing here.
Status ReadFile(const std::string& path, std::string* out, bool* missing) {
  *missing = false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    if (errno == ENOENT) {
      *missing = true;
      return Status::OK();
    }
    return Status::IOError("wal read " + path + ": " + std::strerror(errno));
  }
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) return Status::IOError("wal read " + path + ": short read");
  return Status::OK();
}
}  // namespace

Status ScanWal(const std::string& path, WalScanResult* out) {
  *out = WalScanResult{};
  std::string data;
  bool missing;
  Status s = ReadFile(path, &data, &missing);
  if (!s.ok()) return s;
  if (missing) return Status::OK();

  std::set<uint64_t> aborted;
  size_t off = 0;
  while (data.size() - off >= kFrameHeaderBytes) {
    PayloadReader hdr(std::string_view(data).substr(off, kFrameHeaderBytes));
    uint32_t len = 0, crc = 0;
    hdr.U32(&len);
    hdr.U32(&crc);
    if (len > kMaxRecordLen || data.size() - off - kFrameHeaderBytes < len) {
      break;  // torn tail: length field overruns the file
    }
    const std::string_view payload =
        std::string_view(data).substr(off + kFrameHeaderBytes, len);
    if (util::Crc32(payload.data(), payload.size()) != crc) break;
    DecodedRecord rec;
    if (!DecodePayload(payload, &rec)) break;
    switch (rec.type) {
      case RecordType::kCreateTable:
        out->tables.emplace_back(rec.table_id, std::move(rec.table_name));
        break;
      case RecordType::kCommit:
        out->max_seq = std::max(out->max_seq, rec.commit.seq);
        out->max_xid = std::max(out->max_xid, rec.commit.xid);
        out->commits[rec.commit.seq] = std::move(rec.commit);
        break;
      case RecordType::kAbortMark:
        out->max_seq = std::max(out->max_seq, rec.abort_seq);
        aborted.insert(rec.abort_seq);
        break;
    }
    off += kFrameHeaderBytes + len;
    out->records++;
  }
  // Marks can trail their commit record by arbitrarily many frames
  // (other commits' records land in between), so filter at the end.
  for (uint64_t seq : aborted) out->commits.erase(seq);
  out->valid_bytes = off;
  out->torn_bytes = data.size() - off;
  return Status::OK();
}

}  // namespace pgssi::wal
