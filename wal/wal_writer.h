// Append-only redo-log writer with group-commit fsync batching on a
// dedicated fsync thread.
//
// One WalWriter per open Database. Appends are serialized by an
// internal mutex; the fsync itself runs on the writer's own syncer
// thread with the mutex RELEASED, so commits keep appending while a
// batch is being made durable — that is what forms the next batch.
//
// Group commit (Sync): a committer that needs offset E durable either
// finds durable_offset_ >= E already (a previous round's fsync covered
// it — free), or posts a sync request and waits. The syncer thread
// coalesces all posted requests into one round: it optionally dwells
// (bounded, cv-timed, and only when a caller said sibling commits are
// in flight — the commit_delay/commit_siblings analogue) until
// `batch_target` commit records are unsynced, snapshots the appended
// offset, fsyncs once, and publishes the new durable offset to every
// waiter at or below it. No committer thread ever runs the fsync
// syscall or the dwell — on the session server that used to pin a net
// worker for the whole batch window; now workers either cv-wait for
// their own offset (blocking API) or park a WaitToken on the gate
// (non-blocking API) and the syncer does the rest.
//
// Fsync-failure delivery: a failed round reports the error to every
// waiter whose offset the attempted fsync covered (their data is not
// durable); waiters beyond the attempted target re-post and a fresh
// round retries. The writer does NOT latch on a transient fsync error —
// per-commit handling (AppendCommit's abort-mark protocol) decides
// whether durability is permanently lost.
//
// Failure contract (the no-acked-but-not-durable ordering):
//  - Append failure: any partially written frame is rewound
//    (ftruncate back to the last good offset) so the log stays
//    well-formed; if even the rewind fails the writer latches failed_
//    and every later operation errors (durability can no longer be
//    promised).
//  - Commit fsync failure (AppendCommit): the commit record is already
//    in the log, so an ABORT MARK for its seq is appended and synced
//    before the error is returned — recovery must never replay a
//    commit its client saw fail. The mark itself gets a bounded retry
//    with backoff (a transient error on the mark's own append/fsync
//    must not escalate); only when every attempt fails does the writer
//    latch failed_. A lone transient fsync error therefore aborts one
//    transaction cleanly and the engine keeps committing.
//
// All of this runs inside the TxnManager stamp callback, BEFORE the
// commit seq is published through the completion ring: a failed
// append/fsync dooms the transaction while its versions are still
// invisible, and the seq is published unused so the watermark never
// sticks.
//
// Failpoint sites (util/failpoint.h): "wal_append" (before any bytes),
// "wal_append_partial" (crash after half the frame — a torn record),
// "wal_fsync" (the fsync call), "wal_after_fsync" (durable but
// unacknowledged), "wal_abort_mark" (the abort-mark append),
// "wal_fsync_stall" (each fire delays the syncer 1ms before the fsync —
// the arm-time repeat/chance budget shapes the stall; this is how chaos
// tests hold the commit gate closed).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "db/config.h"
#include "util/status.h"
#include "util/wait_token.h"

namespace pgssi::wal {

class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens (creating if absent) the log at `path` and truncates it to
  /// `keep_bytes` — the valid-prefix length recovery computed — so a
  /// torn tail is discarded before new records are appended after it.
  Status Open(const std::string& path, uint64_t keep_bytes);

  /// Appends one CRC-framed record. On success *end_offset is the file
  /// offset just past the frame (the argument to Sync).
  Status Append(std::string_view payload, uint64_t* end_offset);

  /// Durability barrier: returns once every byte below `end_offset` is
  /// fsynced. Posts a request to the syncer thread and waits.
  /// `batch_target`/`max_wait_us` shape the round's accumulation dwell
  /// (see file comment); pass 1/0 for an immediate fsync.
  Status Sync(uint64_t end_offset, uint32_t batch_target,
              uint32_t max_wait_us);

  /// Commit append + mode-appropriate barrier + abort-mark-on-failure,
  /// in one call (see the failure contract above). `payload` must be a
  /// kCommit record for `seq`.
  Status AppendCommit(std::string_view payload, uint64_t seq,
                      WalFsyncMode mode, uint32_t batch_target,
                      uint32_t max_wait_us);

  /// Final best-effort fsync + close. Idempotent.
  void Close();

  /// Non-blocking commit-gate probe for the session layer: if the
  /// syncer is running a group fsync right now, queues `token`
  /// (signaled when that round completes, success or failure) and
  /// returns true — the caller should park and retry its commit, by
  /// which time the batch it joins is fresh. Returns false when no
  /// round is running (nothing to wait for). Purely an admission hint:
  /// correctness never depends on it.
  bool RegisterSyncWaiter(const util::WaitTokenPtr& token);

  uint64_t appended_offset() const {
    return appended_.load(std::memory_order_acquire);
  }
  uint64_t durable_offset() const {
    return durable_.load(std::memory_order_acquire);
  }
  /// Total fsync calls issued — the bench's fsyncs-per-commit metric.
  uint64_t fsync_count() const {
    return fsyncs_.load(std::memory_order_relaxed);
  }

 private:
  // mu_ held.
  Status AppendLocked(std::string_view payload, uint64_t* end_offset);
  // The dedicated fsync thread's main loop.
  void SyncerLoop();

  std::mutex mu_;               // file appends + sync round state
  std::condition_variable cv_;  // append progress + fsync completion
  int fd_ = -1;
  std::atomic<uint64_t> appended_{0};  // bytes fully appended (mu_)
  std::atomic<uint64_t> durable_{0};   // bytes known fsynced
  uint64_t records_ = 0;               // frames appended (mu_)
  uint64_t synced_records_ = 0;        // frames covered by last fsync (mu_)
  bool sync_in_progress_ = false;      // a round's fsync is running (mu_)

  // ----- syncer thread state (mu_) -----
  std::thread syncer_;
  bool syncer_running_ = false;  // thread alive; waiters error when false
  bool stop_syncer_ = false;
  uint64_t sync_req_ = 0;        // highest offset any waiter needs durable
  uint32_t req_batch_target_ = 1;  // dwell shape for the pending round:
  uint32_t req_max_wait_us_ = 0;   // min() over the round's requesters
  // Failed-round error publication: waiters at or below err_upto_ whose
  // wait straddled the err_gen_ bump take err_status_; others re-post.
  uint64_t err_gen_ = 0;
  uint64_t err_upto_ = 0;
  Status err_status_;

  // Session-layer tokens parked on the in-progress round (mu_); swapped
  // out and signaled outside mu_ when it completes.
  std::vector<util::WaitTokenPtr> sync_waiters_;
  std::atomic<bool> failed_{false};    // latched: durability broken
  std::atomic<uint64_t> fsyncs_{0};
};

}  // namespace pgssi::wal
