#include "wal/wal_writer.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/failpoint.h"
#include "wal/wal_format.h"

namespace pgssi::wal {

namespace {
// Abort-mark durability retry: a transient fsync error while writing
// the mark should cost nothing extra (the transaction is aborting
// anyway), not permanently latch the writer. Exhausting all attempts
// means the device is genuinely refusing writes.
constexpr uint32_t kAbortMarkAttempts = 3;
constexpr uint32_t kAbortMarkBackoffUs = 100;  // doubles per attempt

Status IoError(const std::string& what, int err) {
  return Status::IOError(what + ": " + std::strerror(err));
}

int FsyncRetryEintr(int fd) {
  int r;
  do {
    r = ::fdatasync(fd);
  } while (r != 0 && errno == EINTR);
  return r;
}
}  // namespace

WalWriter::~WalWriter() { Close(); }

Status WalWriter::Open(const std::string& path, uint64_t keep_bytes) {
  std::unique_lock<std::mutex> l(mu_);
  if (fd_ >= 0) return Status::Internal("wal already open");
  fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) return IoError("wal open " + path, errno);
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    return IoError("wal fstat", err);
  }
  uint64_t size = static_cast<uint64_t>(st.st_size);
  if (keep_bytes < size) {
    // Discard the torn tail recovery stopped at; persist the cut so a
    // crash right after Open cannot resurrect half a record.
    if (::ftruncate(fd_, static_cast<off_t>(keep_bytes)) != 0 ||
        FsyncRetryEintr(fd_) != 0) {
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      return IoError("wal truncate torn tail", err);
    }
    size = keep_bytes;
  }
  appended_.store(size, std::memory_order_release);
  durable_.store(size, std::memory_order_release);

  // Make the log file's directory entry durable (a freshly created
  // wal.log otherwise vanishes with its directory on crash).
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    (void)::fsync(dfd);  // best effort
    ::close(dfd);
  }

  stop_syncer_ = false;
  sync_req_ = size;
  req_batch_target_ = UINT32_MAX;
  req_max_wait_us_ = UINT32_MAX;
  syncer_ = std::thread(&WalWriter::SyncerLoop, this);
  syncer_running_ = true;
  return Status::OK();
}

void WalWriter::Close() {
  std::thread t;
  {
    std::lock_guard<std::mutex> l(mu_);
    stop_syncer_ = true;
    t.swap(syncer_);
    cv_.notify_all();
  }
  if (t.joinable()) t.join();
  std::lock_guard<std::mutex> l(mu_);
  syncer_running_ = false;
  if (fd_ >= 0) {
    (void)FsyncRetryEintr(fd_);  // clean shutdown: everything durable
    ::close(fd_);
    fd_ = -1;
  }
  cv_.notify_all();  // stray waiters observe "wal closed"
}

Status WalWriter::AppendLocked(std::string_view payload,
                               uint64_t* end_offset) {
  if (failed_.load(std::memory_order_relaxed)) {
    return Status::IOError("wal writer failed (latched): durability lost");
  }
  if (fd_ < 0) return Status::IOError("wal not open");
  const std::string frame = EncodeFrame(payload);
  const uint64_t start = appended_.load(std::memory_order_relaxed);
  if (util::FailpointFires("wal_append")) {
    return Status::IOError("wal append failed (injected)");
  }
  size_t to_write = frame.size();
  if (util::FailpointEval("wal_append_partial") ==
      util::FailpointAction::kCrash) {
    // Torn-record injection: half a frame reaches the file, then the
    // process dies. Recovery must stop at `start`.
    (void)!::write(fd_, frame.data(), frame.size() / 2);
    std::_Exit(util::kFailpointCrashExit);
  }
  const char* p = frame.data();
  while (to_write > 0) {
    const ssize_t w = ::write(fd_, p, to_write);
    if (w < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      // Rewind any partial frame so the log stays well-formed for the
      // NEXT record — without this, everything appended after us would
      // sit beyond a torn frame and be unreachable to recovery.
      if (to_write != frame.size() &&
          ::ftruncate(fd_, static_cast<off_t>(start)) != 0) {
        failed_.store(true, std::memory_order_relaxed);
        return Status::IOError(
            "wal append failed and rewind failed: durability lost");
      }
      return IoError("wal append", err);
    }
    p += w;
    to_write -= static_cast<size_t>(w);
  }
  const uint64_t end = start + frame.size();
  appended_.store(end, std::memory_order_release);
  records_++;
  *end_offset = end;
  cv_.notify_all();  // wake a dwelling fsync leader
  return Status::OK();
}

Status WalWriter::Append(std::string_view payload, uint64_t* end_offset) {
  std::unique_lock<std::mutex> l(mu_);
  return AppendLocked(payload, end_offset);
}

Status WalWriter::Sync(uint64_t end_offset, uint32_t batch_target,
                       uint32_t max_wait_us) {
  std::unique_lock<std::mutex> l(mu_);
  uint64_t my_gen = err_gen_;
  bool posted = false;
  for (;;) {
    if (failed_.load(std::memory_order_relaxed)) {
      return Status::IOError("wal writer failed (latched): durability lost");
    }
    if (durable_.load(std::memory_order_relaxed) >= end_offset) {
      return Status::OK();  // a previous round's fsync covered us
    }
    if (my_gen != err_gen_) {
      // A round failed while we waited. If its attempted fsync covered
      // our offset, our data is not durable and the error is ours too;
      // otherwise re-post and let a fresh round retry.
      if (posted && end_offset <= err_upto_) return err_status_;
      my_gen = err_gen_;
    }
    if (!syncer_running_) return Status::IOError("wal closed");
    // (Re)post the request. The dwell shape is the min() over the
    // round's requesters, so one kAlways committer (batch 1, no wait)
    // collapses the whole round to an immediate fsync — batching can
    // only ever weaken toward stricter durability, never delay it.
    if (sync_req_ < end_offset) sync_req_ = end_offset;
    if (batch_target < req_batch_target_) req_batch_target_ = batch_target;
    if (max_wait_us < req_max_wait_us_) req_max_wait_us_ = max_wait_us;
    posted = true;
    cv_.notify_all();  // wake the syncer
    cv_.wait(l);
  }
}

void WalWriter::SyncerLoop() {
  std::unique_lock<std::mutex> l(mu_);
  while (!stop_syncer_) {
    if (failed_.load(std::memory_order_relaxed) || fd_ < 0 ||
        sync_req_ <= durable_.load(std::memory_order_relaxed)) {
      cv_.wait(l);
      continue;
    }
    // Pick up a round; posts that land after this shape the next one.
    const uint32_t batch_target =
        req_batch_target_ == UINT32_MAX ? 1 : req_batch_target_;
    const uint32_t max_wait_us =
        req_max_wait_us_ == UINT32_MAX ? 0 : req_max_wait_us_;
    req_batch_target_ = UINT32_MAX;
    req_max_wait_us_ = UINT32_MAX;
    // Dwell for stragglers: each append signals the cv, and the
    // deadline bounds the added latency. Requesters pass max_wait_us ==
    // 0 when no sibling commit is in flight (nothing to wait for) or in
    // kAlways mode.
    if (batch_target > 1 && max_wait_us > 0) {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(max_wait_us);
      while (!stop_syncer_ && records_ - synced_records_ < batch_target &&
             cv_.wait_until(l, deadline) != std::cv_status::timeout) {
      }
    }
    const uint64_t target = appended_.load(std::memory_order_relaxed);
    const uint64_t target_records = records_;
    const int fd = fd_;
    sync_in_progress_ = true;
    l.unlock();
    // Chaos site: each fire stalls the syncer 1ms with the gate closed —
    // committers park behind RegisterSyncWaiter and their commit-gate
    // deadline, not a worker thread, bounds the damage.
    while (util::FailpointFires("wal_fsync_stall")) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    int r = 0;
    if (util::FailpointFires("wal_fsync")) {
      r = -1;
      errno = EIO;
    } else if (fd < 0) {
      r = -1;
      errno = EBADF;
    } else {
      r = FsyncRetryEintr(fd);
    }
    const int err = errno;
    // Durable-but-unacknowledged crash window: data is on disk, no
    // caller has been told yet.
    if (r == 0) (void)util::FailpointFires("wal_after_fsync");
    l.lock();
    sync_in_progress_ = false;
    // Parked sessions are woken on success AND failure — a wake is only
    // permission to retry the commit; the retry re-runs the full
    // barrier.
    std::vector<util::WaitTokenPtr> wake;
    wake.swap(sync_waiters_);
    if (r != 0) {
      err_gen_++;
      err_upto_ = target;
      err_status_ = IoError("wal fsync", err);
      // Waiters covered by the attempt take the error and drop their
      // request; anything appended since stays posted for a retry.
      if (sync_req_ <= target) {
        sync_req_ = durable_.load(std::memory_order_relaxed);
      }
    } else {
      fsyncs_.fetch_add(1, std::memory_order_relaxed);
      if (target > durable_.load(std::memory_order_relaxed)) {
        durable_.store(target, std::memory_order_release);
      }
      if (target_records > synced_records_) synced_records_ = target_records;
    }
    l.unlock();
    cv_.notify_all();
    for (auto& t : wake) t->Signal();
    l.lock();
  }
  syncer_running_ = false;
  cv_.notify_all();  // stray waiters observe "wal closed"
}

bool WalWriter::RegisterSyncWaiter(const util::WaitTokenPtr& token) {
  std::lock_guard<std::mutex> l(mu_);
  if (!sync_in_progress_) return false;
  sync_waiters_.push_back(token);
  return true;
}

Status WalWriter::AppendCommit(std::string_view payload, uint64_t seq,
                               WalFsyncMode mode, uint32_t batch_target,
                               uint32_t max_wait_us) {
  uint64_t end = 0;
  Status s = Append(payload, &end);
  if (!s.ok()) return s;  // nothing (durable) written: plain clean abort
  if (mode == WalFsyncMode::kOff) return Status::OK();
  s = Sync(end, mode == WalFsyncMode::kAlways ? 1 : batch_target,
           mode == WalFsyncMode::kAlways ? 0 : max_wait_us);
  if (s.ok()) return s;
  // The commit record is in the log but could not be made durable, and
  // the caller is about to abort the transaction: append AND sync an
  // abort mark so recovery can never replay a commit whose client saw
  // an error. (The failed fsync may still have persisted the record.)
  //
  // The mark gets a bounded retry with backoff before the writer gives
  // up: a single transient error here used to latch failed_ forever,
  // turning one hiccup into a permanently read-only engine even though
  // the very next attempt would have succeeded. Only when every attempt
  // fails is durability genuinely unpromisable and failed_ latches —
  // from then on no commit is acknowledged. Each attempt re-evaluates
  // the "wal_abort_mark" failpoint, so tests inject exactly k
  // consecutive faults via the arm-time repeat count.
  Status ms;
  for (uint32_t attempt = 0; attempt < kAbortMarkAttempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          kAbortMarkBackoffUs << (attempt - 1)));
    }
    uint64_t mark_end = 0;
    ms = util::FailpointFires("wal_abort_mark")
             ? Status::IOError("wal abort-mark append failed (injected)")
             : Append(EncodeAbortMark(seq), &mark_end);
    if (ms.ok()) ms = Sync(mark_end, 1, 0);
    if (ms.ok()) break;
    if (failed_.load(std::memory_order_relaxed)) break;  // rewind failed: hopeless
  }
  if (!ms.ok()) failed_.store(true, std::memory_order_relaxed);
  return s;
}

}  // namespace pgssi::wal
