// WAL scan for crash recovery.
//
// ScanWal reads the log front to back and stops at the FIRST frame that
// is torn (truncated mid-frame), fails its CRC, or does not decode —
// everything before that point is the recoverable prefix, everything
// after is discarded (the writer truncates to valid_bytes on reopen).
//
// The scan returns:
//  - the tables created, in log order (ids were assigned in that order);
//  - committed write sets keyed by commit seq, with abort-marked seqs
//    removed (their fsync failed and the client saw an error — see
//    wal/wal_writer.h);
//  - the maximum commit seq and xid observed, so the reopened engine
//    restarts its allocators past everything the log ever used
//    (including seqs consumed by aborted or marked transactions).
//
// Replaying `commits` in ascending-seq order reproduces exactly the
// acknowledged-commit prefix, plus possibly a suffix of transactions
// that were fully logged but never acknowledged (their fsync — or the
// ack that follows it — raced the crash). Each such transaction is
// applied atomically or not at all, and its snapshot could not have
// observed any LOST transaction: a commit's ack waits for the watermark,
// which only advances over contiguously logged-and-synced predecessors,
// so a missing earlier record implies the later one was never
// acknowledged either. Dropping a non-acknowledged concurrent
// transaction is equivalent to a history in which it aborted.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"
#include "wal/wal_format.h"

namespace pgssi::wal {

struct WalScanResult {
  // (table id, name) in log order.
  std::vector<std::pair<TableId, std::string>> tables;
  // Replayable commits by seq; abort-marked seqs already removed.
  std::map<uint64_t, CommitRecord> commits;
  uint64_t max_seq = 0;       // over commit AND abort-mark records
  uint64_t max_xid = 0;
  uint64_t valid_bytes = 0;   // well-formed frame prefix length
  uint64_t torn_bytes = 0;    // bytes discarded after the prefix
  uint64_t records = 0;       // frames in the valid prefix
};

/// Missing file => OK with an empty result (first boot). I/O errors are
/// returned; torn/corrupt tails are NOT errors — they define the prefix.
Status ScanWal(const std::string& path, WalScanResult* out);

}  // namespace pgssi::wal
