#include "txn/txn_manager.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

namespace pgssi::txn {

TxnManager::BeginResult TxnManager::Begin(bool serializable_rw) {
  const XactId xid = next_xid_.fetch_add(1, std::memory_order_relaxed);
  // seq_cst counter bump BEFORE the snapshot loads: paired with the
  // seq_cst load in AnyActiveSerializableRW (which runs AFTER the
  // checking reader loaded its own snapshot), this guarantees that a
  // read-write Begin the checker misses took its snapshot no earlier
  // than the checker's — and a transaction beginning at-or-after a
  // snapshot can never endanger it (its rw-out partners all commit
  // after it began).
  if (serializable_rw) active_serializable_rw_.fetch_add(1);

  Shard& sh = ShardFor(xid);
  // Provisional registration first, real snapshot second. A DEFERRABLE
  // Begin scans the shards for concurrent read-write transactions; one
  // it does NOT see must have registered after the scan visited this
  // shard, so the reload below — ordered after that registration by the
  // shard mutex — cannot observe a watermark older than the scanner's
  // snapshot: the missed transaction is provably not concurrent with
  // it. (The old single Begin mutex gave this ordering for free.) The
  // provisional value is only ever too LOW, which merely makes
  // OldestActiveSnapshot more conservative for the registration window.
  const uint64_t provisional = last_committed_seq_.load();
  {
    std::lock_guard<std::mutex> l(sh.mu);
    sh.active.emplace(xid, ActiveTxn{provisional, serializable_rw});
    // Publish the (possibly too-low) provisional into the cached shard
    // minimum before the snapshot reload. A cleanup thread that misses
    // this seq_cst store entirely read the shard minimum BEFORE it in
    // the seq_cst order; its bound came from a watermark load that also
    // precedes it, so the reload below — a seq_cst load ordered after
    // this store — returns a watermark at least that large: the final
    // snapshot can never sink below a bound computed without it.
    if (provisional < sh.min_snapshot.load(std::memory_order_relaxed)) {
      sh.min_snapshot.store(provisional);
    }
  }
  const uint64_t snap = last_committed_seq_.load();
  if (snap != provisional) {
    std::lock_guard<std::mutex> l(sh.mu);
    sh.active[xid].snapshot_seq = snap;
    // The provisional may have been holding the cached minimum down.
    RecomputeMinLocked(sh);
  }
  return BeginResult{xid, snap};
}

void TxnManager::RecomputeMinLocked(Shard& sh) {
  uint64_t m = std::numeric_limits<uint64_t>::max();
  for (const auto& [xid, t] : sh.active) m = std::min(m, t.snapshot_seq);
  sh.min_snapshot.store(m);
}

void TxnManager::BootstrapRecovered(XactId next_xid, uint64_t last_seq) {
  next_xid_.store(std::max<XactId>(next_xid, 1), std::memory_order_relaxed);
  next_commit_seq_.store(last_seq, std::memory_order_relaxed);
  last_committed_seq_.store(last_seq, std::memory_order_release);
  // The ring is zero-initialized, so the publication loop's
  // ring[s] == s test cannot spuriously match a pre-crash slot.
}

uint64_t TxnManager::Commit(XactId xid,
                            const std::function<bool(uint64_t)>& stamp) {
  const uint64_t seq =
      next_commit_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Stamp first, publish second: a version carrying `seq` is invisible
  // to every snapshot until the watermark reaches seq, and the watermark
  // only advances over fully stamped sequences. A FAILED stamp (WAL
  // error) stamped nothing — the seq is still published below so the
  // watermark never sticks, it just covers no versions.
  const bool stamped_ok = !stamp || stamp(seq);

  // Ring-slot guard: the slot is shared with seq - kCommitRing, which
  // must have been published (watermark passed it) before reuse. Only
  // ever waits with kCommitRing commits in flight simultaneously.
  while (last_committed_seq_.load(std::memory_order_acquire) + kCommitRing <
         seq) {
    std::this_thread::yield();
  }
  ring_[static_cast<size_t>(seq) & (kCommitRing - 1)].store(
      seq, std::memory_order_release);

  // Batched publication: advance the watermark across every contiguously
  // completed seq. If our predecessor is still stamping we leave our seq
  // for it to publish; whoever closes a gap publishes the whole batch.
  // Each CAS is a release-RMW whose thread acquire-loaded the ring slots
  // it publishes, so a reader acquiring the watermark sees every stamp
  // at or below it.
  uint64_t w = last_committed_seq_.load(std::memory_order_acquire);
  for (;;) {
    const uint64_t next = w + 1;
    if (ring_[static_cast<size_t>(next) & (kCommitRing - 1)].load(
            std::memory_order_acquire) != next) {
      break;
    }
    if (last_committed_seq_.compare_exchange_weak(
            w, next, std::memory_order_acq_rel, std::memory_order_acquire)) {
      w = next;
    }
    // On CAS failure `w` reloaded: another publisher advanced; continue
    // from wherever the watermark is now.
  }
  // If the watermark moved, wake any committer parked behind a slow
  // predecessor. The atomic waiter count keeps the uncontended path
  // (nobody waiting — the overwhelmingly common case) mutex-free.
  if (publish_waiters_.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> l(publish_mu_);
    publish_cv_.notify_all();
  }

  // Do not return (or deregister) until our own seq is published. The
  // safe-snapshot and DEFERRABLE machinery relies on "absent from the
  // active registry => visible to any later snapshot": deregistering
  // with the seq unpublished would let a read-only Begin take a snapshot
  // S < seq, see no active read-write transaction, and wrongly mark the
  // snapshot safe while this (concurrent, committed) transaction may
  // carry a dangerous out-edge. Only waits while a PREDECESSOR is still
  // inside stamp() (e.g. behind a slow WAL group fsync); the gap-closer
  // publishes for the whole batch. Bounded condvar wait rather than the
  // old spin-yield: a spinning worker would starve session multiplexing
  // when workers are scarce, and the wait_for bound (re-check every
  // 100us) recovers from the benign lost-wakeup race between our count
  // increment and a publisher's count check.
  if (last_committed_seq_.load(std::memory_order_acquire) < seq) {
    publish_waiters_.fetch_add(1, std::memory_order_acq_rel);
    std::unique_lock<std::mutex> l(publish_mu_);
    while (last_committed_seq_.load(std::memory_order_acquire) < seq) {
      publish_cv_.wait_for(l, std::chrono::microseconds(100));
    }
    l.unlock();
    publish_waiters_.fetch_sub(1, std::memory_order_acq_rel);
  }

  Deregister(xid);
  return stamped_ok ? seq : 0;
}

void TxnManager::Deregister(XactId xid) {
  Shard& sh = ShardFor(xid);
  bool was_rw = false;
  {
    std::lock_guard<std::mutex> l(sh.mu);
    auto it = sh.active.find(xid);
    if (it == sh.active.end()) return;
    was_rw = it->second.serializable_rw;
    const uint64_t snap = it->second.snapshot_seq;
    sh.active.erase(it);
    if (snap <= sh.min_snapshot.load(std::memory_order_relaxed)) {
      RecomputeMinLocked(sh);  // we may have been the minimum holder
    }
  }
  if (was_rw) active_serializable_rw_.fetch_sub(1);
  sh.finished_cv.notify_all();
}

void TxnManager::Abort(XactId xid) { Deregister(xid); }

uint64_t TxnManager::OldestActiveSnapshot() const {
  uint64_t oldest = std::numeric_limits<uint64_t>::max();
  for (const Shard& sh : shards_) {
    oldest = std::min(oldest, sh.min_snapshot.load());
  }
  return oldest;
}

uint64_t TxnManager::CleanupBound() const {
  // Read the watermark FIRST, then the oldest snapshot, and clamp to
  // their minimum. A bare OldestActiveSnapshot is racy — a thread can
  // compute it (say, infinity, with nothing active), stall, and apply it
  // much later, freeing SIREAD state of transactions that committed in
  // the meantime while a concurrent reader is live. Any transaction with
  // commit_seq <= the pre-read bound was published before the bound was
  // read; and a Begin this scan missed published its shard-minimum
  // update after the scan's seq_cst load, so its own snapshot reload
  // (seq_cst, ordered after that update) observed a watermark >= the
  // bound — it is not concurrent with anything freed. (Both loads here
  // are seq_cst; see the matching comment in Begin.)
  const uint64_t bound = last_committed_seq_.load();
  return std::min(bound, OldestActiveSnapshot());
}

std::vector<XactId> TxnManager::ActiveSerializableRW() const {
  std::vector<XactId> out;
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> l(sh.mu);
    for (const auto& [xid, t] : sh.active) {
      if (t.serializable_rw) out.push_back(xid);
    }
  }
  return out;
}

void TxnManager::WaitForFinish(const std::vector<XactId>& xids) {
  for (XactId x : xids) {
    Shard& sh = ShardFor(x);
    std::unique_lock<std::mutex> l(sh.mu);
    sh.finished_cv.wait(l, [&] { return sh.active.count(x) == 0; });
  }
}

bool TxnManager::AnyActive(const std::vector<XactId>& xids) const {
  for (XactId x : xids) {
    Shard& sh = ShardFor(x);
    std::lock_guard<std::mutex> l(sh.mu);
    if (sh.active.count(x)) return true;
  }
  return false;
}

}  // namespace pgssi::txn
