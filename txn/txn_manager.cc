#include "txn/txn_manager.h"

#include <algorithm>
#include <limits>

namespace pgssi::txn {

TxnManager::BeginResult TxnManager::Begin(bool serializable_rw) {
  std::lock_guard<std::mutex> l(mu_);
  XactId xid = next_xid_++;
  uint64_t snap = last_committed_seq_.load(std::memory_order_relaxed);
  active_[xid] = ActiveTxn{snap, serializable_rw};
  return BeginResult{xid, snap};
}

uint64_t TxnManager::Commit(XactId xid,
                            const std::function<void(uint64_t)>& stamp) {
  // The commit lock makes (stamp versions, publish seq) atomic with
  // respect to snapshot acquisition: a reader that sees snapshot S is
  // guaranteed every version with commit_seq <= S is already stamped.
  std::lock_guard<std::mutex> cl(commit_mu_);
  uint64_t seq;
  {
    std::lock_guard<std::mutex> l(mu_);
    seq = ++next_commit_seq_;
  }
  if (stamp) stamp(seq);
  {
    std::lock_guard<std::mutex> l(mu_);
    last_committed_seq_.store(seq, std::memory_order_release);
    active_.erase(xid);
  }
  finished_cv_.notify_all();
  return seq;
}

void TxnManager::Abort(XactId xid) {
  {
    std::lock_guard<std::mutex> l(mu_);
    active_.erase(xid);
  }
  finished_cv_.notify_all();
}

uint64_t TxnManager::OldestActiveSnapshot() const {
  std::lock_guard<std::mutex> l(mu_);
  uint64_t oldest = std::numeric_limits<uint64_t>::max();
  for (const auto& [xid, t] : active_) {
    oldest = std::min(oldest, t.snapshot_seq);
  }
  return oldest;
}

std::vector<XactId> TxnManager::ActiveSerializableRW() const {
  std::lock_guard<std::mutex> l(mu_);
  std::vector<XactId> out;
  for (const auto& [xid, t] : active_) {
    if (t.serializable_rw) out.push_back(xid);
  }
  return out;
}

bool TxnManager::AnyActiveSerializableRW() const {
  std::lock_guard<std::mutex> l(mu_);
  for (const auto& [xid, t] : active_) {
    if (t.serializable_rw) return true;
  }
  return false;
}

void TxnManager::WaitForFinish(const std::vector<XactId>& xids) {
  std::unique_lock<std::mutex> l(mu_);
  finished_cv_.wait(l, [&] {
    for (XactId x : xids) {
      if (active_.count(x)) return false;
    }
    return true;
  });
}

uint64_t TxnManager::next_xid() const {
  std::lock_guard<std::mutex> l(mu_);
  return next_xid_;
}

}  // namespace pgssi::txn
