// Transaction manager: xid assignment, commit-sequence-based snapshots,
// and the active-transaction registry used for SIREAD cleanup and the
// Section 4 safe-snapshot (DEFERRABLE) machinery.
//
// Snapshots are commit sequence numbers: a transaction beginning at
// snapshot S sees exactly the versions stamped with commit_seq <= S.
//
// Concurrency design (no global mutex anywhere on Begin/Commit):
//  - xids and commit seqs come from atomic allocators;
//  - the active-transaction registry is sharded by xid hash, so Begin /
//    finish touch one shard mutex and only the registry scans
//    (OldestActiveSnapshot, ActiveSerializableRW) visit all shards;
//  - last_committed_seq_ is a published WATERMARK, advanced over
//    contiguously completed commits via a completion ring (epoch-batched
//    publication): each committer stamps its versions with its
//    pre-allocated seq, marks its ring slot done, and whoever observes
//    the contiguous prefix closed publishes for the whole batch with CAS
//    steps. Snapshot acquisition is one atomic load — a reader that
//    observes watermark S is guaranteed (by the release/acquire chain
//    through the ring and the watermark CASes) that every version with
//    commit_seq <= S is fully stamped.
// A commit whose predecessor is still stamping leaves its seq for the
// predecessor to publish (the gap-closer publishes the whole batch),
// then WAITS until its own seq is covered by the watermark before
// deregistering and returning. That wait preserves the invariant the
// safe-snapshot / DEFERRABLE machinery depends on: a transaction absent
// from the active registry is visible to every later snapshot.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/types.h"

namespace pgssi::txn {

class TxnManager {
 public:
  struct BeginResult {
    XactId xid;
    uint64_t snapshot_seq;
  };

  /// Registers a new transaction. `serializable_rw` marks transactions
  /// that participate in SSI as potential writers (the set a DEFERRABLE
  /// read-only transaction must wait out).
  BeginResult Begin(bool serializable_rw);

  /// Commits `xid`: runs `stamp` with the pre-allocated next commit
  /// sequence number (which appends the WAL record and writes commit_seq
  /// into the transaction's versions), then publishes the sequence
  /// through the completion ring and wakes waiters. Returns the assigned
  /// sequence.
  ///
  /// `stamp` may FAIL (return false) — e.g. a WAL append or fsync error
  /// — in which case nothing was stamped and Commit returns 0: the
  /// caller must treat the transaction as aborted. The consumed sequence
  /// is still published through the ring as a no-op (no version carries
  /// it), because leaving its slot open would stall the watermark — and
  /// with it every later commit — forever. Failure ordering matters:
  /// stamp runs strictly BEFORE publication, so a transaction whose
  /// durability barrier failed is doomed while its writes are still
  /// invisible to every snapshot.
  uint64_t Commit(XactId xid, const std::function<bool(uint64_t)>& stamp);

  void Abort(XactId xid);

  /// Lock-free (one atomic load): read on every snapshot acquisition,
  /// SSI commit/cleanup, and read-only commit.
  uint64_t LastCommittedSeq() const {
    return last_committed_seq_.load(std::memory_order_acquire);
  }
  /// Smallest snapshot among active transactions; UINT64_MAX when none.
  /// Lock-free: one atomic load per shard (each shard caches its own
  /// minimum, maintained under the shard mutex on Begin/finish), so the
  /// SIREAD cleanup threshold and version-chain pruning no longer scan
  /// every shard's registry under its mutex.
  uint64_t OldestActiveSnapshot() const;
  /// The Section 5.3 cleanup threshold: min(LastCommittedSeq,
  /// OldestActiveSnapshot), with the loads ordered so the bound can
  /// never free state a concurrent Begin still depends on (see the
  /// implementation comment).
  uint64_t CleanupBound() const;
  std::vector<XactId> ActiveSerializableRW() const;
  /// Lock-free (one atomic counter read; seq_cst so it cannot reorder
  /// with the snapshot load that precedes it in the safe-snapshot check).
  bool AnyActiveSerializableRW() const {
    return active_serializable_rw_.load() > 0;
  }
  /// Blocks until none of `xids` is active.
  void WaitForFinish(const std::vector<XactId>& xids);
  /// Non-blocking probe used by the DEFERRABLE session state machine:
  /// true while any of `xids` is still registered.
  bool AnyActive(const std::vector<XactId>& xids) const;

  uint64_t next_xid() const {
    return next_xid_.load(std::memory_order_relaxed);
  }

  /// Crash recovery: restart the allocators past everything the WAL ever
  /// recorded. `last_seq` becomes the published watermark (every
  /// recovered version is stamped with a seq <= it) and the next commit
  /// gets last_seq + 1; xids resume at `next_xid`. Must be called before
  /// any Begin — the registry is assumed empty.
  void BootstrapRecovered(XactId next_xid, uint64_t last_seq);

 private:
  struct ActiveTxn {
    uint64_t snapshot_seq;
    bool serializable_rw;
  };
  // Power-of-two shard count: xids are dense, so low bits spread evenly.
  static constexpr size_t kShards = 16;
  // Completion-ring capacity: bounds the number of in-flight (allocated
  // but unpublished) commit seqs. Far above any realistic thread count;
  // a committer that laps the ring waits for the watermark to catch up.
  static constexpr size_t kCommitRing = 4096;

  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::condition_variable finished_cv;
    std::unordered_map<XactId, ActiveTxn> active;
    // Cached min over active[*].snapshot_seq (UINT64_MAX when empty).
    // Written only under mu (lowered on Begin, recomputed when the
    // holder raises its snapshot or deregisters); read lock-free by
    // OldestActiveSnapshot. May transiently sit BELOW the true map
    // minimum (a Begin's provisional value), which only makes the
    // cleanup bound more conservative — never above it. seq_cst, paired
    // with the seq_cst watermark loads in Begin/CleanupBound.
    std::atomic<uint64_t> min_snapshot{UINT64_MAX};
  };
  Shard& ShardFor(XactId xid) const {
    return shards_[static_cast<size_t>(xid) & (kShards - 1)];
  }
  void Deregister(XactId xid);
  // Recomputes sh.min_snapshot from the map; sh.mu held.
  static void RecomputeMinLocked(Shard& sh);

  std::atomic<XactId> next_xid_{1};
  std::atomic<uint64_t> next_commit_seq_{0};
  // Published watermark: every seq <= this is fully stamped.
  std::atomic<uint64_t> last_committed_seq_{0};
  // Active SSI read-write transactions (see AnyActiveSerializableRW).
  std::atomic<int64_t> active_serializable_rw_{0};
  // ring_[s & (kCommitRing-1)] == s  <=>  seq s has finished stamping
  // and awaits (or has completed) publication. Slots are implicitly
  // reclaimed when the watermark passes them.
  std::array<std::atomic<uint64_t>, kCommitRing> ring_{};
  mutable std::array<Shard, kShards> shards_;
  // Watermark-wait rendezvous: a committer whose predecessor is still
  // inside stamp() (e.g. behind a slow WAL fsync) parks here instead of
  // spin-yielding (see Commit). publish_waiters_ lets publishers skip
  // the mutex entirely on the no-waiter fast path.
  std::mutex publish_mu_;
  std::condition_variable publish_cv_;
  std::atomic<int64_t> publish_waiters_{0};
};

}  // namespace pgssi::txn
