// Transaction manager: xid assignment, commit-sequence-based snapshots,
// and the active-transaction registry used for SIREAD cleanup and the
// Section 4 safe-snapshot (DEFERRABLE) machinery.
//
// Snapshots are commit sequence numbers: a transaction beginning at
// snapshot S sees exactly the versions stamped with commit_seq <= S.
// Commit stamping and snapshot publication are serialized so a published
// sequence number never precedes the visibility of its versions.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/types.h"

namespace pgssi::txn {

class TxnManager {
 public:
  struct BeginResult {
    XactId xid;
    uint64_t snapshot_seq;
  };

  /// Registers a new transaction. `serializable_rw` marks transactions
  /// that participate in SSI as potential writers (the set a DEFERRABLE
  /// read-only transaction must wait out).
  BeginResult Begin(bool serializable_rw);

  /// Commits `xid`: assigns the next commit sequence number, runs `stamp`
  /// (which writes commit_seq into the transaction's versions) while
  /// holding the commit lock, then publishes the sequence and wakes
  /// waiters. Returns the assigned sequence.
  uint64_t Commit(XactId xid, const std::function<void(uint64_t)>& stamp);

  void Abort(XactId xid);

  /// Lock-free (one atomic load): read on every SSI commit/cleanup and by
  /// read-only commits, so it must not rejoin the registry mutex.
  uint64_t LastCommittedSeq() const {
    return last_committed_seq_.load(std::memory_order_acquire);
  }
  /// Smallest snapshot among active transactions; UINT64_MAX when none.
  uint64_t OldestActiveSnapshot() const;
  std::vector<XactId> ActiveSerializableRW() const;
  bool AnyActiveSerializableRW() const;
  /// Blocks until none of `xids` is active.
  void WaitForFinish(const std::vector<XactId>& xids);

  uint64_t next_xid() const;

 private:
  struct ActiveTxn {
    uint64_t snapshot_seq;
    bool serializable_rw;
  };

  mutable std::mutex mu_;
  std::condition_variable finished_cv_;
  std::mutex commit_mu_;  // serializes stamp + publish
  XactId next_xid_ = 1;
  // Written under mu_ (publication ordering), read lock-free.
  std::atomic<uint64_t> last_committed_seq_{0};
  uint64_t next_commit_seq_ = 0;
  std::unordered_map<XactId, ActiveTxn> active_;
};

}  // namespace pgssi::txn
