// Software CRC-32 (IEEE 802.3 reflected polynomial 0xEDB88320), used to
// frame WAL records. Table-driven, byte at a time — recovery-path speed
// is dominated by replay, not checksumming, so no slicing tricks.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace pgssi::util {

namespace detail {
inline const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t c = i;
      for (int k = 0; k < 8; k++) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// CRC-32 of `n` bytes at `data`; chainable via `seed` (pass the previous
/// result to continue a running checksum).
inline uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0) {
  const auto& table = detail::Crc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = ~seed;
  for (size_t i = 0; i < n; i++) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace pgssi::util
