// Debug-build invariant checks and a mutex wrapper that can prove it is
// held. PGSSI_DCHECK compiles away in NDEBUG builds (the default
// RelWithDebInfo); the TSan preset builds Debug, so the partition-lock
// assertions in the SIREAD manager run under the sanitizer in CI.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#if !defined(NDEBUG) || defined(PGSSI_FORCE_DCHECK)
#define PGSSI_DCHECK_IS_ON 1
#else
#define PGSSI_DCHECK_IS_ON 0
#endif

#if PGSSI_DCHECK_IS_ON
#define PGSSI_DCHECK(cond)                                            \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "PGSSI_DCHECK failed at %s:%d: %s\n",      \
                   __FILE__, __LINE__, #cond);                        \
      std::abort();                                                   \
    }                                                                 \
  } while (0)
#else
#define PGSSI_DCHECK(cond) \
  do {                     \
  } while (0)
#endif

namespace pgssi {

/// std::mutex plus AssertHeld() in debug builds. Used for the SIREAD
/// partition locks so internal helpers can assert the owning partition
/// lock is actually held where the locking protocol requires it.
class CheckedMutex {
 public:
  void lock() {
    mu_.lock();
#if PGSSI_DCHECK_IS_ON
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
  }
  void unlock() {
#if PGSSI_DCHECK_IS_ON
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
#endif
    mu_.unlock();
  }
  bool try_lock() {
    if (!mu_.try_lock()) return false;
#if PGSSI_DCHECK_IS_ON
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
    return true;
  }
  void AssertHeld() const {
#if PGSSI_DCHECK_IS_ON
    PGSSI_DCHECK(owner_.load(std::memory_order_relaxed) ==
                 std::this_thread::get_id());
#endif
  }

 private:
  std::mutex mu_;
#if PGSSI_DCHECK_IS_ON
  std::atomic<std::thread::id> owner_{};
#endif
};

}  // namespace pgssi
