// Striped reader-writer latch for the heap/version-chain store.
//
// A power-of-two array of cache-line-aligned std::shared_mutex stripes;
// a chain's stripe is chosen by hashing its TupleId, so writers of
// independent keys land on independent stripes instead of serializing on
// one per-table latch. Stripe count 1 reproduces the old single-latch
// behavior (the bench A/B baseline, EngineConfig::heap_stripes).
//
// The latch guards only chain *content* (the versions vector). Structure
// — index shape, chain creation/removal, the tuples container layout —
// is guarded by the table's index latch, which every chain access takes
// shared first. Lock order: index latch > stripe > SIREAD partition.
#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>

#include "util/types.h"

namespace pgssi {

class StripedLatch {
 public:
  explicit StripedLatch(uint32_t stripes) {
    size_t n = 1;
    while (n < stripes && n < kMaxStripes) n <<= 1;
    mask_ = n - 1;
    stripes_ = std::make_unique<Stripe[]>(n);
  }
  StripedLatch(const StripedLatch&) = delete;
  StripedLatch& operator=(const StripedLatch&) = delete;

  /// The stripe guarding the chain with this TupleId.
  std::shared_mutex& For(TupleId tid) const {
    return stripes_[Mix(tid) & mask_].mu;
  }

  size_t stripe_count() const { return mask_ + 1; }

 private:
  static constexpr size_t kMaxStripes = 4096;

  struct alignas(64) Stripe {
    mutable std::shared_mutex mu;
  };

  // Finalizer of splitmix64: adjacent TupleIds (the common allocation
  // pattern) spread across stripes instead of marching through them.
  static uint64_t Mix(uint64_t h) {
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return h;
  }

  size_t mask_;
  std::unique_ptr<Stripe[]> stripes_;
};

}  // namespace pgssi
