// Basic identifier types shared by every layer.
#pragma once

#include <cstdint>

namespace pgssi {

using TableId = uint32_t;     // also the SIREAD "relation" id
using RelationId = uint32_t;  // alias used by the lock manager
using PageId = uint64_t;      // B+-tree leaf id; SIREAD page granularity
using TupleId = uint64_t;     // index into a table's tuple-chain store
using XactId = uint64_t;      // transaction id assigned by TxnManager

inline constexpr TableId kInvalidTable = 0;
inline constexpr XactId kInvalidXact = 0;

}  // namespace pgssi
