// Tiny test-and-set spinlock for leaf-level critical sections (a few
// loads/stores, never blocking I/O or another lock except when the
// locking order explicitly allows it). Backs the per-SerializableXact
// held-lock bookkeeping in the partitioned SIREAD manager, where a full
// std::mutex per transaction would dominate the state it protects.
//
// Spins with a pause/yield backoff so an oversubscribed machine (more
// runnable threads than cores) does not burn whole scheduler quanta.
#pragma once

#include <atomic>
#include <thread>

namespace pgssi {

class SpinLock {
 public:
  void lock() {
    int spins = 0;
    while (flag_.test_and_set(std::memory_order_acquire)) {
      if (++spins < 64) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      } else {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
  bool try_lock() { return !flag_.test_and_set(std::memory_order_acquire); }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

}  // namespace pgssi
