// One-shot wake-up token for suspended sessions.
//
// A non-blocking engine call that cannot proceed (a row-lock conflict, a
// WAL group-fsync in flight) returns Code::kWouldBlock and hands the
// caller a WaitToken. The engine signals the token when the obstacle
// *may* have cleared — the caller then re-issues the same call, which
// either succeeds or parks again on a fresh token. Signals are therefore
// permission to retry, not a grant: spurious signals are harmless and
// expected.
//
// Thread-safety: Signal / OnSignal / WaitFor may race freely. Signal is
// idempotent; the callback runs exactly once, on whichever thread loses
// the set-vs-signal race (possibly inline in OnSignal when the token was
// already signaled). The callback must not block: the net server's
// callback only flips an atomic and pushes the session onto a run queue.
//
// Tokens are shared_ptr-held by both the waiter and the engine-side
// registry (lock table, WAL writer), so a waiter that gives up (abort,
// teardown) can simply drop its reference; a late Signal then fires into
// a token nobody observes.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>

namespace pgssi::util {

class WaitToken {
 public:
  /// Idempotent: the first call marks the token ready, wakes blocking
  /// waiters, and runs the callback (if installed); later calls no-op.
  void Signal() {
    std::function<void()> cb;
    {
      std::lock_guard<std::mutex> l(mu_);
      if (ready_) return;
      ready_ = true;
      cb = std::move(cb_);
      cb_ = nullptr;
    }
    cv_.notify_all();
    if (cb) cb();
  }

  bool ready() const {
    std::lock_guard<std::mutex> l(mu_);
    return ready_;
  }

  /// Installs the wake callback. If the token was already signaled the
  /// callback runs immediately (on this thread) — the registrar cannot
  /// lose the race against an early Signal.
  void OnSignal(std::function<void()> cb) {
    {
      std::lock_guard<std::mutex> l(mu_);
      if (!ready_) {
        cb_ = std::move(cb);
        return;
      }
    }
    cb();
  }

  /// Blocking park with a deadline; returns true if signaled. Used by
  /// embedded callers and tests; the net server never blocks on tokens
  /// (it installs OnSignal callbacks instead).
  bool WaitFor(uint64_t timeout_us) {
    std::unique_lock<std::mutex> l(mu_);
    return cv_.wait_for(l, std::chrono::microseconds(timeout_us),
                        [&] { return ready_; });
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool ready_ = false;
  std::function<void()> cb_;
};

using WaitTokenPtr = std::shared_ptr<WaitToken>;

}  // namespace pgssi::util
