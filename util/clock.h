// Monotonic clock helpers.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace pgssi {

inline uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Simulated I/O stall (EngineConfig::simulated_io_delay_us). Short delays
/// spin to keep the distribution tight; longer ones yield to the scheduler.
inline void SimulatedIoDelay(uint64_t micros) {
  if (micros == 0) return;
  if (micros < 50) {
    const uint64_t until = NowMicros() + micros;
    while (NowMicros() < until) {
    }
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

}  // namespace pgssi
