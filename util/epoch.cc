#include "util/epoch.h"

#include <functional>
#include <thread>

namespace pgssi::util {

EpochManager::EpochManager() = default;

EpochManager::~EpochManager() {
  // Destruction contract: no pins, no concurrent retires. Free the lot.
  for (auto& g : gens_) {
    std::lock_guard<SpinLock> lg(g.mu);
    SweepGenerationLocked(g);
  }
}

uint32_t EpochManager::PinSlot() {
  const uint32_t slot = static_cast<uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) &
      (kSlots - 1));
  Slot& s = slots_[slot];
  // First pinner of the slot stamps the epoch; nested / colliding pins
  // ride on it (a colliding thread's pin is covered because the slot's
  // stamp is at most as new as its own pin time — conservative). Until
  // the stamp lands, MinPinnedEpoch treats the slot as epoch 1, which
  // blocks every sweep, so the fetch_add alone already protects us.
  if (s.depth.fetch_add(1, std::memory_order_seq_cst) == 0) {
    s.epoch.store(global_epoch_.load(std::memory_order_seq_cst),
                  std::memory_order_seq_cst);
  }
  return slot;
}

void EpochManager::UnpinSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  if (s.depth.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    // Last one out clears the stamp. A racing pinner on the same slot
    // (depth briefly 0 -> 1 again) may have this store clobber its
    // fresh stamp; the slot then reads as "in-flight" (depth > 0,
    // epoch 0), which blocks sweeps — conservative, never unsafe, and
    // it heals at that pin's unpin.
    s.epoch.store(0, std::memory_order_seq_cst);
  }
}

uint64_t EpochManager::MinPinnedEpoch() const {
  uint64_t min = UINT64_MAX;
  for (const Slot& s : slots_) {
    if (s.depth.load(std::memory_order_seq_cst) == 0) continue;
    const uint64_t e = s.epoch.load(std::memory_order_seq_cst);
    // Stamp not visible yet: treat as ancient, blocking all sweeps.
    const uint64_t eff = (e == 0) ? 1 : e;
    if (eff < min) min = eff;
  }
  return min;
}

void EpochManager::Retire(void* obj, void (*deleter)(void*)) {
  auto* node = new RetiredNode{nullptr, obj, deleter};
  for (;;) {
    const uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    Generation& g = gens_[e & (kGenerations - 1)];
    {
      std::lock_guard<SpinLock> lg(g.mu);
      if (g.head == nullptr) g.epoch = e;
      if (g.epoch == e) {
        node->next = g.head;
        g.head = node;
        g.count.fetch_add(1, std::memory_order_relaxed);
        retired_count_.fetch_add(1, std::memory_order_release);
        return;
      }
      // The ring wrapped onto a generation still holding an old epoch's
      // retirees (possible only if sweeps fell kGenerations behind —
      // e.g. a long-held pin). Note: g.epoch > e cannot happen (the
      // epoch advanced under us); only a stale small epoch blocks us.
    }
    // Help sweep, then retry against the (possibly advanced) epoch.
    TryAdvanceAndSweep();
    std::this_thread::yield();
  }
}

void EpochManager::SweepGenerationLocked(Generation& g) {
  RetiredNode* n = g.head;
  g.head = nullptr;
  g.epoch = 0;
  size_t freed = 0;
  while (n != nullptr) {
    RetiredNode* next = n->next;
    n->deleter(n->obj);
    delete n;
    ++freed;
    n = next;
  }
  if (freed > 0) {
    g.count.store(0, std::memory_order_relaxed);
    retired_count_.fetch_sub(freed, std::memory_order_release);
    freed_count_.fetch_add(freed, std::memory_order_relaxed);
  }
}

void EpochManager::TryAdvanceAndSweep() {
  if (!advance_mu_.try_lock()) return;  // someone else is on it
  const uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  const uint64_t min_pinned = MinPinnedEpoch();

  // Advance once every pinned slot has observed the current epoch. With
  // no pins at all (min == UINT64_MAX) advancing is always allowed.
  if (min_pinned >= e) {
    global_epoch_.store(e + 1, std::memory_order_seq_cst);
  }

  // Sweep rule: generation G (holding epoch-G retirees) is free once
  // every pin post-dates it by two epochs — a pinned reader spans at
  // most [pin_epoch, pin_epoch + 1), so min_pinned >= G + 2 means no
  // pin can have begun while epoch-G objects were still linked. With no
  // pins, references cannot be held at all (the Pin contract), so
  // everything sweeps.
  for (auto& g : gens_) {
    std::lock_guard<SpinLock> lg(g.mu);
    if (g.head == nullptr) continue;
    if (min_pinned == UINT64_MAX || g.epoch + 2 <= min_pinned) {
      SweepGenerationLocked(g);
    }
  }
  advance_mu_.unlock();
}

void EpochManager::Quiesce() {
  // At a quiescent point each TryAdvanceAndSweep advances one epoch;
  // kGenerations + 2 rounds are enough to lap every generation.
  for (uint32_t i = 0; i < kGenerations + 2 && RetiredObjectCount() > 0;
       ++i) {
    TryAdvanceAndSweep();
  }
}

}  // namespace pgssi::util
