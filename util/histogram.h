// Simple exact histogram (stores samples) for latency reporting in the
// benches; percentile queries sort lazily.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace pgssi {

class Histogram {
 public:
  void Add(double v) {
    samples_.push_back(v);
    sorted_ = false;
    if (v > max_) max_ = v;
    if (v < min_ || samples_.size() == 1) min_ = v;
    sum_ += v;
  }

  size_t count() const { return samples_.size(); }
  double max() const { return samples_.empty() ? 0 : max_; }
  double min() const { return samples_.empty() ? 0 : min_; }
  double Mean() const {
    return samples_.empty() ? 0 : sum_ / static_cast<double>(samples_.size());
  }

  double Median() { return Percentile(50); }

  /// p in [0, 100]; nearest-rank.
  double Percentile(double p) {
    if (samples_.empty()) return 0;
    Sort();
    double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    size_t i = static_cast<size_t>(rank);
    if (i + 1 >= samples_.size()) return samples_.back();
    double frac = rank - static_cast<double>(i);
    return samples_[i] * (1 - frac) + samples_[i + 1] * frac;
  }

  /// Absorbs another histogram's samples (used to fold per-thread latency
  /// histograms into one after a multithreaded driver run).
  void Merge(const Histogram& other) {
    for (double v : other.samples_) Add(v);
  }

  void Clear() {
    samples_.clear();
    sorted_ = false;
    max_ = 0;
    min_ = 0;
    sum_ = 0;
  }

 private:
  void Sort() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  bool sorted_ = false;
  double max_ = 0;
  double min_ = 0;
  double sum_ = 0;
};

}  // namespace pgssi
