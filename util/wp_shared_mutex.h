// A writer-preferring shared mutex: std::shared_mutex plus an advisory
// gate that parks NEW shared acquirers while any exclusive acquirer is
// waiting.
//
// Why it exists: glibc's pthread_rwlock (and therefore libstdc++'s
// std::shared_mutex) is reader-preferring by default — a continuous
// stream of overlapping shared holders starves an exclusive waiter
// indefinitely. The legacy index latch (`Table::index_mu`,
// index_olc=0) hits exactly that shape: free-running scanners hold the
// latch shared nearly 100% of the time on a loaded core, a new-key
// insert waits for the exclusive side, and the insert's open snapshot
// pins the SIREAD cleanup bound while it waits — so committed readers'
// predicate locks are never pruned, every holder list grows, scans get
// slower, the shared duty cycle rises, and the system livelocks
// (observed: >100-second exclusive waits, 16k-holder page granules).
//
// The gate breaks the loop without giving up the uncontended fast path:
// lock_shared() is one relaxed-ish atomic load plus the underlying
// rwlock when no writer is queued. When a writer IS queued, new readers
// spin-yield before touching the rwlock, so the writer gets in as soon
// as the already-admitted readers drain (bounded by one scan). The gate
// is advisory — a reader that loaded the counter before the writer's
// increment may still slip in — which is exactly enough to break
// *persistent* starvation while never blocking a reader behind the gate
// when no writer is waiting.
//
// Requirements on callers (same as any writer-preference scheme):
//  - No recursive shared acquisition: a thread must not call
//    lock_shared() while already holding this latch shared, or it can
//    deadlock against a queued writer. (Every Table::index_mu scope in
//    db/database.cc is flat and audited for this.)
//  - A shared holder must not block on a resource owned by a thread
//    that is queued for the exclusive side (the db layer's lock order
//    guarantees it: blocking row-lock waits happen strictly before the
//    index latch is taken).
#pragma once

#include <atomic>
#include <shared_mutex>
#include <thread>

namespace pgssi::util {

class WpSharedMutex {
 public:
  WpSharedMutex() = default;
  WpSharedMutex(const WpSharedMutex&) = delete;
  WpSharedMutex& operator=(const WpSharedMutex&) = delete;

  void lock() {
    writers_waiting_.fetch_add(1, std::memory_order_acq_rel);
    mu_.lock();
    writers_waiting_.fetch_sub(1, std::memory_order_acq_rel);
  }
  bool try_lock() {
    // No gate bump: a failed try must not park readers.
    return mu_.try_lock();
  }
  void unlock() { mu_.unlock(); }

  void lock_shared() {
    // Park behind any queued writer (advisory; see file comment).
    while (writers_waiting_.load(std::memory_order_acquire) != 0) {
      std::this_thread::yield();
    }
    mu_.lock_shared();
  }
  bool try_lock_shared() {
    if (writers_waiting_.load(std::memory_order_acquire) != 0) return false;
    return mu_.try_lock_shared();
  }
  void unlock_shared() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
  std::atomic<uint32_t> writers_waiting_{0};
};

}  // namespace pgssi::util
