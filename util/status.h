// Lightweight Status/error-code type used across the engine.
//
// Serialization failures (SSI dangerous structures, first-updater-wins
// write conflicts, S2PL deadlocks) all map to Code::kSerializationFailure,
// mirroring PostgreSQL's SQLSTATE 40001: the client is expected to retry.
#pragma once

#include <string>
#include <utility>

namespace pgssi {

enum class Code {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kSerializationFailure,
  kBusy,
  kIOError,
  kInternal,
  // Admission-control refusal: the server is at capacity (max_sessions)
  // and declined the connection/operation outright. Retryable after a
  // backoff; the wire response carries a retry-after hint (milliseconds)
  // in its payload. Mirrors PostgreSQL's 53300 too_many_connections.
  kOverloaded,
  // Non-blocking session API only (db/session.h): the operation cannot
  // complete without waiting (row-lock conflict, WAL fsync in flight,
  // DEFERRABLE safe-snapshot wait). Nothing failed — re-issue the same
  // call when the accompanying WaitToken signals. Never sent on the
  // wire; the net server parks the session instead.
  kWouldBlock,
};

class Status {
 public:
  Status() = default;
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string m = "not found") {
    return Status(Code::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m = "already exists") {
    return Status(Code::kAlreadyExists, std::move(m));
  }
  static Status InvalidArgument(std::string m) {
    return Status(Code::kInvalidArgument, std::move(m));
  }
  static Status SerializationFailure(std::string m) {
    return Status(Code::kSerializationFailure, std::move(m));
  }
  static Status Busy(std::string m) { return Status(Code::kBusy, std::move(m)); }
  /// WAL append/fsync failures: the transaction was aborted (nothing it
  /// wrote is visible or durable); unlike 40001 the client should not
  /// blindly retry without checking the storage layer.
  static Status IOError(std::string m) {
    return Status(Code::kIOError, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(Code::kInternal, std::move(m));
  }
  static Status Overloaded(std::string m = "server overloaded") {
    return Status(Code::kOverloaded, std::move(m));
  }
  static Status WouldBlock(std::string m = "would block") {
    return Status(Code::kWouldBlock, std::move(m));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }
  bool IsSerializationFailure() const {
    return code_ == Code::kSerializationFailure;
  }
  bool IsWouldBlock() const { return code_ == Code::kWouldBlock; }

  std::string ToString() const {
    switch (code_) {
      case Code::kOk:
        return "OK";
      case Code::kNotFound:
        return "NotFound: " + msg_;
      case Code::kAlreadyExists:
        return "AlreadyExists: " + msg_;
      case Code::kInvalidArgument:
        return "InvalidArgument: " + msg_;
      case Code::kSerializationFailure:
        return "SerializationFailure: " + msg_;
      case Code::kBusy:
        return "Busy: " + msg_;
      case Code::kIOError:
        return "IOError: " + msg_;
      case Code::kInternal:
        return "Internal: " + msg_;
      case Code::kOverloaded:
        return "Overloaded: " + msg_;
      case Code::kWouldBlock:
        return "WouldBlock: " + msg_;
    }
    return "Unknown";
  }

 private:
  Code code_ = Code::kOk;
  std::string msg_;
};

}  // namespace pgssi
