// Test-only failpoints, injected at the WAL's append/fsync/ack decision
// points so crash-recovery tests can force a failure (or kill the
// process) at exactly the boundary under test.
//
// A failpoint is named ("wal_fsync", "wal_append_partial", ...) and
// armed with an action:
//   kErr   — the site reports an injected I/O failure and continues;
//   kCrash — the site calls _Exit(kFailpointCrashExit) on the spot,
//            skipping every destructor and atexit handler — the
//            in-process equivalent of `kill -9` at that instruction.
// Arming takes a 1-based trigger count: the action fires on exactly the
// Nth evaluation of that site, once, then the point disarms itself (so
// "crash on the 7th WAL append" is one Arm call in the forked child).
//
// The production fast path is one relaxed atomic load (armed-point
// count, zero in any non-test process); the slow path takes a mutex.
// Failpoints are process-global — tests that fork arm them in the
// child, after the fork, so the parent never crashes.
//
// PGSSI_FAILPOINTS="name=crash@7,other=err" arms points from the
// environment via FailpointArmFromEnv() for command-line experiments;
// nothing calls it implicitly.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <random>
#include <string>
#include <unordered_map>

namespace pgssi::util {

enum class FailpointAction { kNone, kErr, kCrash };

/// Exit status of a kCrash failpoint; torture tests assert on it to
/// distinguish an injected kill from an ordinary child failure.
inline constexpr int kFailpointCrashExit = 57;

class FailpointRegistry {
 public:
  static FailpointRegistry& Instance() {
    static FailpointRegistry* r = new FailpointRegistry();  // never freed
    return *r;
  }

  /// Arms `name`: `action` fires on the `trigger_at`-th Eval (1-based)
  /// and on the `repeat - 1` evals after it, then the point disarms.
  /// The default repeat of 1 keeps the classic fire-once contract;
  /// larger values model persistent faults (e.g. "every abort-mark
  /// attempt fails" for retry-exhaustion tests).
  void Arm(const std::string& name, FailpointAction action,
           uint64_t trigger_at = 1, uint64_t repeat = 1) {
    std::lock_guard<std::mutex> l(mu_);
    points_[name] =
        State{action, trigger_at == 0 ? 1 : trigger_at, 0,
              repeat == 0 ? 1 : repeat};
    RecountLocked();
  }

  /// Chaos-mode arming: every Eval of `name` fires `action` with
  /// probability `permille`/1000, independently, until `budget` fires
  /// have landed (budget 0 = unlimited until Clear/ClearAll). Unlike the
  /// deterministic Arm above there is no Nth-eval trigger — this is the
  /// shape chaos harnesses want: "roughly every 50th frame write tears".
  void ArmChance(const std::string& name, FailpointAction action,
                 uint32_t permille, uint64_t budget = 0) {
    std::lock_guard<std::mutex> l(mu_);
    State s;
    s.action = action;
    s.permille = permille > 1000 ? 1000 : permille;
    s.remaining = budget == 0 ? UINT64_MAX : budget;
    points_[name] = s;
    RecountLocked();
  }

  /// Total times `name` has fired (over its whole life, surviving
  /// disarm). Chaos tests use this to prove a site actually injected.
  uint64_t FireCount(const std::string& name) {
    std::lock_guard<std::mutex> l(mu_);
    auto it = fired_.find(name);
    return it == fired_.end() ? 0 : it->second;
  }

  void Clear(const std::string& name) {
    std::lock_guard<std::mutex> l(mu_);
    points_.erase(name);
    RecountLocked();
  }

  void ClearAll() {
    std::lock_guard<std::mutex> l(mu_);
    points_.clear();
    RecountLocked();
  }

  FailpointAction Eval(const char* name) {
    if (armed_.load(std::memory_order_acquire) == 0) {
      return FailpointAction::kNone;
    }
    std::lock_guard<std::mutex> l(mu_);
    auto it = points_.find(name);
    if (it == points_.end() || it->second.action == FailpointAction::kNone) {
      return FailpointAction::kNone;
    }
    State& s = it->second;
    if (s.permille > 0) {
      // Chaos mode: independent Bernoulli trial per eval.
      if (rng_() % 1000 >= s.permille) return FailpointAction::kNone;
    } else {
      if (++s.hits < s.trigger_at) return FailpointAction::kNone;
    }
    const FailpointAction a = s.action;
    fired_[name]++;
    if (--s.remaining == 0) {
      s.action = FailpointAction::kNone;  // repeat budget spent: disarm
      RecountLocked();
    }
    return a;
  }

 private:
  struct State {
    FailpointAction action = FailpointAction::kNone;
    uint64_t trigger_at = 1;
    uint64_t hits = 0;
    uint64_t remaining = 1;
    uint32_t permille = 0;  // >0: chaos (probabilistic) mode
  };
  void RecountLocked() {
    uint32_t n = 0;
    for (const auto& [k, s] : points_) {
      if (s.action != FailpointAction::kNone) n++;
    }
    armed_.store(n, std::memory_order_release);
  }
  std::mutex mu_;
  std::unordered_map<std::string, State> points_;
  std::unordered_map<std::string, uint64_t> fired_;
  std::mt19937_64 rng_{0x9e3779b97f4a7c15ull};  // fixed seed: reproducible
  std::atomic<uint32_t> armed_{0};
};

inline void FailpointArm(const std::string& name, FailpointAction action,
                         uint64_t trigger_at = 1, uint64_t repeat = 1) {
  FailpointRegistry::Instance().Arm(name, action, trigger_at, repeat);
}
inline void FailpointClear(const std::string& name) {
  FailpointRegistry::Instance().Clear(name);
}
inline void FailpointClearAll() { FailpointRegistry::Instance().ClearAll(); }
inline void FailpointArmChance(const std::string& name, FailpointAction action,
                               uint32_t permille, uint64_t budget = 0) {
  FailpointRegistry::Instance().ArmChance(name, action, permille, budget);
}
inline uint64_t FailpointFireCount(const std::string& name) {
  return FailpointRegistry::Instance().FireCount(name);
}

/// Raw evaluation: hands the action back to the site. Use this only
/// where the site must do work BEFORE dying (e.g. write half a frame,
/// then crash — the torn-record case); everywhere else use
/// FailpointFires.
inline FailpointAction FailpointEval(const char* name) {
  return FailpointRegistry::Instance().Eval(name);
}

/// Standard site wrapper: returns true when an injected error should be
/// reported; a kCrash action never returns.
inline bool FailpointFires(const char* name) {
  switch (FailpointEval(name)) {
    case FailpointAction::kErr:
      return true;
    case FailpointAction::kCrash:
      std::_Exit(kFailpointCrashExit);
    case FailpointAction::kNone:
      break;
  }
  return false;
}

/// Parses PGSSI_FAILPOINTS ("name=err,other=crash@12") and arms each
/// entry. Unset/empty env is a no-op (programmatically armed points are
/// left alone).
inline void FailpointArmFromEnv() {
  const char* env = std::getenv("PGSSI_FAILPOINTS");
  if (!env || !*env) return;
  std::string spec(env);
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    const size_t eq = item.find('=');
    if (eq == std::string::npos) continue;
    const std::string name = item.substr(0, eq);
    std::string act = item.substr(eq + 1);
    uint64_t at = 1;
    const size_t amp = act.find('@');
    if (amp != std::string::npos) {
      at = std::strtoull(act.c_str() + amp + 1, nullptr, 10);
      act = act.substr(0, amp);
    }
    if (act == "err") {
      FailpointArm(name, FailpointAction::kErr, at);
    } else if (act == "crash") {
      FailpointArm(name, FailpointAction::kCrash, at);
    }
  }
}

}  // namespace pgssi::util
