// xorshift64* PRNG: fast, deterministic under a fixed seed.
//
// NOT thread-safe: Next() is a plain read-modify-write of state_, so a
// Random instance shared across benchmark driver threads is a data race
// (and collapses the period under contention). Give every worker thread
// its own seeded instance — workload::RunFixedDuration already does —
// or use ThreadLocalRandom() below when plumbing a per-thread instance
// through is inconvenient.
#pragma once

#include <atomic>
#include <cstdint>

namespace pgssi {

class Random {
 public:
  explicit Random(uint64_t seed = 1) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform in [0, n). n == 0 returns 0.
  uint64_t Uniform(uint64_t n) { return n ? Next() % n : 0; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

/// A lazily constructed thread-local Random. Each thread gets a distinct
/// seed (global counter mixed with a golden-ratio stride), so concurrent
/// callers never share generator state. Deterministic per thread creation
/// order, not across interleavings — benchmarks wanting reproducible
/// streams should still seed explicit per-thread instances.
inline Random& ThreadLocalRandom() {
  static std::atomic<uint64_t> counter{0};
  thread_local Random rng(
      (counter.fetch_add(1, std::memory_order_relaxed) + 1) *
      0x9E3779B97F4A7C15ULL);
  return rng;
}

}  // namespace pgssi
