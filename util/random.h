// xorshift64* PRNG: fast, per-thread, deterministic under a fixed seed.
#pragma once

#include <cstdint>

namespace pgssi {

class Random {
 public:
  explicit Random(uint64_t seed = 1) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform in [0, n). n == 0 returns 0.
  uint64_t Uniform(uint64_t n) { return n ? Next() % n : 0; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace pgssi
