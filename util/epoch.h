// Epoch-based reclamation (EBR): a grace-period limbo for objects that
// must outlive their unlink from a shared structure because lock-free
// readers may still hold references.
//
// Protocol (the classic three-generation scheme, cf. Fraser's EBR and
// its descendants in crossbeam/libcds):
//  - Readers wrap every region that dereferences shared pointers in a
//    Pin guard. Pinning stamps the thread's slot with the global epoch;
//    while any slot is stamped with epoch E, the global epoch can
//    advance at most once past E, so a pinned reader's view spans at
//    most two consecutive epochs.
//  - Writers unlink an object from every shared structure FIRST, then
//    Retire(ptr, deleter). The object joins the limbo list of the
//    current global epoch.
//  - TryAdvanceAndSweep() advances the global epoch once every pinned
//    slot has observed it, and frees limbo generations that every
//    current pin provably post-dates (generation epoch + 2 <= the
//    minimum pinned epoch; with no pins at all, everything is free
//    game — references are only ever held under a pin).
//
// Slots are cache-line-aligned and hashed by thread id; a collision
// merely makes two threads share a pin slot, which is conservative
// (the slot stays pinned while either thread is pinned) and never
// unsafe. Pins nest via a per-slot depth counter.
//
// Retiring does NOT require being pinned: teardown paths (Cleanup,
// index GC) unlink under their own locks and hand the memory straight
// to the limbo.
//
// TryAdvanceAndSweep is amortized and contention-free: it try-locks a
// single advance mutex and simply returns if another thread is already
// sweeping. Drive it from periodic maintenance (RunSireadCleanup) and
// from AmortizedTick() on high-frequency paths (one sweep attempt every
// kTickPeriod ticks).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/spinlock.h"

namespace pgssi::util {

class EpochManager {
 public:
  static constexpr uint32_t kSlots = 64;        // power of two
  static constexpr uint32_t kGenerations = 8;   // limbo ring, power of two
  static constexpr uint32_t kTickPeriod = 64;   // AmortizedTick sweep rate

  EpochManager();
  /// Frees everything still in limbo. The caller must guarantee no pin
  /// is active and no further Retire can race (i.e. the owning
  /// structure is quiescing for destruction).
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// RAII pin for the calling thread. Hold across any region that
  /// dereferences pointers whose owner frees through Retire().
  class Pin {
   public:
    explicit Pin(EpochManager* em) : em_(em), slot_(em->PinSlot()) {}
    ~Pin() { em_->UnpinSlot(slot_); }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

   private:
    EpochManager* em_;
    uint32_t slot_;
  };

  /// Hand `obj` to the limbo of the current epoch. `deleter(obj)` runs
  /// once the grace period has passed. The caller must already have
  /// unlinked `obj` from every structure a pinned reader could reach it
  /// through.
  void Retire(void* obj, void (*deleter)(void*));

  /// One advance + sweep attempt. Cheap and contention-free (try-lock);
  /// safe from any thread, pinned or not (a pinned caller simply cannot
  /// free its own generation — the sweep rule already guarantees that).
  void TryAdvanceAndSweep();

  /// Amortized hook for hot paths: every kTickPeriod calls, one
  /// TryAdvanceAndSweep.
  void AmortizedTick() {
    if ((tick_.fetch_add(1, std::memory_order_relaxed) % kTickPeriod) == 0) {
      TryAdvanceAndSweep();
    }
  }

  /// Objects currently sitting in limbo (retired, not yet freed).
  size_t RetiredObjectCount() const {
    return retired_count_.load(std::memory_order_acquire);
  }
  /// Deleters actually run (freed-for-real count; tests assert it).
  uint64_t FreedObjectCount() const {
    return freed_count_.load(std::memory_order_relaxed);
  }
  uint64_t GlobalEpoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }

  /// Drain the limbo completely: repeated advance+sweep until empty.
  /// Only meaningful at quiescent points (no active pins, no concurrent
  /// retires); tests and shutdown use it to prove the bound.
  void Quiesce();

 private:
  struct RetiredNode {
    RetiredNode* next;
    void* obj;
    void (*deleter)(void*);
  };
  struct alignas(64) Slot {
    // Epoch observed at pin time; 0 = unpinned (global starts at 2).
    std::atomic<uint64_t> epoch{0};
    // Nesting depth; shared by hash-colliding threads (conservative).
    std::atomic<uint32_t> depth{0};
  };
  struct alignas(64) Generation {
    SpinLock mu;                     // guards head + epoch
    RetiredNode* head = nullptr;
    uint64_t epoch = 0;              // which epoch's retirees; 0 = empty
    std::atomic<size_t> count{0};
  };

  uint32_t PinSlot();
  void UnpinSlot(uint32_t slot);
  /// Minimum epoch over pinned slots; UINT64_MAX when nothing is pinned.
  /// An in-flight pin (depth > 0, epoch not yet stamped) returns 1,
  /// blocking every sweep until the stamp lands.
  uint64_t MinPinnedEpoch() const;
  /// Frees g's whole list. g's mu must be held by the caller.
  void SweepGenerationLocked(Generation& g);

  std::atomic<uint64_t> global_epoch_{2};  // > 0 so 0 can mean unpinned
  Slot slots_[kSlots];
  Generation gens_[kGenerations];
  std::atomic<size_t> retired_count_{0};
  std::atomic<uint64_t> freed_count_{0};
  std::atomic<uint64_t> tick_{0};
  SpinLock advance_mu_;  // serializes advance/sweep attempts
};

}  // namespace pgssi::util
