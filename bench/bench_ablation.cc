// Ablation benches for the design choices DESIGN.md calls out:
//   A. Safe retry (Section 5.4) vs always-abort-self: retries needed until
//      a write-skew-prone transaction commits.
//   B. Commit-ordering optimization (Section 3.3.1): abort rate with the
//      optimization on vs off on a conflict-heavy mix.
//   C. Read-only snapshot ordering + safe snapshots (Section 4): abort
//      rate and throughput for a read-heavy SIBENCH mix, on vs off.
// Emits BENCH_ablation.json (one row per configuration) for the perf
// trajectory.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "bench_common.h"
#include "workload/sibench.h"

using namespace pgssi;
using namespace pgssi::bench;
using namespace pgssi::workload;

namespace {

DriverResult RunSibench(const DatabaseOptions& opts, uint64_t rows,
                        double secs, int threads, double update_frac) {
  auto db = Database::Open(opts);
  Sibench bench(db.get(), rows);
  Status st = bench.Load();
  if (!st.ok()) std::abort();
  return RunFixedDuration(
      [&](int, Random& rng) {
        return rng.Bernoulli(update_frac)
                   ? bench.RunUpdate(rng, IsolationLevel::kSerializable)
                   : bench.RunQuery(rng, IsolationLevel::kSerializable);
      },
      threads, secs);
}

}  // namespace

int main() {
  const double secs = PointSeconds(1.0);
  std::vector<BenchRow> rows_out;
  auto emit = [&rows_out](const std::string& series, int threads,
                          DriverResult& r) {
    rows_out.push_back(RowFromDriver(series, threads, r));
  };
  std::printf("# Ablation A: safe-retry victim selection (Section 5.4)\n");
  for (bool safe_retry : {true, false}) {
    DatabaseOptions opts;
    opts.engine.enable_safe_retry = safe_retry;
    DriverResult r = RunSibench(opts, /*rows=*/20, secs, /*threads=*/4,
                                /*update_frac=*/0.5);
    emit(std::string("safe_retry=") + (safe_retry ? "on" : "off"), 4, r);
    std::printf("safe_retry=%-5s  committed=%llu  failures=%llu  "
                "failure-rate=%.2f%%\n",
                safe_retry ? "on" : "off",
                static_cast<unsigned long long>(r.committed),
                static_cast<unsigned long long>(r.serialization_failures),
                r.FailureRate() * 100);
  }

  std::printf("\n# Ablation B: commit-ordering optimization "
              "(Section 3.3.1)\n");
  for (bool opt : {true, false}) {
    DatabaseOptions opts;
    opts.engine.enable_commit_ordering_opt = opt;
    DriverResult r = RunSibench(opts, /*rows=*/50, secs, /*threads=*/4,
                                /*update_frac=*/0.5);
    emit(std::string("commit_ordering=") + (opt ? "on" : "off"), 4, r);
    std::printf("commit_ordering=%-5s  committed=%llu  failures=%llu  "
                "failure-rate=%.2f%%\n",
                opt ? "on" : "off",
                static_cast<unsigned long long>(r.committed),
                static_cast<unsigned long long>(r.serialization_failures),
                r.FailureRate() * 100);
  }

  std::printf("\n# Ablation C: read-only optimizations (Section 4), "
              "read-heavy mix\n");
  for (bool opt : {true, false}) {
    DatabaseOptions opts;
    opts.engine.enable_read_only_opt = opt;
    DriverResult r = RunSibench(opts, /*rows=*/1000, secs, /*threads=*/4,
                                /*update_frac=*/0.1);
    emit(std::string("read_only_opt=") + (opt ? "on" : "off"), 4, r);
    std::printf("read_only_opt=%-5s  txn/s=%.0f  failures=%llu  "
                "failure-rate=%.2f%%\n",
                opt ? "on" : "off", r.Throughput(),
                static_cast<unsigned long long>(r.serialization_failures),
                r.FailureRate() * 100);
  }

  std::printf("\n# Ablation D: write-supersedes-SIREAD (Section 7.3), "
              "read-modify-write mix\n");
  for (bool opt : {true, false}) {
    DatabaseOptions opts;
    opts.engine.enable_write_supersedes_siread = opt;
    DriverResult r = RunSibench(opts, /*rows=*/200, secs, /*threads=*/4,
                                /*update_frac=*/0.9);
    emit(std::string("write_supersedes=") + (opt ? "on" : "off"), 4, r);
    std::printf("write_supersedes=%-5s  txn/s=%.0f  failure-rate=%.2f%%\n",
                opt ? "on" : "off", r.Throughput(), r.FailureRate() * 100);
  }

  std::printf("\n# Ablation E: index-gap granularity (Section 5.2.1) — "
              "page (9.1 shipping) vs next-key (stated future work);\n"
              "# insert-heavy mix where same-leaf false positives hurt "
              "page locks\n");
  for (auto mode : {IndexGapLocking::kPage, IndexGapLocking::kNextKey}) {
    DatabaseOptions opts;
    opts.engine.index_gap_locking = mode;
    auto db = Database::Open(opts);
    TableId t;
    if (!db->CreateTable("t", &t).ok()) std::abort();
    DriverResult r = RunFixedDuration(
        [&](int, Random& rng) -> Status {
          auto txn = db->Begin({.isolation = IsolationLevel::kSerializable});
          // Read a narrow random range, then insert a fresh key elsewhere:
          // the scan's gap lock vs the insert is where granularity matters.
          char lo[32], key[32];
          uint64_t base = rng.Uniform(1000);
          std::snprintf(lo, sizeof(lo), "k%06llu",
                        static_cast<unsigned long long>(base));
          char hi[32];
          std::snprintf(hi, sizeof(hi), "k%06llu",
                        static_cast<unsigned long long>(base + 3));
          uint64_t n = 0;
          Status st = txn->Count(t, lo, hi, &n);
          if (!st.ok()) return st;
          std::snprintf(key, sizeof(key), "k%06llu-%llu",
                        static_cast<unsigned long long>(rng.Uniform(1000)),
                        static_cast<unsigned long long>(rng.Next() % 10000));
          st = txn->Insert(t, key, "v");
          if (!st.ok() && st.code() != Code::kAlreadyExists) return st;
          return txn->Commit();
        },
        4, secs);
    emit(std::string("gap_locking=") +
             (mode == IndexGapLocking::kPage ? "page" : "next-key"),
         4, r);
    std::printf("gap_locking=%-8s  txn/s=%.0f  failure-rate=%.2f%%\n",
                mode == IndexGapLocking::kPage ? "page" : "next-key",
                r.Throughput(), r.FailureRate() * 100);
  }
  WriteBenchJson("ablation", rows_out);
  return 0;
}
