// Section 8.4 reproduction: time for a DEFERRABLE read-only transaction to
// obtain a safe snapshot while a heavy DBT-2++ workload runs concurrently.
//
// Paper shape (their numbers: median 1.98s, p90 < 6s, max < 20s on a
// disk-bound 36-thread run): the wait is bounded and seconds-scale, not
// unbounded starvation. Absolute values depend on transaction lengths; we
// use the simulated-I/O configuration to get comparable transaction
// durations.
// Also emits BENCH_deferrable.json (wait-time percentiles and retry
// counts) for the perf trajectory.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "bench_common.h"
#include "util/clock.h"
#include "util/histogram.h"
#include "workload/dbt2.h"

using namespace pgssi;
using namespace pgssi::bench;
using namespace pgssi::workload;

int main() {
  const double total_secs = PointSeconds(1.0) * 8;
  const int workers = 8;
  auto db = Database::Open(OptionsFor(Mode::kSSI, /*io_delay_us=*/20));
  Dbt2Config cfg;
  cfg.warehouses = 8;
  cfg.read_only_fraction = 0.08;  // the standard mix, as in Section 8.4
  Dbt2 bench(db.get(), cfg);
  Status st = bench.Load();
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < workers; i++) {
    threads.emplace_back([&, i] {
      Random rng(99 + static_cast<uint64_t>(i));
      while (!stop.load(std::memory_order_relaxed)) {
        (void)bench.RunOne(rng);
      }
    });
  }

  Histogram waits;
  const uint64_t deadline = NowMicros() +
                            static_cast<uint64_t>(total_secs * 1e6);
  int samples = 0;
  while (NowMicros() < deadline) {
    uint64_t t0 = NowMicros();
    auto ro = db->Begin(TxnOptions{.isolation = IsolationLevel::kSerializable,
                                   .read_only = true,
                                   .deferrable = true});
    uint64_t waited = NowMicros() - t0;
    waits.Add(waited);
    samples++;
    // Run a trivial query on the safe snapshot, as the paper does.
    std::string v;
    (void)ro->Get(db->GetTableId("warehouse"), "0001", &v);
    (void)ro->Commit();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  stop.store(true);
  for (auto& t : threads) t.join();

  auto stats = db->GetSsiStats();
  std::printf("# Section 8.4: deferrable-transaction safe-snapshot wait\n");
  std::printf("samples=%d\n", samples);
  std::printf("median wait: %.1f ms\n", waits.Median() / 1000.0);
  std::printf("p90    wait: %.1f ms\n", waits.Percentile(90) / 1000.0);
  std::printf("max    wait: %.1f ms\n", waits.max() / 1000.0);
  std::printf("snapshot retries (unsafe snapshots discarded): %llu\n",
              static_cast<unsigned long long>(stats.deferrable_retries));
  std::printf("safe snapshots obtained: %llu\n",
              static_cast<unsigned long long>(stats.safe_snapshots));

  // One row: the "latency" percentiles are safe-snapshot WAIT times.
  BenchRow row;
  row.series = "deferrable-wait";
  row.threads = workers;
  row.ops_per_sec = total_secs > 0 ? samples / total_secs : 0;
  row.p50_us = waits.Median();
  row.p99_us = waits.Percentile(99);
  row.extra = {
      {"max_wait_us", static_cast<double>(waits.max())},
      {"retries", static_cast<double>(stats.deferrable_retries)},
      {"safe_snapshots", static_cast<double>(stats.safe_snapshots)}};
  WriteBenchJson("deferrable", {row});
  return 0;
}
