// Figure 4 reproduction: SIBENCH transaction throughput for SSI,
// SSI-without-read-only-optimizations, and S2PL as a fraction of SI
// throughput, versus table size.
//
// Paper shape: S2PL well below SI (update and query transactions cannot
// run concurrently), widening with table size; SSI close to SI (within
// the 10-20% read-dependency-tracking overhead), with the read-only
// optimizations recovering part of that gap at larger table sizes.
//
// Second section: heap-striping A/B — SERIALIZABLE writers updating
// thread-disjoint keys on 1-8 threads, striped heap latch
// (EngineConfig::heap_stripes, default 64) vs the old one-latch-per-
// table design (--heap-stripes=1 pins the striped series; the stripes=1
// baseline always runs for comparison). Disjoint keys never conflict,
// so any scaling gap is pure latch contention.
//
// Third section: conflict-graph locking A/B — the SSI mix on a tiny
// (10-row) table, where nearly every transaction pair conflicts and
// throughput is bounded by the rw-antidependency path, under
// fine-grained per-xact edge locks (EngineConfig::conflict_lock_mode=1,
// default) vs the old global conflict mutex (=0, the
// --conflict-lock-mode flag pins the main sections' setting; the A/B
// always runs both).
//
// Emits BENCH_sibench.json (series/threads/throughput/abort rate/
// latency percentiles per point) for the perf trajectory.
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "bench_common.h"
#include "workload/sibench.h"

using namespace pgssi;
using namespace pgssi::bench;
using namespace pgssi::workload;

namespace {

std::string WriterKey(int thread, uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "w%03d-%06llu", thread,
                static_cast<unsigned long long>(i));
  return buf;
}

void RunDisjointWriteScaling(double secs, uint32_t stripes,
                             std::vector<BenchRow>* rows_out) {
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  const uint64_t keys_per_thread = 256;
  char series[48];
  std::snprintf(series, sizeof(series), "disjoint-writes/stripes=%u", stripes);
  for (int threads : thread_counts) {
    DatabaseOptions opts;
    opts.engine.heap_stripes = stripes;
    auto db = Database::Open(opts);
    TableId t;
    if (!db->CreateTable("w", &t).ok()) std::abort();
    {
      auto txn = db->Begin({.isolation = IsolationLevel::kRepeatableRead});
      for (int ti = 0; ti < threads; ti++) {
        for (uint64_t i = 0; i < keys_per_thread; i++) {
          if (!txn->Put(t, WriterKey(ti, i), "v").ok()) std::abort();
        }
      }
      if (!txn->Commit().ok()) std::abort();
    }
    DriverResult r = RunFixedDuration(
        [&](int ti, Random& rng) {
          auto txn = db->Begin({.isolation = IsolationLevel::kSerializable});
          for (int k = 0; k < 4; k++) {
            Status st =
                txn->Put(t, WriterKey(ti, rng.Uniform(keys_per_thread)), "v2");
            if (!st.ok()) {
              (void)txn->Abort();
              return st;
            }
          }
          return txn->Commit();
        },
        threads, secs);
    BenchRow row = RowFromDriver(series, threads, r);
    row.extra = {{"stripes", static_cast<double>(stripes)},
                 {"keys_per_thread", static_cast<double>(keys_per_thread)}};
    rows_out->push_back(row);
    std::printf("%-26s %8d %12.0f %9.2f%% %10.1f %10.1f\n", series, threads,
                row.ops_per_sec, row.abort_rate * 100, row.p50_us, row.p99_us);
    std::fflush(stdout);
  }
}

// SSI mixed workload on a tiny table: a conflict-rate-bound series, run
// under one conflict_lock_mode setting.
void RunConflictHeavyScaling(double secs, uint32_t conflict_lock_mode,
                             std::vector<BenchRow>* rows_out) {
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  const uint64_t rows = 10;
  char series[48];
  std::snprintf(series, sizeof(series), "conflict-heavy/conflict=%s",
                conflict_lock_mode != 0 ? "fine" : "global");
  for (int threads : thread_counts) {
    DatabaseOptions opts = OptionsFor(Mode::kSSI);
    opts.engine.conflict_lock_mode = conflict_lock_mode;
    auto db = Database::Open(opts);
    Sibench bench(db.get(), rows);
    if (!bench.Load().ok()) std::abort();
    DriverResult r = RunFixedDuration(
        [&](int, Random& rng) {
          return bench.RunMixed(rng, IsolationLevel::kSerializable);
        },
        threads, secs);
    BenchRow row = RowFromDriver(series, threads, r);
    row.extra = {{"rows", static_cast<double>(rows)},
                 {"conflict_lock_mode",
                  static_cast<double>(conflict_lock_mode)}};
    rows_out->push_back(row);
    std::printf("%-26s %8d %12.0f %9.2f%% %10.1f %10.1f\n", series, threads,
                row.ops_per_sec, row.abort_rate * 100, row.p50_us, row.p99_us);
    std::fflush(stdout);
  }
}

// New-key insert storm: SERIALIZABLE transactions each inserting a
// batch of fresh (thread-disjoint, monotonically increasing) keys, so
// every transaction exercises the structural insert path — gap probes,
// leaf locking, splits. With index_olc=1 descent is latch-free and only
// the touched leaves are locked; index_olc=0 serializes every insert on
// the exclusive per-table index latch, so the scaling gap is pure index
// latch contention.
void RunInsertStormScaling(double secs, uint32_t index_olc,
                           std::vector<BenchRow>* rows_out) {
  const std::vector<int> thread_counts = {1, 2, 4, 8, 16};
  char series[48];
  std::snprintf(series, sizeof(series), "insert-storm/olc=%u", index_olc);
  for (int threads : thread_counts) {
    DatabaseOptions opts = OptionsFor(Mode::kSSI);
    opts.engine.index_olc = index_olc;
    auto db = Database::Open(opts);
    TableId t;
    if (!db->CreateTable("storm", &t).ok()) std::abort();
    std::vector<uint64_t> next_key(static_cast<size_t>(threads), 0);
    // Retired-memory gauge: while the storm runs, sample the epoch
    // limbo (plus legacy retained lists) so the JSON shows how much
    // unreclaimed garbage the workload carries at peak — and that it
    // returns to zero once the engine quiesces.
    std::atomic<bool> gauge_stop{false};
    std::atomic<size_t> retired_peak{0};
    std::thread gauge([&] {
      while (!gauge_stop.load(std::memory_order_acquire)) {
        const size_t now = db->EpochRetiredObjectCount();
        size_t prev = retired_peak.load(std::memory_order_relaxed);
        while (now > prev &&
               !retired_peak.compare_exchange_weak(prev, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    DriverResult r = RunFixedDuration(
        [&](int ti, Random&) {
          auto txn = db->Begin({.isolation = IsolationLevel::kSerializable});
          uint64_t& n = next_key[static_cast<size_t>(ti)];
          for (int k = 0; k < 4; k++) {
            Status st = txn->Insert(t, WriterKey(ti, n + static_cast<uint64_t>(k)),
                                    "v");
            if (!st.ok()) {
              (void)txn->Abort();
              return st;
            }
          }
          n += 4;
          return txn->Commit();
        },
        threads, secs);
    gauge_stop.store(true, std::memory_order_release);
    gauge.join();
    const size_t retired_final = db->EpochRetiredObjectCount();
    db->QuiesceEpochs();
    const size_t retired_after_quiesce = db->EpochRetiredObjectCount();
    BenchRow row = RowFromDriver(series, threads, r);
    row.extra = {{"index_olc", static_cast<double>(index_olc)},
                 {"keys_per_txn", 4.0},
                 {"retired_peak", static_cast<double>(
                                      retired_peak.load(std::memory_order_relaxed))},
                 {"retired_final", static_cast<double>(retired_final)},
                 {"retired_after_quiesce",
                  static_cast<double>(retired_after_quiesce)},
                 {"epoch_freed_objects",
                  static_cast<double>(db->EpochFreedObjectCount())}};
    rows_out->push_back(row);
    std::printf("%-26s %8d %12.0f %9.2f%% %10.1f %10.1f\n", series, threads,
                row.ops_per_sec, row.abort_rate * 100, row.p50_us, row.p99_us);
    std::fflush(stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t heap_stripes = kHeapStripes;
  uint32_t conflict_lock_mode = 1;
  uint32_t index_olc = 1;
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], "--heap-stripes=", 15) == 0) {
      heap_stripes = static_cast<uint32_t>(std::atoi(argv[i] + 15));
    } else if (std::strncmp(argv[i], "--conflict-lock-mode=", 21) == 0) {
      conflict_lock_mode = static_cast<uint32_t>(std::atoi(argv[i] + 21));
    } else if (std::strncmp(argv[i], "--index-olc=", 12) == 0) {
      index_olc = static_cast<uint32_t>(std::atoi(argv[i] + 12));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--heap-stripes=N] [--conflict-lock-mode=N] "
                   "[--index-olc=N]\n",
                   argv[0]);
      return 2;
    }
  }
  const double secs = PointSeconds(1.0);
  const int threads = 4;
  const std::vector<uint64_t> sizes = {10, 100, 1000, 10000};
  const std::vector<Mode> modes = {Mode::kSI, Mode::kSSI,
                                   Mode::kSsiNoReadOnlyOpt, Mode::kS2PL};

  std::printf("# Figure 4: SIBENCH throughput normalized to SI\n");
  std::printf("# threads=%d, %gs per point, 50/50 update/query mix\n",
              threads, secs);
  std::printf("%-10s %-20s %12s %12s %14s\n", "rows", "mode", "txn/s",
              "normalized", "failure-rate");

  std::vector<BenchRow> rows_out;
  for (uint64_t rows : sizes) {
    double si_throughput = 0;
    for (Mode m : modes) {
      DatabaseOptions mode_opts = OptionsFor(m);
      mode_opts.engine.conflict_lock_mode = conflict_lock_mode;
      mode_opts.engine.index_olc = index_olc;
      auto db = Database::Open(mode_opts);
      Sibench bench(db.get(), rows);
      Status st = bench.Load();
      if (!st.ok()) {
        std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
        return 1;
      }
      IsolationLevel iso = IsolationFor(m);
      DriverResult r = RunFixedDuration(
          [&](int, Random& rng) { return bench.RunMixed(rng, iso); },
          threads, secs);
      if (m == Mode::kSI) si_throughput = r.Throughput();
      BenchRow row = RowFromDriver(ModeName(m), threads, r);
      row.extra = {{"rows", static_cast<double>(rows)}};
      rows_out.push_back(row);
      std::printf("%-10llu %-20s %12.0f %11.2fx %13.3f%%\n",
                  static_cast<unsigned long long>(rows), ModeName(m),
                  r.Throughput(),
                  si_throughput > 0 ? r.Throughput() / si_throughput : 1.0,
                  r.FailureRate() * 100);
      std::fflush(stdout);
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf(
      "\n# Heap striping A/B: SERIALIZABLE disjoint-key writers "
      "(%u hardware threads)\n",
      hw);
  if (hw < 2) {
    std::printf(
        "# NOTE: single-core machine — stripe scaling cannot show its "
        "multicore win here.\n");
  }
  std::printf("%-26s %8s %12s %10s %10s %10s\n", "series", "threads", "txn/s",
              "abort%", "p50us", "p99us");
  RunDisjointWriteScaling(secs, heap_stripes, &rows_out);
  if (heap_stripes != 1) {
    RunDisjointWriteScaling(secs, 1, &rows_out);
  }

  std::printf(
      "\n# Conflict-graph locking A/B: SSI mix on a 10-row table "
      "(fine per-xact edge locks vs global conflict mutex)\n");
  if (hw < 2) {
    std::printf(
        "# NOTE: single-core machine — the conflict-path split cannot show "
        "its multicore win here.\n");
  }
  std::printf("%-26s %8s %12s %10s %10s %10s\n", "series", "threads", "txn/s",
              "abort%", "p50us", "p99us");
  RunConflictHeavyScaling(secs, /*conflict_lock_mode=*/1, &rows_out);
  RunConflictHeavyScaling(secs, /*conflict_lock_mode=*/0, &rows_out);

  std::printf(
      "\n# Index OLC A/B: SERIALIZABLE new-key insert storm "
      "(latch-free descent vs exclusive index latch)\n");
  if (hw < 2) {
    std::printf(
        "# NOTE: single-core machine — the de-serialized insert path cannot "
        "show its multicore win here.\n");
  }
  std::printf("%-26s %8s %12s %10s %10s %10s\n", "series", "threads", "txn/s",
              "abort%", "p50us", "p99us");
  RunInsertStormScaling(secs, /*index_olc=*/1, &rows_out);
  RunInsertStormScaling(secs, /*index_olc=*/0, &rows_out);

  WriteBenchJson("sibench", rows_out);
  return 0;
}
