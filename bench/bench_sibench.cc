// Figure 4 reproduction: SIBENCH transaction throughput for SSI,
// SSI-without-read-only-optimizations, and S2PL as a fraction of SI
// throughput, versus table size.
//
// Paper shape: S2PL well below SI (update and query transactions cannot
// run concurrently), widening with table size; SSI close to SI (within
// the 10-20% read-dependency-tracking overhead), with the read-only
// optimizations recovering part of that gap at larger table sizes.
//
// Also emits BENCH_sibench.json (series/threads/throughput/abort rate/
// latency percentiles per point) for the perf trajectory.
#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench_common.h"
#include "workload/sibench.h"

using namespace pgssi;
using namespace pgssi::bench;
using namespace pgssi::workload;

int main() {
  const double secs = PointSeconds(1.0);
  const int threads = 4;
  const std::vector<uint64_t> sizes = {10, 100, 1000, 10000};
  const std::vector<Mode> modes = {Mode::kSI, Mode::kSSI,
                                   Mode::kSsiNoReadOnlyOpt, Mode::kS2PL};

  std::printf("# Figure 4: SIBENCH throughput normalized to SI\n");
  std::printf("# threads=%d, %gs per point, 50/50 update/query mix\n",
              threads, secs);
  std::printf("%-10s %-20s %12s %12s %14s\n", "rows", "mode", "txn/s",
              "normalized", "failure-rate");

  std::vector<BenchRow> rows_out;
  for (uint64_t rows : sizes) {
    double si_throughput = 0;
    for (Mode m : modes) {
      auto db = Database::Open(OptionsFor(m));
      Sibench bench(db.get(), rows);
      Status st = bench.Load();
      if (!st.ok()) {
        std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
        return 1;
      }
      IsolationLevel iso = IsolationFor(m);
      DriverResult r = RunFixedDuration(
          [&](int, Random& rng) { return bench.RunMixed(rng, iso); },
          threads, secs);
      if (m == Mode::kSI) si_throughput = r.Throughput();
      BenchRow row = RowFromDriver(ModeName(m), threads, r);
      row.extra = {{"rows", static_cast<double>(rows)}};
      rows_out.push_back(row);
      std::printf("%-10llu %-20s %12.0f %11.2fx %13.3f%%\n",
                  static_cast<unsigned long long>(rows), ModeName(m),
                  r.Throughput(),
                  si_throughput > 0 ? r.Throughput() / si_throughput : 1.0,
                  r.FailureRate() * 100);
      std::fflush(stdout);
    }
  }
  WriteBenchJson("sibench", rows_out);
  return 0;
}
