// Machine-readable benchmark output: WriteBenchJson("lockmgr", rows)
// writes BENCH_lockmgr.json into the current working directory so runs
// accumulate a perf trajectory that scripts (CI, plotting) can diff.
//
// Schema:
//   {
//     "benchmark": "<name>",
//     "rows": [
//       {"series": "...", "threads": N, "ops_per_sec": ..., "abort_rate": ...,
//        "p50_us": ..., "p99_us": ..., <extra key/value pairs>},
//       ...
//     ]
//   }
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "workload/driver.h"

namespace pgssi::bench {

struct BenchRow {
  std::string series;  // e.g. "SSI/partitioned" or "SI"
  int threads = 1;
  double ops_per_sec = 0;
  double abort_rate = 0;  // serialization failures / attempts
  double p50_us = 0;
  double p99_us = 0;
  // Additional numeric facts (e.g. {"rows", 1000} or {"partitions", 16}).
  std::vector<std::pair<std::string, double>> extra;
};

/// Builds a row from a driver run. `r` is non-const because its latency
/// histogram sorts lazily on percentile queries.
inline BenchRow RowFromDriver(std::string series, int threads,
                              workload::DriverResult& r) {
  BenchRow row;
  row.series = std::move(series);
  row.threads = threads;
  row.ops_per_sec = r.Throughput();
  row.abort_rate = r.FailureRate();
  row.p50_us = r.latency_us.Percentile(50);
  row.p99_us = r.latency_us.Percentile(99);
  return row;
}

/// Appends one row per transaction class ("<series>/<class>", e.g.
/// "dbt2/new_order") from a classed driver run: per-class throughput,
/// abort rate, and latency percentiles, with the shared `extra` facts.
/// No-op for results from the unclassed driver.
inline void AppendClassRows(
    const std::string& series, int threads, workload::DriverResult& r,
    std::vector<BenchRow>* rows,
    const std::vector<std::pair<std::string, double>>& extra = {}) {
  for (workload::ClassResult& c : r.classes) {
    BenchRow row;
    row.series = series + "/" + c.name;
    row.threads = threads;
    row.ops_per_sec =
        r.seconds > 0 ? static_cast<double>(c.committed) / r.seconds : 0;
    row.abort_rate = c.FailureRate();
    row.p50_us = c.latency_us.Percentile(50);
    row.p99_us = c.latency_us.Percentile(99);
    row.extra = extra;
    row.extra.emplace_back("retries", static_cast<double>(c.retries));
    row.extra.emplace_back("overload_refusals",
                           static_cast<double>(c.overload_refusals));
    rows->push_back(std::move(row));
  }
}

/// Writes BENCH_<name>.json. Returns false (and prints to stderr) on I/O
/// failure; benches treat that as non-fatal.
inline bool WriteBenchJson(const std::string& name,
                           const std::vector<BenchRow>& rows) {
  const std::string path = "BENCH_" + name + ".json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_json: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"%s\",\n  \"rows\": [", name.c_str());
  for (size_t i = 0; i < rows.size(); i++) {
    const BenchRow& r = rows[i];
    std::fprintf(f,
                 "%s\n    {\"series\": \"%s\", \"threads\": %d, "
                 "\"ops_per_sec\": %.1f, \"abort_rate\": %.6f, "
                 "\"p50_us\": %.1f, \"p99_us\": %.1f",
                 i ? "," : "", r.series.c_str(), r.threads, r.ops_per_sec,
                 r.abort_rate, r.p50_us, r.p99_us);
    for (const auto& [k, v] : r.extra) {
      std::fprintf(f, ", \"%s\": %g", k.c_str(), v);
    }
    std::fputc('}', f);
  }
  std::fprintf(f, "\n  ]\n}\n");
  bool ok = std::fclose(f) == 0;
  if (ok) std::printf("# wrote %s (%zu rows)\n", path.c_str(), rows.size());
  return ok;
}

}  // namespace pgssi::bench
