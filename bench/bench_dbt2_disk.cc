// Figure 5b reproduction: DBT-2++ throughput, disk-bound configuration.
//
// The paper's 150-warehouse / RAID configuration is simulated with a
// per-heap-access I/O delay (EngineConfig::simulated_io_delay_us) and a
// higher concurrency level: with I/O dominating, SSI's CPU overhead stops
// mattering and its throughput becomes indistinguishable from SI, while
// S2PL still pays for blocking; serialization-failure rates stay well
// under 1% (Section 8.2).
// Also emits BENCH_dbt2_disk.json (mode/threads/ro-frac rows) for the
// perf trajectory.
#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench_common.h"
#include "workload/dbt2.h"

using namespace pgssi;
using namespace pgssi::bench;
using namespace pgssi::workload;

int main() {
  const double secs = PointSeconds(1.0);
  const int threads = 16;  // more concurrency, as in the paper's disk config
  const uint64_t io_delay_us = 30;
  const std::vector<double> ro_fracs = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  const std::vector<Mode> modes = {Mode::kSI, Mode::kSSI, Mode::kS2PL};

  std::printf("# Figure 5b: DBT-2++ (disk-bound, %lluus simulated I/O), "
              "normalized throughput vs read-only fraction\n",
              static_cast<unsigned long long>(io_delay_us));
  std::printf("# threads=%d, %gs per point\n", threads, secs);
  std::printf("%-10s %-20s %12s %12s %14s\n", "ro-frac", "mode", "txn/s",
              "normalized", "failure-rate");

  std::vector<BenchRow> rows_out;
  for (double f : ro_fracs) {
    double si_throughput = 0;
    for (Mode m : modes) {
      auto db = Database::Open(OptionsFor(m, io_delay_us));
      Dbt2Config cfg;
      cfg.warehouses = 32;  // larger scale than the in-memory configuration
      cfg.read_only_fraction = f;
      cfg.isolation = IsolationFor(m);
      Dbt2 bench(db.get(), cfg);
      Status st = bench.Load();
      if (!st.ok()) {
        std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
        return 1;
      }
      DriverResult r = RunFixedDuration(
          [&](int, Random& rng) { return bench.RunOne(rng); }, threads, secs);
      if (m == Mode::kSI) si_throughput = r.Throughput();
      BenchRow row = RowFromDriver(ModeName(m), threads, r);
      row.extra = {{"ro_frac", f},
                   {"io_delay_us", static_cast<double>(io_delay_us)}};
      rows_out.push_back(row);
      std::printf("%-10.0f%% %-19s %12.0f %11.2fx %13.3f%%\n", f * 100,
                  ModeName(m), r.Throughput(),
                  si_throughput > 0 ? r.Throughput() / si_throughput : 1.0,
                  r.FailureRate() * 100);
      std::fflush(stdout);
    }
  }
  WriteBenchJson("dbt2_disk", rows_out);
  return 0;
}
