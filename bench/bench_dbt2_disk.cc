// Figure 5b reproduction + durability A/B: DBT-2++ throughput in the
// disk-bound configuration, now with the WAL in the loop.
//
// The paper's 150-warehouse / RAID configuration is simulated with a
// per-heap-access I/O delay (EngineConfig::simulated_io_delay_us); the
// durability axis is real — commits append to an actual log file and
// fsync per EngineConfig::wal_fsync. Three series:
//
//   A. durability cost: SI and SSI at ro-frac 0.2 with WAL off, group
//      commit (fsync=batch), and fsync=always — the group-commit win is
//      the gap between the last two, reported alongside fsyncs/txn;
//   B. group-commit sweep: SSI/fsync=batch across wal_fsync_batch, the
//      batching knob's diminishing-returns curve;
//   C. the original Figure 5b shape (SI/SSI/S2PL vs read-only fraction)
//      with durability on (fsync=batch) — SSI ~= SI must survive the WAL.
//
// Emits BENCH_dbt2_disk.json. Scratch logs live under wal_bench_scratch/
// (gitignored) and are removed per-point.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench_common.h"
#include "workload/dbt2.h"

using namespace pgssi;
using namespace pgssi::bench;
using namespace pgssi::workload;

namespace {

const char* kScratchRoot = "wal_bench_scratch";

struct WalVariant {
  const char* name;       // series suffix
  bool enabled;
  WalFsyncMode mode;
  uint32_t batch;
};

struct PointResult {
  BenchRow row;
  std::vector<BenchRow> class_rows;  // per-txn-class series for this point
  double throughput;
  double failure_rate;
  double fsyncs_per_txn;
};

// One measured point: fresh scratch WAL dir, load, run, tear down.
PointResult RunPoint(Mode m, const WalVariant& wal, double ro_frac,
                     int threads, uint64_t io_delay_us, double secs,
                     const std::string& series, int* rc) {
  namespace fs = std::filesystem;
  const std::string dir =
      std::string(kScratchRoot) + "/" + std::to_string(
          std::hash<std::string>{}(series + std::to_string(ro_frac)) & 0xFFFF);
  fs::remove_all(dir);

  DatabaseOptions opts = OptionsFor(m, io_delay_us);
  opts.engine.wal_enabled = wal.enabled;
  opts.engine.wal_dir = dir;
  opts.engine.wal_fsync = wal.mode;
  opts.engine.wal_fsync_batch = wal.batch;

  PointResult out{};
  Status st;
  auto db = Database::Open(opts, &st);
  if (!db) {
    std::fprintf(stderr, "open failed: %s\n", st.ToString().c_str());
    *rc = 1;
    return out;
  }
  Dbt2Config cfg;
  cfg.warehouses = 32;  // larger scale than the in-memory configuration
  cfg.read_only_fraction = ro_frac;
  cfg.isolation = IsolationFor(m);
  Dbt2 bench(db.get(), cfg);
  st = bench.Load();
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    *rc = 1;
    return out;
  }
  const uint64_t fsyncs_before = db->WalFsyncCount();  // loading synced too
  DriverResult r = RunFixedDurationClassed(
      [&](int, Random& rng, int* cls) { return bench.RunOne(rng, cls); },
      {Dbt2::kClassNames[0], Dbt2::kClassNames[1]}, threads, secs);
  const uint64_t fsyncs = db->WalFsyncCount() - fsyncs_before;

  out.throughput = r.Throughput();
  out.failure_rate = r.FailureRate();
  out.fsyncs_per_txn =
      r.committed > 0 ? static_cast<double>(fsyncs) /
                            static_cast<double>(r.committed)
                      : 0;
  out.row = RowFromDriver(series, threads, r);
  out.row.extra = {{"ro_frac", ro_frac},
                   {"io_delay_us", static_cast<double>(io_delay_us)},
                   {"wal_fsync_batch",
                    wal.enabled ? static_cast<double>(wal.batch) : 0.0},
                   {"fsyncs_per_txn", out.fsyncs_per_txn}};
  AppendClassRows(series, threads, r, &out.class_rows, {{"ro_frac", ro_frac}});
  db.reset();
  std::error_code ec;
  fs::remove_all(dir, ec);
  return out;
}

}  // namespace

int main() {
  const double secs = PointSeconds(1.0);
  const int threads = 16;  // more concurrency, as in the paper's disk config
  const uint64_t io_delay_us = 30;
  int rc = 0;
  std::vector<BenchRow> rows_out;

  std::filesystem::create_directories(kScratchRoot);

  // --- Series A: what durability costs, and what group commit buys ----
  const WalVariant kVariants[] = {
      {"wal=off", false, WalFsyncMode::kOff, 0},
      {"wal=batch", true, WalFsyncMode::kBatch, 64},
      {"wal=always", true, WalFsyncMode::kAlways, 1},
  };
  std::printf("# A: durability A/B (ro-frac 0.2, threads=%d, %gs/point)\n",
              threads, secs);
  std::printf("%-22s %12s %14s %12s\n", "series", "txn/s", "failure-rate",
              "fsync/txn");
  for (Mode m : {Mode::kSI, Mode::kSSI}) {
    for (const WalVariant& w : kVariants) {
      const std::string series = std::string(ModeName(m)) + "/" + w.name;
      PointResult p =
          RunPoint(m, w, 0.2, threads, io_delay_us, secs, series, &rc);
      if (rc) return rc;
      rows_out.push_back(p.row);
      rows_out.insert(rows_out.end(), p.class_rows.begin(),
                      p.class_rows.end());
      std::printf("%-22s %12.0f %13.3f%% %12.3f\n", series.c_str(),
                  p.throughput, p.failure_rate * 100, p.fsyncs_per_txn);
      std::fflush(stdout);
    }
  }

  // --- Series B: group-commit batch-size sweep ------------------------
  std::printf("\n# B: SSI fsync=batch, wal_fsync_batch sweep\n");
  std::printf("%-22s %12s %12s\n", "series", "txn/s", "fsync/txn");
  for (uint32_t batch : {1u, 4u, 16u, 64u, 256u}) {
    const WalVariant w{"wal=batch", true, WalFsyncMode::kBatch, batch};
    const std::string series = "SSI/batch=" + std::to_string(batch);
    PointResult p =
        RunPoint(Mode::kSSI, w, 0.2, threads, io_delay_us, secs, series, &rc);
    if (rc) return rc;
    rows_out.push_back(p.row);
    rows_out.insert(rows_out.end(), p.class_rows.begin(), p.class_rows.end());
    std::printf("%-22s %12.0f %12.3f\n", series.c_str(), p.throughput,
                p.fsyncs_per_txn);
    std::fflush(stdout);
  }

  // --- Series C: Figure 5b shape with durability on -------------------
  std::printf("\n# C: Figure 5b under fsync=batch — normalized throughput "
              "vs read-only fraction\n");
  std::printf("%-10s %-20s %12s %12s %14s\n", "ro-frac", "mode", "txn/s",
              "normalized", "failure-rate");
  const WalVariant wal_batch{"wal=batch", true, WalFsyncMode::kBatch, 64};
  for (double f : {0.0, 0.4, 0.8}) {
    double si_throughput = 0;
    for (Mode m : {Mode::kSI, Mode::kSSI, Mode::kS2PL}) {
      const std::string series =
          std::string(ModeName(m)) + "/wal=batch/ro=" + std::to_string(f);
      PointResult p =
          RunPoint(m, wal_batch, f, threads, io_delay_us, secs, series, &rc);
      if (rc) return rc;
      if (m == Mode::kSI) si_throughput = p.throughput;
      rows_out.push_back(p.row);
      rows_out.insert(rows_out.end(), p.class_rows.begin(),
                      p.class_rows.end());
      std::printf("%-10.0f%% %-19s %12.0f %11.2fx %13.3f%%\n", f * 100,
                  ModeName(m), p.throughput,
                  si_throughput > 0 ? p.throughput / si_throughput : 1.0,
                  p.failure_rate * 100);
      std::fflush(stdout);
    }
  }

  WriteBenchJson("dbt2_disk", rows_out);
  std::error_code ec;
  std::filesystem::remove_all(kScratchRoot, ec);
  return 0;
}
