// SIREAD lock-manager multicore scaling benchmark.
//
// Runs a read-mostly key-value mix (8 point reads per transaction, a
// write with probability --write-frac, default 10%) on 1/2/4/8/16
// threads under:
//   SI               REPEATABLE READ (no SSI tracking — the ceiling)
//   SSI/partitioned  SERIALIZABLE via SSI, partitioned SIREAD tables
//                    (EngineConfig::lock_partitions, default 16)
//   SSI/global-mutex SERIALIZABLE via SSI with lock_partitions=1 — the
//                    pre-partitioning single-mutex design, kept as an
//                    honest same-binary A/B baseline
//   S2PL             SERIALIZABLE via strict two-phase locking
//
// Second section: conflict-graph locking A/B — a high-conflict
// write-skew mix (every transaction reads both members of a random pair
// and conditionally updates one, so rw-antidependency edges form at a
// high rate and throughput is bounded by the conflict path, not the
// SIREAD read path) under fine-grained per-xact edge locks
// (EngineConfig::conflict_lock_mode=1, default) vs the old global
// conflict mutex (=0).
//
// Prints a table, reports the 8-thread partitioned-vs-global and
// fine-vs-global-conflict speedups, and emits machine-readable
// BENCH_lockmgr.json (see bench_json.h).
//
// Flags: --rows=N --write-frac=F --threads=1,2,4,8,16 --partitions=N
// --heap-stripes=N --conflict-lock-mode=N (--partitions pins the
// partitioned series' count; the 1-partition baseline always runs for
// comparison unless --partitions=1; --heap-stripes sets every series'
// heap-latch stripe count, 1 = the old one-latch-per-table design;
// --conflict-lock-mode sets the main SSI series' conflict-graph locking,
// and the write-skew section always runs both settings).
// PGSSI_BENCH_SECONDS sets the per-point window (default 1s).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "bench_common.h"
#include "db/transaction_handle.h"
#include "workload/driver.h"

namespace {

using namespace pgssi;
using namespace pgssi::bench;
using namespace pgssi::workload;

std::string KeyFor(uint64_t i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "k%010llu",
                static_cast<unsigned long long>(i));
  return buf;
}

struct Config {
  uint64_t rows = 8192;
  double write_frac = 0.10;
  std::vector<int> threads = {1, 2, 4, 8, 16};
  uint32_t partitions = kLockPartitions;
  uint32_t heap_stripes = kHeapStripes;
  uint32_t conflict_lock_mode = 1;
  uint32_t index_olc = 1;
  uint32_t epoch_reclaim = 1;
  uint64_t skew_pairs = 16;
};

Status RunReadMostly(Database* db, TableId t, const Config& cfg, Random& rng,
                     IsolationLevel iso) {
  auto txn = db->Begin({.isolation = iso});
  std::string v;
  for (int i = 0; i < 8; i++) {
    Status st = txn->Get(t, KeyFor(rng.Uniform(cfg.rows)), &v);
    if (!st.ok()) {
      (void)txn->Abort();
      return st;
    }
  }
  if (rng.Bernoulli(cfg.write_frac)) {
    Status st = txn->Put(t, KeyFor(rng.Uniform(cfg.rows)), "v2");
    if (!st.ok()) {
      (void)txn->Abort();
      return st;
    }
  }
  return txn->Commit();
}

struct Series {
  const char* name;
  IsolationLevel iso;
  DatabaseOptions opts;
};

bool Load(Database* db, uint64_t rows, TableId* t) {
  if (!db->CreateTable("t", t).ok()) return false;
  auto txn = db->Begin({.isolation = IsolationLevel::kRepeatableRead});
  for (uint64_t i = 0; i < rows; i++) {
    if (!txn->Put(*t, KeyFor(i), "v").ok()) return false;
  }
  return txn->Commit().ok();
}

// High-conflict write skew: read both members of a random pair, withdraw
// from one if the pair's sum allows. Nearly every transaction flags rw
// edges and runs the dangerous-structure tests, so this series is
// bounded by the conflict-graph path the per-xact edge locks split.
Status RunWriteSkew(Database* db, TableId t, const Config& cfg, Random& rng) {
  uint64_t pair = rng.Uniform(cfg.skew_pairs);
  std::string ka = "p" + std::to_string(pair) + "a";
  std::string kb = "p" + std::to_string(pair) + "b";
  auto txn = db->Begin({.isolation = IsolationLevel::kSerializable});
  std::string va, vb;
  Status st = txn->Get(t, ka, &va);
  if (st.ok()) st = txn->Get(t, kb, &vb);
  if (!st.ok()) {
    (void)txn->Abort();
    return st;
  }
  int a = std::atoi(va.c_str());
  int b = std::atoi(vb.c_str());
  // Withdraw while the sum allows, deposit once it is exhausted: every
  // transaction reads both keys and writes one, so the conflict rate
  // never decays as balances drain.
  const std::string& victim = rng.Bernoulli(0.5) ? ka : kb;
  const int old_v = victim == ka ? a : b;
  const int new_v = a + b >= 100 ? old_v - 100 : old_v + 100;
  st = txn->Put(t, victim, std::to_string(new_v));
  if (!st.ok()) {
    (void)txn->Abort();
    return st;
  }
  return txn->Commit();
}

// One conflict-lock-mode point series of the write-skew A/B. Reloads the
// pairs for every thread count so aborted balances don't drift across
// points.
void RunConflictSkewSeries(const Config& cfg, uint32_t mode, double secs,
                           std::vector<BenchRow>* rows_out, double* ops8) {
  char series[48];
  std::snprintf(series, sizeof(series), "SSI-skew/conflict=%s",
                mode != 0 ? "fine" : "global");
  for (int threads : cfg.threads) {
    DatabaseOptions opts;
    opts.engine.heap_stripes = cfg.heap_stripes;
    opts.engine.conflict_lock_mode = mode;
    opts.engine.index_olc = cfg.index_olc;
    auto db = Database::Open(opts);
    TableId t;
    if (!db->CreateTable("skew", &t).ok()) std::abort();
    {
      auto txn = db->Begin({.isolation = IsolationLevel::kRepeatableRead});
      for (uint64_t p = 0; p < cfg.skew_pairs; p++) {
        if (!txn->Put(t, "p" + std::to_string(p) + "a", "60").ok() ||
            !txn->Put(t, "p" + std::to_string(p) + "b", "60").ok()) {
          std::abort();
        }
      }
      if (!txn->Commit().ok()) std::abort();
    }
    DriverResult r = RunFixedDuration(
        [&](int, Random& rng) { return RunWriteSkew(db.get(), t, cfg, rng); },
        threads, secs);
    BenchRow row = RowFromDriver(series, threads, r);
    row.extra = {{"conflict_lock_mode", static_cast<double>(mode)},
                 {"skew_pairs", static_cast<double>(cfg.skew_pairs)},
                 {"heap_stripes", static_cast<double>(cfg.heap_stripes)}};
    rows_out->push_back(row);
    std::printf("%-18s %8d %12.0f %9.2f%% %10.1f %10.1f\n", series, threads,
                row.ops_per_sec, row.abort_rate * 100, row.p50_us, row.p99_us);
    std::fflush(stdout);
    if (threads == 8 && ops8) *ops8 = row.ops_per_sec;
  }
}

// Abort-heavy teardown churn: every transaction reads most of a tiny
// keyspace and writes part of it, so rw edges are dense, SSI aborts are
// the COMMON case, and the measured path is xact teardown — exactly
// what epoch reclamation moved off the exclusive registry lock. Half
// the surviving transactions also abort voluntarily to keep the
// teardown rate high even when conflicts momentarily clear.
Status RunAbortChurn(Database* db, TableId t, Random& rng) {
  constexpr uint64_t kHotKeys = 8;
  auto txn = db->Begin({.isolation = IsolationLevel::kSerializable});
  std::string v;
  for (int i = 0; i < 4; i++) {
    Status st = txn->Get(t, "h" + std::to_string(rng.Uniform(kHotKeys)), &v);
    if (!st.ok()) {
      (void)txn->Abort();
      return st;
    }
  }
  for (int i = 0; i < 2; i++) {
    Status st =
        txn->Put(t, "h" + std::to_string(rng.Uniform(kHotKeys)), "x");
    if (!st.ok()) {
      (void)txn->Abort();
      return st;
    }
  }
  if (rng.Bernoulli(0.5)) {
    (void)txn->Abort();
    return Status::SerializationFailure("voluntary abort (churn)");
  }
  return txn->Commit();
}

// One epoch-reclaim point series of the teardown A/B. The JSON rows
// carry the audit counter so the "zero exclusive acquisitions" claim is
// checkable straight from BENCH_lockmgr.json.
void RunTeardownSeries(const Config& cfg, uint32_t epoch_reclaim, double secs,
                       std::vector<BenchRow>* rows_out, double* ops8) {
  char series[48];
  std::snprintf(series, sizeof(series), "SSI-teardown/%s",
                epoch_reclaim != 0 ? "epoch" : "exclusive");
  for (int threads : cfg.threads) {
    DatabaseOptions opts;
    opts.engine.heap_stripes = cfg.heap_stripes;
    opts.engine.conflict_lock_mode = cfg.conflict_lock_mode;
    opts.engine.index_olc = cfg.index_olc;
    opts.engine.epoch_reclaim = epoch_reclaim;
    auto db = Database::Open(opts);
    TableId t;
    if (!db->CreateTable("churn", &t).ok()) std::abort();
    {
      auto txn = db->Begin({.isolation = IsolationLevel::kRepeatableRead});
      for (uint64_t k = 0; k < 8; k++) {
        if (!txn->Put(t, "h" + std::to_string(k), "x").ok()) std::abort();
      }
      if (!txn->Commit().ok()) std::abort();
    }
    DriverResult r = RunFixedDuration(
        [&](int, Random& rng) { return RunAbortChurn(db.get(), t, rng); },
        threads, secs);
    BenchRow row = RowFromDriver(series, threads, r);
    row.extra = {
        {"epoch_reclaim", static_cast<double>(epoch_reclaim)},
        {"registry_exclusive_acquires",
         static_cast<double>(db->SireadRegistryExclusiveAcquires())},
        {"epoch_freed_objects",
         static_cast<double>(db->EpochFreedObjectCount())}};
    rows_out->push_back(row);
    std::printf("%-18s %8d %12.0f %9.2f%% %10.1f %10.1f\n", series, threads,
                row.ops_per_sec, row.abort_rate * 100, row.p50_us, row.p99_us);
    std::fflush(stdout);
    if (threads == 8 && ops8) *ops8 = row.ops_per_sec;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; i++) {
    const char* a = argv[i];
    if (std::strncmp(a, "--rows=", 7) == 0) {
      cfg.rows = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strncmp(a, "--write-frac=", 13) == 0) {
      cfg.write_frac = std::atof(a + 13);
    } else if (std::strncmp(a, "--partitions=", 13) == 0) {
      cfg.partitions = static_cast<uint32_t>(std::strtoul(a + 13, nullptr, 10));
    } else if (std::strncmp(a, "--heap-stripes=", 15) == 0) {
      cfg.heap_stripes =
          static_cast<uint32_t>(std::strtoul(a + 15, nullptr, 10));
    } else if (std::strncmp(a, "--conflict-lock-mode=", 21) == 0) {
      cfg.conflict_lock_mode =
          static_cast<uint32_t>(std::strtoul(a + 21, nullptr, 10));
    } else if (std::strncmp(a, "--index-olc=", 12) == 0) {
      cfg.index_olc = static_cast<uint32_t>(std::strtoul(a + 12, nullptr, 10));
    } else if (std::strncmp(a, "--epoch-reclaim=", 16) == 0) {
      cfg.epoch_reclaim =
          static_cast<uint32_t>(std::strtoul(a + 16, nullptr, 10));
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      cfg.threads.clear();
      for (const char* p = a + 10; *p;) {
        cfg.threads.push_back(std::atoi(p));
        while (*p && *p != ',') p++;
        if (*p == ',') p++;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--rows=N] [--write-frac=F] [--threads=a,b,...] "
                   "[--partitions=N] [--heap-stripes=N] "
                   "[--conflict-lock-mode=N] [--index-olc=N] "
                   "[--epoch-reclaim=N]\n",
                   argv[0]);
      return 2;
    }
  }
  const double secs = PointSeconds(1.0);

  DatabaseOptions si_opts;  // isolation chosen per txn; defaults otherwise
  DatabaseOptions ssi_part;
  ssi_part.engine.lock_partitions = cfg.partitions;
  DatabaseOptions ssi_global;
  ssi_global.engine.lock_partitions = 1;
  DatabaseOptions s2pl;
  s2pl.serializable_impl = SerializableImpl::kS2PL;
  for (DatabaseOptions* o : {&si_opts, &ssi_part, &ssi_global, &s2pl}) {
    o->engine.heap_stripes = cfg.heap_stripes;
    o->engine.conflict_lock_mode = cfg.conflict_lock_mode;
    o->engine.index_olc = cfg.index_olc;
    o->engine.epoch_reclaim = cfg.epoch_reclaim;
  }

  std::vector<Series> series = {
      {"SI", IsolationLevel::kRepeatableRead, si_opts},
      {"SSI/partitioned", IsolationLevel::kSerializable, ssi_part},
      {"SSI/global-mutex", IsolationLevel::kSerializable, ssi_global},
      {"S2PL", IsolationLevel::kSerializable, s2pl},
  };
  if (cfg.partitions == 1) series.erase(series.begin() + 2);  // same thing

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf(
      "# SIREAD lock-manager scaling: %llu rows, %.0f%% write txns, %gs/point, "
      "%u partitions, %u hardware threads\n",
      static_cast<unsigned long long>(cfg.rows), cfg.write_frac * 100, secs,
      cfg.partitions, hw);
  if (hw < 2) {
    std::printf(
        "# NOTE: single-core machine — partition scaling cannot show its "
        "multicore win here; the A/B ratio below only reflects reduced futex "
        "churn.\n");
  }
  std::printf("%-18s %8s %12s %10s %10s %10s\n", "series", "threads", "txn/s",
              "abort%", "p50us", "p99us");

  std::vector<BenchRow> rows_out;
  // speedup[threads] = partitioned / global-mutex throughput
  double part8 = 0, global8 = 0;
  for (const Series& s : series) {
    for (int threads : cfg.threads) {
      auto db = Database::Open(s.opts);
      TableId t;
      if (!Load(db.get(), cfg.rows, &t)) {
        std::fprintf(stderr, "load failed\n");
        return 1;
      }
      DriverResult r = RunFixedDuration(
          [&](int, Random& rng) {
            return RunReadMostly(db.get(), t, cfg, rng, s.iso);
          },
          threads, secs);
      BenchRow row = RowFromDriver(s.name, threads, r);
      row.extra = {{"rows", static_cast<double>(cfg.rows)},
                   {"write_frac", cfg.write_frac},
                   {"partitions",
                    static_cast<double>(s.opts.engine.lock_partitions)},
                   {"heap_stripes", static_cast<double>(cfg.heap_stripes)},
                   {"conflict_lock_mode",
                    static_cast<double>(cfg.conflict_lock_mode)},
                   {"index_olc", static_cast<double>(cfg.index_olc)},
                   {"hardware_threads", static_cast<double>(hw)}};
      rows_out.push_back(row);
      std::printf("%-18s %8d %12.0f %9.2f%% %10.1f %10.1f\n", s.name, threads,
                  row.ops_per_sec, row.abort_rate * 100, row.p50_us,
                  row.p99_us);
      std::fflush(stdout);
      if (threads == 8) {
        if (std::strcmp(s.name, "SSI/partitioned") == 0)
          part8 = row.ops_per_sec;
        if (std::strcmp(s.name, "SSI/global-mutex") == 0)
          global8 = row.ops_per_sec;
      }
    }
  }

  if (part8 > 0 && global8 > 0) {
    std::printf(
        "# 8-thread SERIALIZABLE speedup, partitioned vs global mutex: "
        "%.2fx\n",
        part8 / global8);
  }

  std::printf(
      "\n# Conflict-graph locking A/B: high-conflict write skew, %llu pairs "
      "(fine per-xact edge locks vs global conflict mutex)\n",
      static_cast<unsigned long long>(cfg.skew_pairs));
  if (hw < 2) {
    std::printf(
        "# NOTE: single-core machine — the conflict-path split cannot show "
        "its multicore win here.\n");
  }
  std::printf("%-18s %8s %12s %10s %10s %10s\n", "series", "threads", "txn/s",
              "abort%", "p50us", "p99us");
  double fine8 = 0, cglobal8 = 0;
  RunConflictSkewSeries(cfg, /*mode=*/1, secs, &rows_out, &fine8);
  RunConflictSkewSeries(cfg, /*mode=*/0, secs, &rows_out, &cglobal8);
  if (fine8 > 0 && cglobal8 > 0) {
    std::printf(
        "# 8-thread write-skew speedup, fine-grained vs global conflict "
        "lock: %.2fx\n",
        fine8 / cglobal8);
  }

  std::printf(
      "\n# Teardown A/B: abort-heavy extreme-conflict churn "
      "(epoch-limbo reclamation vs exclusive-registry teardown)\n");
  if (hw < 2) {
    std::printf(
        "# NOTE: single-core machine — taking the registry lock off the "
        "teardown path cannot show its multicore win here.\n");
  }
  std::printf("%-18s %8s %12s %10s %10s %10s\n", "series", "threads", "txn/s",
              "abort%", "p50us", "p99us");
  double epoch8 = 0, excl8 = 0;
  RunTeardownSeries(cfg, /*epoch_reclaim=*/1, secs, &rows_out, &epoch8);
  RunTeardownSeries(cfg, /*epoch_reclaim=*/0, secs, &rows_out, &excl8);
  if (epoch8 > 0 && excl8 > 0) {
    std::printf(
        "# 8-thread abort-churn speedup, epoch reclamation vs exclusive "
        "registry teardown: %.2fx\n",
        epoch8 / excl8);
  }

  WriteBenchJson("lockmgr", rows_out);
  return 0;
}
