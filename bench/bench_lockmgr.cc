// SIREAD lock-manager multicore scaling benchmark.
//
// Runs a read-mostly key-value mix (8 point reads per transaction, a
// write with probability --write-frac, default 10%) on 1/2/4/8/16
// threads under:
//   SI               REPEATABLE READ (no SSI tracking — the ceiling)
//   SSI/partitioned  SERIALIZABLE via SSI, partitioned SIREAD tables
//                    (EngineConfig::lock_partitions, default 16)
//   SSI/global-mutex SERIALIZABLE via SSI with lock_partitions=1 — the
//                    pre-partitioning single-mutex design, kept as an
//                    honest same-binary A/B baseline
//   S2PL             SERIALIZABLE via strict two-phase locking
//
// Prints a table, reports the 8-thread partitioned-vs-global speedup,
// and emits machine-readable BENCH_lockmgr.json (see bench_json.h).
//
// Flags: --rows=N --write-frac=F --threads=1,2,4,8,16 --partitions=N
// --heap-stripes=N (--partitions pins the partitioned series' count; the
// 1-partition baseline always runs for comparison unless --partitions=1;
// --heap-stripes sets every series' heap-latch stripe count, 1 = the old
// one-latch-per-table design). PGSSI_BENCH_SECONDS sets the per-point
// window (default 1s).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "bench_common.h"
#include "db/transaction_handle.h"
#include "workload/driver.h"

namespace {

using namespace pgssi;
using namespace pgssi::bench;
using namespace pgssi::workload;

std::string KeyFor(uint64_t i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "k%010llu",
                static_cast<unsigned long long>(i));
  return buf;
}

struct Config {
  uint64_t rows = 8192;
  double write_frac = 0.10;
  std::vector<int> threads = {1, 2, 4, 8, 16};
  uint32_t partitions = kLockPartitions;
  uint32_t heap_stripes = kHeapStripes;
};

Status RunReadMostly(Database* db, TableId t, const Config& cfg, Random& rng,
                     IsolationLevel iso) {
  auto txn = db->Begin({.isolation = iso});
  std::string v;
  for (int i = 0; i < 8; i++) {
    Status st = txn->Get(t, KeyFor(rng.Uniform(cfg.rows)), &v);
    if (!st.ok()) {
      (void)txn->Abort();
      return st;
    }
  }
  if (rng.Bernoulli(cfg.write_frac)) {
    Status st = txn->Put(t, KeyFor(rng.Uniform(cfg.rows)), "v2");
    if (!st.ok()) {
      (void)txn->Abort();
      return st;
    }
  }
  return txn->Commit();
}

struct Series {
  const char* name;
  IsolationLevel iso;
  DatabaseOptions opts;
};

bool Load(Database* db, uint64_t rows, TableId* t) {
  if (!db->CreateTable("t", t).ok()) return false;
  auto txn = db->Begin({.isolation = IsolationLevel::kRepeatableRead});
  for (uint64_t i = 0; i < rows; i++) {
    if (!txn->Put(*t, KeyFor(i), "v").ok()) return false;
  }
  return txn->Commit().ok();
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; i++) {
    const char* a = argv[i];
    if (std::strncmp(a, "--rows=", 7) == 0) {
      cfg.rows = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strncmp(a, "--write-frac=", 13) == 0) {
      cfg.write_frac = std::atof(a + 13);
    } else if (std::strncmp(a, "--partitions=", 13) == 0) {
      cfg.partitions = static_cast<uint32_t>(std::strtoul(a + 13, nullptr, 10));
    } else if (std::strncmp(a, "--heap-stripes=", 15) == 0) {
      cfg.heap_stripes =
          static_cast<uint32_t>(std::strtoul(a + 15, nullptr, 10));
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      cfg.threads.clear();
      for (const char* p = a + 10; *p;) {
        cfg.threads.push_back(std::atoi(p));
        while (*p && *p != ',') p++;
        if (*p == ',') p++;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--rows=N] [--write-frac=F] [--threads=a,b,...] "
                   "[--partitions=N] [--heap-stripes=N]\n",
                   argv[0]);
      return 2;
    }
  }
  const double secs = PointSeconds(1.0);

  DatabaseOptions si_opts;  // isolation chosen per txn; defaults otherwise
  DatabaseOptions ssi_part;
  ssi_part.engine.lock_partitions = cfg.partitions;
  DatabaseOptions ssi_global;
  ssi_global.engine.lock_partitions = 1;
  DatabaseOptions s2pl;
  s2pl.serializable_impl = SerializableImpl::kS2PL;
  for (DatabaseOptions* o : {&si_opts, &ssi_part, &ssi_global, &s2pl}) {
    o->engine.heap_stripes = cfg.heap_stripes;
  }

  std::vector<Series> series = {
      {"SI", IsolationLevel::kRepeatableRead, si_opts},
      {"SSI/partitioned", IsolationLevel::kSerializable, ssi_part},
      {"SSI/global-mutex", IsolationLevel::kSerializable, ssi_global},
      {"S2PL", IsolationLevel::kSerializable, s2pl},
  };
  if (cfg.partitions == 1) series.erase(series.begin() + 2);  // same thing

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf(
      "# SIREAD lock-manager scaling: %llu rows, %.0f%% write txns, %gs/point, "
      "%u partitions, %u hardware threads\n",
      static_cast<unsigned long long>(cfg.rows), cfg.write_frac * 100, secs,
      cfg.partitions, hw);
  if (hw < 2) {
    std::printf(
        "# NOTE: single-core machine — partition scaling cannot show its "
        "multicore win here; the A/B ratio below only reflects reduced futex "
        "churn.\n");
  }
  std::printf("%-18s %8s %12s %10s %10s %10s\n", "series", "threads", "txn/s",
              "abort%", "p50us", "p99us");

  std::vector<BenchRow> rows_out;
  // speedup[threads] = partitioned / global-mutex throughput
  double part8 = 0, global8 = 0;
  for (const Series& s : series) {
    for (int threads : cfg.threads) {
      auto db = Database::Open(s.opts);
      TableId t;
      if (!Load(db.get(), cfg.rows, &t)) {
        std::fprintf(stderr, "load failed\n");
        return 1;
      }
      DriverResult r = RunFixedDuration(
          [&](int, Random& rng) {
            return RunReadMostly(db.get(), t, cfg, rng, s.iso);
          },
          threads, secs);
      BenchRow row = RowFromDriver(s.name, threads, r);
      row.extra = {{"rows", static_cast<double>(cfg.rows)},
                   {"write_frac", cfg.write_frac},
                   {"partitions",
                    static_cast<double>(s.opts.engine.lock_partitions)},
                   {"heap_stripes", static_cast<double>(cfg.heap_stripes)},
                   {"hardware_threads", static_cast<double>(hw)}};
      rows_out.push_back(row);
      std::printf("%-18s %8d %12.0f %9.2f%% %10.1f %10.1f\n", s.name, threads,
                  row.ops_per_sec, row.abort_rate * 100, row.p50_us,
                  row.p99_us);
      std::fflush(stdout);
      if (threads == 8) {
        if (std::strcmp(s.name, "SSI/partitioned") == 0)
          part8 = row.ops_per_sec;
        if (std::strcmp(s.name, "SSI/global-mutex") == 0)
          global8 = row.ops_per_sec;
      }
    }
  }

  if (part8 > 0 && global8 > 0) {
    std::printf(
        "# 8-thread SERIALIZABLE speedup, partitioned vs global mutex: "
        "%.2fx\n",
        part8 / global8);
  }
  WriteBenchJson("lockmgr", rows_out);
  return 0;
}
