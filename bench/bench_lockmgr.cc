// Microbenchmarks for the SSI substrate (supporting the Section 8.1 claim
// that read-dependency tracking costs 10-20% CPU): SIREAD lock
// acquire/probe/promotion, conflict flagging, B+-tree operations, and the
// MVCC read path with and without SSI tracking.
#include <benchmark/benchmark.h>

#include "db/transaction_handle.h"
#include "index/btree.h"
#include "ssi/siread_lock_manager.h"
#include "txn/txn_manager.h"
#include "util/random.h"

namespace {

using namespace pgssi;

void BM_SireadAcquireTuple(benchmark::State& state) {
  EngineConfig cfg;
  cfg.max_locks_per_page = 1u << 30;  // no promotion in this benchmark
  cfg.max_pages_per_relation = 1u << 30;
  ssi::SireadLockManager mgr(cfg);
  ssi::SerializableXact x;
  uint64_t i = 0;
  for (auto _ : state) {
    mgr.AcquireTuple(&x, 1, i / 64, static_cast<uint32_t>(i % 64));
    i++;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_SireadAcquireTuple);

void BM_SireadAcquireWithPromotion(benchmark::State& state) {
  EngineConfig cfg;
  cfg.max_locks_per_page = 2;
  cfg.max_pages_per_relation = 16;
  ssi::SireadLockManager mgr(cfg);
  ssi::SerializableXact x;
  uint64_t i = 0;
  for (auto _ : state) {
    mgr.AcquireTuple(&x, 1, i / 64, static_cast<uint32_t>(i % 64));
    i++;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_SireadAcquireWithPromotion);

void BM_SireadProbeMiss(benchmark::State& state) {
  EngineConfig cfg;
  ssi::SireadLockManager mgr(cfg);
  ssi::SerializableXact x;
  for (uint32_t s = 0; s < 64; s++) mgr.AcquireTuple(&x, 1, 7, s);
  uint64_t i = 0;
  for (auto _ : state) {
    auto r = mgr.ProbeHeapWrite(1, 100000 + i % 1000, 0);
    benchmark::DoNotOptimize(r.holder_xids.data());
    i++;
  }
}
BENCHMARK(BM_SireadProbeMiss);

void BM_SireadProbeHit(benchmark::State& state) {
  EngineConfig cfg;
  ssi::SireadLockManager mgr(cfg);
  ssi::SerializableXact x;
  for (uint32_t s = 0; s < 8; s++) mgr.AcquireTuple(&x, 1, 7, s);
  for (auto _ : state) {
    auto r = mgr.ProbeHeapWrite(1, 7, 3);
    benchmark::DoNotOptimize(r.holder_xids.data());
  }
}
BENCHMARK(BM_SireadProbeHit);

void BM_BTreeInsert(benchmark::State& state) {
  BTree t(64);
  Random rng(1);
  PageId pg;
  uint64_t i = 0;
  for (auto _ : state) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llu",
                  static_cast<unsigned long long>(rng.Next()));
    t.Insert(buf, i++, &pg);
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreeLookup(benchmark::State& state) {
  BTree t(64);
  PageId pg;
  for (uint64_t i = 0; i < 100000; i++) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llu",
                  static_cast<unsigned long long>(i));
    t.Insert(buf, i, &pg);
  }
  Random rng(2);
  for (auto _ : state) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llu",
                  static_cast<unsigned long long>(rng.Uniform(100000)));
    TupleId head;
    benchmark::DoNotOptimize(t.Lookup(buf, &head, &pg));
  }
}
BENCHMARK(BM_BTreeLookup);

/// End-to-end read path cost: REPEATABLE READ (no SSI tracking) vs
/// SERIALIZABLE (SIREAD + conflict flagging). The ratio is the per-read
/// overhead the paper attributes 10-20% CPU to.
void ReadPathBench(benchmark::State& state, IsolationLevel iso) {
  auto db = Database::Open({});
  TableId t;
  (void)db->CreateTable("t", &t);
  {
    auto txn = db->Begin({.isolation = IsolationLevel::kRepeatableRead});
    for (int i = 0; i < 1000; i++) {
      (void)txn->Put(t, "k" + std::to_string(i), "v");
    }
    (void)txn->Commit();
  }
  Random rng(3);
  for (auto _ : state) {
    auto txn = db->Begin({.isolation = iso});
    std::string v;
    for (int i = 0; i < 10; i++) {
      (void)txn->Get(t, "k" + std::to_string(rng.Uniform(1000)), &v);
    }
    (void)txn->Commit();
  }
}
void BM_ReadTxnRepeatableRead(benchmark::State& state) {
  ReadPathBench(state, IsolationLevel::kRepeatableRead);
}
BENCHMARK(BM_ReadTxnRepeatableRead);
void BM_ReadTxnSerializable(benchmark::State& state) {
  ReadPathBench(state, IsolationLevel::kSerializable);
}
BENCHMARK(BM_ReadTxnSerializable);

void BM_WriteTxnRepeatableRead(benchmark::State& state) {
  auto db = Database::Open({});
  TableId t;
  (void)db->CreateTable("t", &t);
  Random rng(4);
  for (auto _ : state) {
    auto txn = db->Begin({.isolation = IsolationLevel::kRepeatableRead});
    (void)txn->Put(t, "k" + std::to_string(rng.Uniform(1000)), "v");
    (void)txn->Commit();
  }
}
BENCHMARK(BM_WriteTxnRepeatableRead);

void BM_WriteTxnSerializable(benchmark::State& state) {
  auto db = Database::Open({});
  TableId t;
  (void)db->CreateTable("t", &t);
  Random rng(5);
  for (auto _ : state) {
    auto txn = db->Begin({.isolation = IsolationLevel::kSerializable});
    (void)txn->Put(t, "k" + std::to_string(rng.Uniform(1000)), "v");
    (void)txn->Commit();
  }
}
BENCHMARK(BM_WriteTxnSerializable);

}  // namespace

BENCHMARK_MAIN();
