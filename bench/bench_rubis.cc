// Figure 6 (table) reproduction: RUBiS bidding-mix throughput and
// serialization-failure rate for SI, SSI, and S2PL.
//
// Paper shape (their numbers: SI 435 req/s @ 0.004%, SSI 422 @ 0.03%,
// S2PL 208 @ 0.76%): SSI within a few percent of SI with a slightly
// higher failure rate; S2PL roughly half the throughput of SI with the
// highest failure rate (deadlocks), because category-listing queries
// conflict with bids.
// Also emits BENCH_rubis.json (mode/threads/throughput/abort rate/
// latency percentiles + consistency flag) for the perf trajectory.
#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench_common.h"
#include "workload/rubis.h"

using namespace pgssi;
using namespace pgssi::bench;
using namespace pgssi::workload;

int main() {
  const double secs = PointSeconds(2.0);
  const int threads = 8;
  // The paper's RUBiS was disk-bound (6 GB dataset, single 7200 RPM
  // drive); simulate that regime so transaction durations are comparable.
  const uint64_t io_delay_us = 150;
  const std::vector<Mode> modes = {Mode::kSI, Mode::kSSI, Mode::kS2PL};

  std::printf("# Figure 6: RUBiS bidding mix (85%% read-only)\n");
  std::printf("# threads=%d, %gs per mode\n", threads, secs);
  std::printf("%-10s %14s %14s %22s\n", "mode", "req/s", "normalized",
              "serialization-failures");

  std::vector<BenchRow> rows_out;
  double si_throughput = 0;
  for (Mode m : modes) {
    auto db = Database::Open(OptionsFor(m, io_delay_us));
    RubisConfig cfg;
    cfg.isolation = IsolationFor(m);
    Rubis bench(db.get(), cfg);
    Status st = bench.Load();
    if (!st.ok()) {
      std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
      return 1;
    }
    DriverResult r = RunFixedDurationClassed(
        [&](int, Random& rng, int* cls) { return bench.RunOne(rng, cls); },
        {Rubis::kClassNames[0], Rubis::kClassNames[1], Rubis::kClassNames[2]},
        threads, secs);
    if (m == Mode::kSI) si_throughput = r.Throughput();
    std::printf("%-10s %14.0f %13.2fx %21.4f%%\n", ModeName(m),
                r.Throughput(),
                si_throughput > 0 ? r.Throughput() / si_throughput : 1.0,
                r.FailureRate() * 100);
    std::fflush(stdout);
    bool ok = false;
    st = bench.CheckConsistency(&ok);
    BenchRow row = RowFromDriver(ModeName(m), threads, r);
    row.extra = {{"io_delay_us", static_cast<double>(io_delay_us)},
                 {"consistent", ok ? 1.0 : 0.0}};
    rows_out.push_back(row);
    AppendClassRows(ModeName(m), threads, r, &rows_out,
                    {{"io_delay_us", static_cast<double>(io_delay_us)}});
    if (!st.ok() || (!ok && m != Mode::kSI)) {
      // SI may legitimately corrupt the max-bid invariant (that is the
      // point of the paper); serializable modes must not.
      std::printf("  consistency check: %s\n",
                  st.ok() ? (ok ? "OK" : "VIOLATED") : st.ToString().c_str());
    } else {
      std::printf("  consistency check: %s\n", ok ? "OK" : "violated (SI)");
    }
  }
  WriteBenchJson("rubis", rows_out);
  return 0;
}
