// Shared helpers for the figure/table reproduction benches.
//
// Every bench prints the paper's rows/series. Durations are tuned for
// laptop-scale runs; set PGSSI_BENCH_SECONDS to change the per-point
// measurement window (default 1.0s; the paper's absolute numbers came from
// dedicated hardware and are not the target — the relative shape is).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "db/transaction_handle.h"
#include "workload/driver.h"

namespace pgssi::bench {

inline double PointSeconds(double def = 1.0) {
  const char* s = std::getenv("PGSSI_BENCH_SECONDS");
  return s ? std::atof(s) : def;
}

/// The four series of Figures 4 and 5.
enum class Mode { kSI, kSSI, kSsiNoReadOnlyOpt, kS2PL };

inline const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kSI:
      return "SI";
    case Mode::kSSI:
      return "SSI";
    case Mode::kSsiNoReadOnlyOpt:
      return "SSI (no r/o opt.)";
    case Mode::kS2PL:
      return "S2PL";
  }
  return "?";
}

/// Database options implementing the series: SI = REPEATABLE READ snapshot
/// isolation; SSI = serializable via SSI; S2PL = serializable via locking.
inline DatabaseOptions OptionsFor(Mode m, uint64_t io_delay_us = 0) {
  DatabaseOptions opts;
  opts.engine.simulated_io_delay_us = io_delay_us;
  if (m == Mode::kSsiNoReadOnlyOpt) opts.engine.enable_read_only_opt = false;
  if (m == Mode::kS2PL) opts.serializable_impl = SerializableImpl::kS2PL;
  return opts;
}

inline IsolationLevel IsolationFor(Mode m) {
  return m == Mode::kSI ? IsolationLevel::kRepeatableRead
                        : IsolationLevel::kSerializable;
}

}  // namespace pgssi::bench
