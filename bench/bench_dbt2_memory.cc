// Figure 5a reproduction: DBT-2++ throughput, in-memory configuration,
// for SSI / SSI-no-r/o-opt / S2PL normalized to SI, versus the fraction of
// read-only transactions in the mix.
//
// Paper shape: SSI ~5% below SI from CPU overhead; the read-only
// optimizations shrink the gap as the mix becomes read-heavy; S2PL falls
// further behind SI as the read-only share (and hence rw-conflict
// blocking) grows; at 100% read-only all modes converge (no lock
// conflicts, all snapshots safe).
// Also emits BENCH_dbt2_memory.json (mode/threads/ro-frac rows) for the
// perf trajectory.
#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench_common.h"
#include "workload/dbt2.h"

using namespace pgssi;
using namespace pgssi::bench;
using namespace pgssi::workload;

int main() {
  const double secs = PointSeconds(1.0);
  const int threads = 4;  // the paper's in-memory concurrency level
  const std::vector<double> ro_fracs = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  const std::vector<Mode> modes = {Mode::kSI, Mode::kSSI,
                                   Mode::kSsiNoReadOnlyOpt, Mode::kS2PL};

  std::printf("# Figure 5a: DBT-2++ (in-memory), normalized throughput vs "
              "read-only fraction\n");
  std::printf("# threads=%d, %gs per point\n", threads, secs);
  std::printf("%-10s %-20s %12s %12s %14s\n", "ro-frac", "mode", "txn/s",
              "normalized", "failure-rate");

  std::vector<BenchRow> rows_out;
  for (double f : ro_fracs) {
    double si_throughput = 0;
    for (Mode m : modes) {
      auto db = Database::Open(OptionsFor(m));
      Dbt2Config cfg;
      cfg.warehouses = 16;
      cfg.read_only_fraction = f;
      cfg.isolation = IsolationFor(m);
      Dbt2 bench(db.get(), cfg);
      Status st = bench.Load();
      if (!st.ok()) {
        std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
        return 1;
      }
      DriverResult r = RunFixedDurationClassed(
          [&](int, Random& rng, int* cls) { return bench.RunOne(rng, cls); },
          {Dbt2::kClassNames[0], Dbt2::kClassNames[1]}, threads, secs);
      if (m == Mode::kSI) si_throughput = r.Throughput();
      BenchRow row = RowFromDriver(ModeName(m), threads, r);
      row.extra = {{"ro_frac", f}};
      rows_out.push_back(row);
      AppendClassRows(ModeName(m), threads, r, &rows_out, {{"ro_frac", f}});
      std::printf("%-10.0f%% %-19s %12.0f %11.2fx %13.3f%%\n", f * 100,
                  ModeName(m), r.Throughput(),
                  si_throughput > 0 ? r.Throughput() / si_throughput : 1.0,
                  r.FailureRate() * 100);
      std::fflush(stdout);
    }
  }
  WriteBenchJson("dbt2_memory", rows_out);
  return 0;
}
