// Network front end benchmark: throughput and latency percentiles vs
// connection count, with an embedded-vs-wire A/B at each point.
//
// By default this starts an in-process net::Server (2 workers) over
// loopback and drives it with SIBENCH and DBT-2 wire clients, one
// connection per driver thread — so the 16- and 32-connection points
// run with connections at 8x and 16x the worker count, exercising the
// session-parking path rather than thread-per-connection. The embedded
// series runs the identical workload bodies in-process at the same
// concurrency, so the gap between the two series is the cost of the
// wire (framing + syscalls + scheduling), not a workload difference.
//
// With --connect=host:port the bench skips the in-process server and
// drives an externally started one (wire series only).
//
// Emits BENCH_net.json: "<workload>/{embedded,wire}" rows per
// connection count, plus per-transaction-class rows for DBT-2 in both
// modes.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench_common.h"
#include "net/client.h"
#include "net/server.h"
#include "workload/dbt2.h"
#include "workload/sibench.h"

using namespace pgssi;
using namespace pgssi::bench;
using namespace pgssi::workload;

int main(int argc, char** argv) {
  std::string connect;
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], "--connect=", 10) == 0) connect = argv[i] + 10;
  }

  const double secs = PointSeconds(1.0);
  const uint32_t workers = 2;
  const std::vector<int> conn_counts = {4, 16, 32};  // 2x, 8x, 16x workers

  std::unique_ptr<Database> db;
  std::unique_ptr<net::Server> server;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  if (connect.empty()) {
    db = Database::Open(OptionsFor(Mode::kSSI));
    net::ServerOptions so;
    so.workers = workers;
    server = std::make_unique<net::Server>(db.get(), so);
    Status st = server->Start();
    if (!st.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
      return 1;
    }
    port = server->port();
  } else {
    const size_t colon = connect.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--connect wants host:port\n");
      return 1;
    }
    host = connect.substr(0, colon);
    port = static_cast<uint16_t>(std::atoi(connect.c_str() + colon + 1));
  }
  const bool have_embedded = db != nullptr;

  std::printf("# Network front end: %s:%u, %u workers, %gs per point\n",
              host.c_str(), port, workers, secs);
  std::printf("%-24s %6s %12s %10s %10s\n", "series", "conns", "txn/s",
              "p50_us", "p99_us");
  std::vector<BenchRow> rows_out;

  auto report = [&](const std::string& series, int conns, DriverResult& r,
                    std::vector<std::pair<std::string, double>> extra) {
    extra.emplace_back("connections", conns);
    extra.emplace_back("net_workers", workers);
    extra.emplace_back("retries", static_cast<double>(r.retries));
    extra.emplace_back("overload_refusals",
                       static_cast<double>(r.overload_refusals));
    BenchRow row = RowFromDriver(series, conns, r);
    row.extra = extra;
    rows_out.push_back(row);
    AppendClassRows(series, conns, r, &rows_out, row.extra);
    std::printf("%-24s %6d %12.0f %10.0f %10.0f\n", series.c_str(), conns,
                r.Throughput(), r.latency_us.Percentile(50),
                r.latency_us.Percentile(99));
    std::fflush(stdout);
  };

  // ----- SIBENCH: 50/50 update/query mix, serializable -----
  for (int conns : conn_counts) {
    {
      net::WireDbClient wire(host, port);
      Sibench bench(&wire, 100);
      Status st = bench.Load();
      if (!st.ok()) {
        std::fprintf(stderr, "sibench wire load: %s\n", st.ToString().c_str());
        return 1;
      }
      DriverResult r = RunFixedDuration(
          [&](int, Random& rng) {
            return bench.RunMixed(rng, IsolationLevel::kSerializable);
          },
          conns, secs);
      report("sibench/wire", conns, r, {});
    }
    if (have_embedded) {
      Sibench bench(db.get(), 100);
      Status st = bench.Load();
      if (!st.ok()) {
        std::fprintf(stderr, "sibench load: %s\n", st.ToString().c_str());
        return 1;
      }
      DriverResult r = RunFixedDuration(
          [&](int, Random& rng) {
            return bench.RunMixed(rng, IsolationLevel::kSerializable);
          },
          conns, secs);
      report("sibench/embedded", conns, r, {});
    }
  }

  // ----- DBT-2: order-entry mix with per-class rows -----
  Dbt2Config cfg;
  cfg.warehouses = 8;
  cfg.read_only_fraction = 0.2;
  for (int conns : conn_counts) {
    {
      net::WireDbClient wire(host, port);
      Dbt2 bench(&wire, cfg);
      Status st = bench.Load();
      if (!st.ok()) {
        std::fprintf(stderr, "dbt2 wire load: %s\n", st.ToString().c_str());
        return 1;
      }
      DriverResult r = RunFixedDurationClassed(
          [&](int, Random& rng, int* cls) { return bench.RunOne(rng, cls); },
          {Dbt2::kClassNames[0], Dbt2::kClassNames[1]}, conns, secs);
      report("dbt2/wire", conns, r, {{"ro_frac", cfg.read_only_fraction}});
    }
    if (have_embedded) {
      Dbt2 bench(db.get(), cfg);
      Status st = bench.Load();
      if (!st.ok()) {
        std::fprintf(stderr, "dbt2 load: %s\n", st.ToString().c_str());
        return 1;
      }
      DriverResult r = RunFixedDurationClassed(
          [&](int, Random& rng, int* cls) { return bench.RunOne(rng, cls); },
          {Dbt2::kClassNames[0], Dbt2::kClassNames[1]}, conns, secs);
      report("dbt2/embedded", conns, r, {{"ro_frac", cfg.read_only_fraction}});
    }
  }

  if (server) {
    const net::Server::Stats s = server->stats();
    std::printf("# server: accepted=%llu refused=%llu ops=%llu "
                "would_blocks=%llu read_pauses=%llu write_pauses=%llu\n",
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.refused),
                static_cast<unsigned long long>(s.ops_executed),
                static_cast<unsigned long long>(s.would_blocks),
                static_cast<unsigned long long>(s.read_pauses),
                static_cast<unsigned long long>(s.write_pauses));
    server->Stop();
    server.reset();
  }

  // ----- Degradation: undersized admission under retrying clients -----
  // A fresh server capped well below the offered connection count, so a
  // fraction of Begins bounce off admission control with kOverloaded.
  // Clients honor the retry-after hint and back off; the row shows what
  // throughput survives plus how many refusals/retries it cost.
  if (have_embedded) {
    const int offered = 16;
    net::ServerOptions so;
    so.workers = workers;
    so.max_sessions = 6;  // driver threads churn conns against this cap
    net::Server small(db.get(), so);
    Status st = small.Start();
    if (!st.ok()) {
      std::fprintf(stderr, "undersized server start failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    net::WireDbClient wire(host, small.port());
    Sibench bench(&wire, 100);
    st = bench.Load();
    if (!st.ok()) {
      std::fprintf(stderr, "sibench degraded load: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    RetryPolicy retry;
    retry.max_attempts = 8;
    retry.retry_io_errors = true;  // refused conns surface as IOError too
    // Churn happens naturally: refused threads lose their connection,
    // back off, and re-dial, so admission keeps being exercised for the
    // whole window rather than the first max_sessions winners holding
    // their slots forever.
    DriverResult r = RunFixedDurationClassed(
        [&](int, Random& rng, int* cls) {
          *cls = -1;
          return bench.RunMixed(rng, IsolationLevel::kSerializable);
        },
        {}, offered, secs, retry);
    report("sibench/wire_undersized", offered, r,
           {{"max_sessions", static_cast<double>(so.max_sessions)},
            {"begin_refusals", static_cast<double>(wire.overload_refusals())},
            {"reconnects", static_cast<double>(wire.reconnects())}});
    const net::Server::Stats s = small.stats();
    std::printf("# undersized server: accepted=%llu refused=%llu\n",
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.refused));
    small.Stop();
  }
  WriteBenchJson("net", rows_out);
  return 0;
}
