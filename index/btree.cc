#include "index/btree.h"

#include <algorithm>
#include <cassert>

namespace pgssi {

struct BTree::Node {
  bool leaf;
  Inner* parent = nullptr;
  explicit Node(bool l) : leaf(l) {}
};

struct BTree::Leaf : Node {
  Leaf() : Node(true) {}
  PageId page_id = 0;
  uint32_t next_slot = 0;
  std::vector<std::string> keys;  // sorted
  std::vector<TupleId> tids;
  std::vector<uint32_t> slots;
  Leaf* next = nullptr;
};

struct BTree::Inner : Node {
  Inner() : Node(false) {}
  // children.size() == keys.size() + 1; child[i] holds keys < keys[i],
  // child[i+1] holds keys >= keys[i].
  std::vector<std::string> keys;
  std::vector<Node*> children;
};

BTree::BTree(uint32_t fanout) : fanout_(fanout < 4 ? 4 : fanout) {
  Leaf* l = new Leaf();
  l->page_id = next_page_id_++;
  root_ = l;
}

BTree::~BTree() { FreeNode(root_); }

void BTree::FreeNode(Node* n) {
  if (!n->leaf) {
    Inner* in = static_cast<Inner*>(n);
    for (Node* c : in->children) FreeNode(c);
  }
  if (n->leaf)
    delete static_cast<Leaf*>(n);
  else
    delete static_cast<Inner*>(n);
}

BTree::Leaf* BTree::FindLeaf(const std::string& key) const {
  Node* n = root_;
  while (!n->leaf) {
    Inner* in = static_cast<Inner*>(n);
    size_t i = static_cast<size_t>(
        std::upper_bound(in->keys.begin(), in->keys.end(), key) -
        in->keys.begin());
    n = in->children[i];
  }
  return static_cast<Leaf*>(n);
}

bool BTree::Lookup(const std::string& key, TupleId* tid, PageId* page,
                   uint32_t* slot) const {
  Leaf* l = FindLeaf(key);
  auto it = std::lower_bound(l->keys.begin(), l->keys.end(), key);
  if (it == l->keys.end() || *it != key) return false;
  size_t i = static_cast<size_t>(it - l->keys.begin());
  if (tid) *tid = l->tids[i];
  if (page) *page = l->page_id;
  if (slot) *slot = l->slots[i];
  return true;
}

PageId BTree::PageFor(const std::string& key) const {
  return FindLeaf(key)->page_id;
}

void BTree::ProbePages(const std::string& key,
                       std::vector<PageId>* pages) const {
  Leaf* l = FindLeaf(key);
  while (l) {
    pages->push_back(l->page_id);
    // The first leaf holding an entry greater than `key` bounds the gap
    // on the right; nothing past it can cover this insert.
    if (std::upper_bound(l->keys.begin(), l->keys.end(), key) !=
        l->keys.end()) {
      return;
    }
    l = l->next;
  }
}

bool BTree::Erase(const std::string& key) {
  Leaf* l = FindLeaf(key);
  auto it = std::lower_bound(l->keys.begin(), l->keys.end(), key);
  if (it == l->keys.end() || *it != key) return false;
  size_t i = static_cast<size_t>(it - l->keys.begin());
  l->keys.erase(l->keys.begin() + static_cast<long>(i));
  l->tids.erase(l->tids.begin() + static_cast<long>(i));
  l->slots.erase(l->slots.begin() + static_cast<long>(i));
  size_--;
  // Underfull (even empty) leaves are fine: FindLeaf still routes through
  // them, scans and NextKey skip them via the leaf chain, and keeping the
  // page alive keeps every survivor's (page, slot) granule valid.
  return true;
}

bool BTree::Insert(const std::string& key, TupleId tid, PageId* page,
                   uint32_t* slot) {
  Leaf* l = FindLeaf(key);
  auto it = std::lower_bound(l->keys.begin(), l->keys.end(), key);
  size_t i = static_cast<size_t>(it - l->keys.begin());
  if (it != l->keys.end() && *it == key) {
    if (page) *page = l->page_id;
    if (slot) *slot = l->slots[i];
    return false;
  }
  uint32_t s = l->next_slot++;
  l->keys.insert(l->keys.begin() + static_cast<long>(i), key);
  l->tids.insert(l->tids.begin() + static_cast<long>(i), tid);
  l->slots.insert(l->slots.begin() + static_cast<long>(i), s);
  size_++;
  if (page) *page = l->page_id;
  if (slot) *slot = s;

  if (l->keys.size() > fanout_) {
    // Split: upper half moves to a fresh page; slot numbers travel with
    // their entries, and the lock manager is told so predicate locks on
    // moved granules keep covering them (Section 5.2.2).
    size_t mid = l->keys.size() / 2;
    Leaf* r = new Leaf();
    r->page_id = next_page_id_++;
    leaf_count_++;
    r->keys.assign(l->keys.begin() + static_cast<long>(mid), l->keys.end());
    r->tids.assign(l->tids.begin() + static_cast<long>(mid), l->tids.end());
    r->slots.assign(l->slots.begin() + static_cast<long>(mid), l->slots.end());
    l->keys.resize(mid);
    l->tids.resize(mid);
    l->slots.resize(mid);
    r->next_slot = l->next_slot;
    r->next = l->next;
    l->next = r;
    // Was the entry we just inserted one of the movers? Report its new home.
    if (key >= r->keys.front()) {
      if (page) *page = r->page_id;
    }
    if (split_listener_) split_listener_(l->page_id, r->page_id, r->slots);
    InsertIntoParent(l, r->keys.front(), r);
  }
  return true;
}

void BTree::InsertIntoParent(Node* left, const std::string& sep, Node* right) {
  if (left == root_) {
    Inner* nr = new Inner();
    nr->keys.push_back(sep);
    nr->children.push_back(left);
    nr->children.push_back(right);
    left->parent = nr;
    right->parent = nr;
    root_ = nr;
    return;
  }
  Inner* p = left->parent;
  auto it = std::upper_bound(p->keys.begin(), p->keys.end(), sep);
  size_t i = static_cast<size_t>(it - p->keys.begin());
  p->keys.insert(p->keys.begin() + static_cast<long>(i), sep);
  p->children.insert(p->children.begin() + static_cast<long>(i) + 1, right);
  right->parent = p;

  if (p->keys.size() > fanout_) {
    size_t mid = p->keys.size() / 2;
    Inner* r = new Inner();
    std::string up = p->keys[mid];
    r->keys.assign(p->keys.begin() + static_cast<long>(mid) + 1, p->keys.end());
    r->children.assign(p->children.begin() + static_cast<long>(mid) + 1,
                       p->children.end());
    for (Node* c : r->children) c->parent = r;
    p->keys.resize(mid);
    p->children.resize(mid + 1);
    InsertIntoParent(p, up, r);
  }
}

void BTree::Scan(const std::string& lo, const std::string& hi,
                 const std::function<bool(const std::string&, TupleId, PageId,
                                          uint32_t)>& fn) const {
  Leaf* l = FindLeaf(lo);
  size_t i = static_cast<size_t>(
      std::lower_bound(l->keys.begin(), l->keys.end(), lo) - l->keys.begin());
  while (l) {
    for (; i < l->keys.size(); i++) {
      if (l->keys[i] > hi) return;
      if (!fn(l->keys[i], l->tids[i], l->page_id, l->slots[i])) return;
    }
    l = l->next;
    i = 0;
  }
}

bool BTree::NextKey(const std::string& key, std::string* next, TupleId* tid,
                    PageId* page, uint32_t* slot) const {
  Leaf* l = FindLeaf(key);
  size_t i = static_cast<size_t>(
      std::upper_bound(l->keys.begin(), l->keys.end(), key) - l->keys.begin());
  while (l && i >= l->keys.size()) {
    l = l->next;
    i = 0;
  }
  if (!l) return false;
  if (next) *next = l->keys[i];
  if (tid) *tid = l->tids[i];
  if (page) *page = l->page_id;
  if (slot) *slot = l->slots[i];
  return true;
}

}  // namespace pgssi
