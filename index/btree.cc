#include "index/btree.h"

#include <algorithm>
#include <cassert>
#include <thread>

namespace pgssi {

// An index entry. Immutable once published into a leaf's entry array;
// retired (never freed) on erase so latch-free readers can always
// dereference a pointer they loaded from a slot.
struct BTree::Entry {
  std::string key;
  TupleId tid;
  uint32_t slot;
};

struct BTree::Node {
  // Bit 0 = write-locked; upper bits count modifications. A reader
  // validates by re-loading and comparing the full word, so both a held
  // lock and a completed modification invalidate.
  std::atomic<uint64_t> version{0};
  const bool leaf;
  Inner* parent = nullptr;  // maintained and read only under structure_mu_
  // Position in all_nodes_ (registry_mu_), so epoch-mode retirement can
  // unlink a node in O(1).
  size_t registry_idx = 0;
  explicit Node(bool l) : leaf(l) {}
};

struct BTree::Leaf : Node {
  explicit Leaf(uint32_t cap)
      : Node(true), entries(new std::atomic<Entry*>[cap]) {
    for (uint32_t i = 0; i < cap; i++) {
      entries[i].store(nullptr, std::memory_order_relaxed);
    }
  }
  std::atomic<PageId> page_id{0};
  std::atomic<uint32_t> count{0};
  std::unique_ptr<std::atomic<Entry*>[]> entries;  // sorted [0, count)
  std::atomic<Leaf*> next{nullptr};
  // Unlinked from the chain (awaiting reuse by a future split). Set and
  // cleared under this leaf's write lock + structure_mu_.
  std::atomic<bool> dead{false};
  // Next slot number to hand out; slot numbers are never reused within
  // one page lifetime. Written only under this leaf's write lock.
  uint32_t next_slot = 0;
};

struct BTree::Inner : Node {
  explicit Inner(uint32_t key_cap)
      : Node(false),
        keys(new std::atomic<Entry*>[key_cap]),
        children(new std::atomic<Node*>[key_cap + 1]) {
    for (uint32_t i = 0; i < key_cap; i++) {
      keys[i].store(nullptr, std::memory_order_relaxed);
      children[i].store(nullptr, std::memory_order_relaxed);
    }
    children[key_cap].store(nullptr, std::memory_order_relaxed);
  }
  std::atomic<uint32_t> count{0};  // separator keys; children = count + 1
  std::unique_ptr<std::atomic<Entry*>[]> keys;
  std::unique_ptr<std::atomic<Node*>[]> children;
};

// ---------------------------------------------------------------------------
// Version-word protocol
// ---------------------------------------------------------------------------

uint64_t BTree::AwaitStable(const Node* n) {
  uint64_t v = n->version.load(std::memory_order_acquire);
  int spins = 0;
  while (v & 1) {
    if (++spins > 128) {
      std::this_thread::yield();
      spins = 0;
    }
    v = n->version.load(std::memory_order_acquire);
  }
  return v;
}

bool BTree::NodeValid(const Node* n, uint64_t v) {
  return n->version.load(std::memory_order_acquire) == v;
}

bool BTree::TryLockFrom(Node* n, uint64_t v) {
  return n->version.compare_exchange_strong(
      v, v + 1, std::memory_order_acq_rel, std::memory_order_acquire);
}

uint64_t BTree::LockNode(Node* n) {
  for (;;) {
    uint64_t v = AwaitStable(n);
    if (TryLockFrom(n, v)) return v;
  }
}

void BTree::UnlockBump(Node* n) {
  // odd (locked) -> next even value: releases the lock AND invalidates
  // every outstanding optimistic read of this node.
  n->version.fetch_add(1, std::memory_order_release);
}

void BTree::UnlockUnchanged(Node* n, uint64_t pre_lock_version) {
  // The critical section modified nothing: restore the pre-lock value so
  // concurrent optimistic reads stay valid (no spurious restarts).
  n->version.store(pre_lock_version, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Construction / destruction
// ---------------------------------------------------------------------------

BTree::BTree(uint32_t fanout, util::EpochManager* epoch)
    : fanout_(fanout < 4 ? 4 : fanout),
      leaf_cap_(fanout_ + 1),
      inner_cap_(fanout_ + 1),
      epoch_(epoch) {
  Leaf* l = new Leaf(leaf_cap_);
  l->page_id.store(next_page_id_.fetch_add(1, std::memory_order_relaxed),
                   std::memory_order_relaxed);
  RegisterNode(l);
  root_.store(l, std::memory_order_release);
}

BTree::~BTree() {
  // Entries are uniquely owned either by a live slot ([0, count) of some
  // node — split leftovers beyond count are stale duplicates) or by the
  // retired list.
  for (Node* n : all_nodes_) {
    if (n->leaf) {
      Leaf* l = static_cast<Leaf*>(n);
      uint32_t c = l->count.load(std::memory_order_relaxed);
      for (uint32_t i = 0; i < c && i < leaf_cap_; i++) {
        delete l->entries[i].load(std::memory_order_relaxed);
      }
    } else {
      Inner* in = static_cast<Inner*>(n);
      uint32_t c = in->count.load(std::memory_order_relaxed);
      for (uint32_t i = 0; i < c && i < inner_cap_; i++) {
        delete in->keys[i].load(std::memory_order_relaxed);
      }
    }
  }
  for (Entry* e : retired_entries_) delete e;
  for (Node* n : all_nodes_) {
    if (n->leaf) {
      delete static_cast<Leaf*>(n);
    } else {
      delete static_cast<Inner*>(n);
    }
  }
}

void BTree::RegisterNode(Node* n) {
  std::lock_guard<SpinLock> l(registry_mu_);
  n->registry_idx = all_nodes_.size();
  all_nodes_.push_back(n);
}

void BTree::UnregisterNode(Node* n) {
  std::lock_guard<SpinLock> l(registry_mu_);
  const size_t i = n->registry_idx;
  Node* moved = all_nodes_.back();
  all_nodes_[i] = moved;
  moved->registry_idx = i;
  all_nodes_.pop_back();
}

void BTree::FreeEntryFn(void* p) { delete static_cast<Entry*>(p); }
void BTree::FreeLeafFn(void* p) { delete static_cast<Leaf*>(p); }
void BTree::FreeInnerFn(void* p) { delete static_cast<Inner*>(p); }

void BTree::RetireEntry(Entry* e) {
  if (epoch_ != nullptr) {
    // Unlinked from its slot already; a pinned reader holding a stale
    // pointer stays safe until the grace period passes, then the entry
    // is freed for real.
    epoch_->Retire(e, FreeEntryFn);
    return;
  }
  std::lock_guard<SpinLock> l(registry_mu_);
  retired_entries_.push_back(e);
}

void BTree::RetireNode(Node* n) {
  UnregisterNode(n);
  if (n->leaf) {
    epoch_->Retire(n, FreeLeafFn);
  } else {
    epoch_->Retire(n, FreeInnerFn);
  }
}

size_t BTree::RetiredObjectCount() const {
  size_t n;
  {
    std::lock_guard<SpinLock> l(registry_mu_);
    n = retired_entries_.size();
  }
  std::lock_guard<std::mutex> sg(structure_mu_);
  return n + free_leaves_.size();
}

// ---------------------------------------------------------------------------
// Optimistic descent + reads
// ---------------------------------------------------------------------------

BTree::Leaf* BTree::DescendToLeaf(const std::string& key,
                                  uint64_t* version) const {
restart:
  Node* n = root_.load(std::memory_order_acquire);
  uint64_t v = AwaitStable(n);
  // The root has no parent to validate against, so close the window where
  // we loaded the old root, waited out its split, and resumed with a
  // *post-split* stable version of a node that no longer covers the full
  // key space. The new root is published before the old one unlocks, so
  // re-checking the pointer after AwaitStable suffices; if the root later
  // moves off n, that always bumps n and downstream validation catches it.
  if (n != root_.load(std::memory_order_acquire)) goto restart;
  while (!n->leaf) {
    const Inner* in = static_cast<const Inner*>(n);
    uint32_t cnt = in->count.load(std::memory_order_acquire);
    if (cnt > inner_cap_) goto restart;  // torn
    uint32_t i = 0;
    while (i < cnt) {
      Entry* e = in->keys[i].load(std::memory_order_acquire);
      if (e == nullptr) break;  // torn; validation below catches it
      if (key < e->key) break;  // child i holds keys < keys[i]
      ++i;
    }
    Node* child = in->children[i].load(std::memory_order_acquire);
    if (child == nullptr || !NodeValid(n, v)) goto restart;
    // Read the child's version BEFORE validating the parent once more:
    // a child split updates the parent before the child unlocks, so a
    // stable child version + valid parent proves the route is current.
    uint64_t cv = AwaitStable(child);
    if (!NodeValid(n, v)) goto restart;
    n = child;
    v = cv;
  }
  *version = v;
  return static_cast<Leaf*>(n);
}

namespace {
// First index in [0, cnt) with arr[idx]->key >= key; `cnt` must be
// pre-clamped to capacity. Safe on a concurrently mutated leaf: a torn
// view (null slot, shifted duplicates) yields a garbage index that the
// caller's version validation rejects; it never dereferences an invalid
// pointer (entries are type-stable).
template <typename EntryT>
uint32_t LowerBound(std::atomic<EntryT*>* arr, uint32_t cnt,
                    const std::string& key) {
  uint32_t lo = 0, hi = cnt;
  while (lo < hi) {
    uint32_t mid = (lo + hi) / 2;
    EntryT* e = arr[mid].load(std::memory_order_acquire);
    if (e != nullptr && e->key < key) {
      lo = mid + 1;
    } else {
      hi = mid;  // null (torn) sorts high; validation rejects the view
    }
  }
  return lo;
}
}  // namespace

bool BTree::Lookup(const std::string& key, TupleId* tid, PageId* page,
                   uint32_t* slot, ReadView* rv) const {
  for (;;) {
    uint64_t v;
    Leaf* l = DescendToLeaf(key, &v);
    uint32_t cnt = std::min(l->count.load(std::memory_order_acquire), leaf_cap_);
    uint32_t i = LowerBound(l->entries.get(), cnt, key);
    bool found = false;
    TupleId t = 0;
    PageId pg = l->page_id.load(std::memory_order_acquire);
    uint32_t s = 0;
    if (i < cnt) {
      Entry* e = l->entries[i].load(std::memory_order_acquire);
      if (e != nullptr && e->key == key) {
        found = true;
        t = e->tid;
        s = e->slot;
      }
    }
    if (!NodeValid(l, v)) continue;
    if (rv) {
      rv->clear();
      rv->nodes.emplace_back(l, v);
    }
    if (found) {
      if (tid) *tid = t;
      if (page) *page = pg;
      if (slot) *slot = s;
    }
    return found;
  }
}

PageId BTree::PageFor(const std::string& key, ReadView* rv) const {
  for (;;) {
    uint64_t v;
    Leaf* l = DescendToLeaf(key, &v);
    PageId pg = l->page_id.load(std::memory_order_acquire);
    if (!NodeValid(l, v)) continue;
    if (rv) {
      rv->clear();
      rv->nodes.emplace_back(l, v);
    }
    return pg;
  }
}

bool BTree::Validate(const ReadView& rv) const {
  for (const auto& [n, v] : rv.nodes) {
    if (!NodeValid(static_cast<const Node*>(n), v)) return false;
  }
  return true;
}

bool BTree::ScanLeaf(const std::string& lo, const std::string& hi,
                     LeafBatch* out, ReadView* rv) const {
restart:
  out->clear();
  if (rv) rv->clear();
  uint64_t v;
  Leaf* l = DescendToLeaf(lo, &v);
  for (;;) {
    out->clear();
    uint32_t cnt = std::min(l->count.load(std::memory_order_acquire), leaf_cap_);
    bool past_hi = false;
    bool torn = false;
    for (uint32_t i = 0; i < cnt; i++) {
      Entry* e = l->entries[i].load(std::memory_order_acquire);
      if (e == nullptr) {
        torn = true;
        break;
      }
      if (e->key < lo) continue;
      if (e->key > hi) {
        past_hi = true;
        break;
      }
      out->keys.push_back(e->key);
      out->tids.push_back(e->tid);
      out->slots.push_back(e->slot);
    }
    Leaf* nxt = l->next.load(std::memory_order_acquire);
    PageId pg = l->page_id.load(std::memory_order_acquire);
    if (torn || !NodeValid(l, v)) goto restart;
    if (rv) rv->nodes.emplace_back(l, v);
    out->page = pg;
    if (!out->keys.empty()) return true;
    if (past_hi || nxt == nullptr) return false;
    // Empty in-range leaf: hop. Revalidating l after reading the next
    // leaf's version proves the hop target was still linked (an unlink
    // locks and bumps the predecessor), so a recycled-and-reborn leaf
    // can never be mistaken for the successor.
    uint64_t nv = AwaitStable(nxt);
    if (!NodeValid(l, v)) goto restart;
    l = nxt;
    v = nv;
  }
}

void BTree::Scan(const std::string& lo, const std::string& hi,
                 const std::function<bool(const std::string&, TupleId, PageId,
                                          uint32_t)>& fn) const {
  std::string cur = lo;
  LeafBatch b;
  for (;;) {
    bool more = ScanLeaf(cur, hi, &b, nullptr);
    for (size_t i = 0; i < b.keys.size(); i++) {
      if (!fn(b.keys[i], b.tids[i], b.page, b.slots[i])) return;
    }
    if (!more || b.keys.empty()) return;
    cur = b.keys.back() + '\0';  // immediate successor in byte order
  }
}

bool BTree::NextKey(const std::string& key, std::string* next, TupleId* tid,
                    PageId* page, uint32_t* slot, ReadView* rv) const {
restart:
  if (rv) rv->clear();
  {
    uint64_t v;
    Leaf* l = DescendToLeaf(key, &v);
    for (;;) {
      uint32_t cnt = std::min(l->count.load(std::memory_order_acquire), leaf_cap_);
      // First entry strictly greater than key.
      uint32_t i = LowerBound(l->entries.get(), cnt, key);
      Entry* e = nullptr;
      if (i < cnt) {
        e = l->entries[i].load(std::memory_order_acquire);
        if (e != nullptr && e->key == key) {
          e = (i + 1 < cnt) ? l->entries[i + 1].load(std::memory_order_acquire)
                            : nullptr;
        }
      }
      if (e != nullptr) {
        std::string k = e->key;
        TupleId t = e->tid;
        uint32_t s = e->slot;
        PageId pg = l->page_id.load(std::memory_order_acquire);
        if (!NodeValid(l, v)) goto restart;
        if (rv) rv->nodes.emplace_back(l, v);
        if (next) *next = std::move(k);
        if (tid) *tid = t;
        if (page) *page = pg;
        if (slot) *slot = s;
        return true;
      }
      Leaf* nxt = l->next.load(std::memory_order_acquire);
      if (!NodeValid(l, v)) goto restart;
      if (rv) rv->nodes.emplace_back(l, v);
      if (nxt == nullptr) return false;
      uint64_t nv = AwaitStable(nxt);
      if (!NodeValid(l, v)) goto restart;
      l = nxt;
      v = nv;
    }
  }
}

// ---------------------------------------------------------------------------
// Leaf editing (write lock held)
// ---------------------------------------------------------------------------

void BTree::LeafInsertAt(Leaf* l, uint32_t pos, Entry* e) {
  uint32_t cnt = l->count.load(std::memory_order_relaxed);
  for (uint32_t j = cnt; j > pos; j--) {
    l->entries[j].store(l->entries[j - 1].load(std::memory_order_relaxed),
                        std::memory_order_release);
  }
  l->entries[pos].store(e, std::memory_order_release);
  l->count.store(cnt + 1, std::memory_order_release);
}

void BTree::LeafEraseAt(Leaf* l, uint32_t pos) {
  uint32_t cnt = l->count.load(std::memory_order_relaxed);
  for (uint32_t j = pos; j + 1 < cnt; j++) {
    l->entries[j].store(l->entries[j + 1].load(std::memory_order_relaxed),
                        std::memory_order_release);
  }
  l->count.store(cnt - 1, std::memory_order_release);
}

void BTree::UnlockAllUnchanged(const std::vector<Leaf*>& locked,
                               const std::vector<uint64_t>& pre_versions) {
  for (size_t i = locked.size(); i > 0; i--) {
    UnlockUnchanged(locked[i - 1], pre_versions[i - 1]);
  }
}

// ---------------------------------------------------------------------------
// Insert
// ---------------------------------------------------------------------------

bool BTree::Insert(const std::string& key, TupleId tid, PageId* page,
                   uint32_t* slot) {
  return InsertGuarded(key, tid, page, slot, {}) == InsertResult::kInserted;
}

namespace {
enum class Attempt { kDone, kNeedSplit, kRetry };
}  // namespace

BTree::InsertResult BTree::InsertGuarded(const std::string& key, TupleId tid,
                                         PageId* page, uint32_t* slot,
                                         const InsertHooks& hooks) {
  auto attempt = [&](Leaf* l, uint64_t lv, bool may_split,
                     InsertResult* out) -> Attempt {
    uint32_t cnt = l->count.load(std::memory_order_relaxed);
    uint32_t pos = LowerBound(l->entries.get(), cnt, key);
    if (pos < cnt) {
      Entry* e = l->entries[pos].load(std::memory_order_relaxed);
      if (e->key == key) {
        if (page) *page = l->page_id.load(std::memory_order_relaxed);
        if (slot) *slot = e->slot;
        UnlockUnchanged(l, lv);
        *out = InsertResult::kExists;
        return Attempt::kDone;
      }
    }

    // Lock the whole gap span: every leaf from the landing leaf through
    // the one holding the key's successor (chain order — deadlock-free).
    // This serializes inserts into the same gap and pins the granules
    // the gap probe and post-insert transfer touch.
    std::vector<Leaf*> locked{l};
    std::vector<uint64_t> prevs{lv};
    bool has_next = false;
    PageId next_page = 0;
    uint32_t next_slot_no = 0;
    if (pos < cnt) {
      Entry* se = l->entries[pos].load(std::memory_order_relaxed);
      has_next = true;
      next_page = l->page_id.load(std::memory_order_relaxed);
      next_slot_no = se->slot;
    } else {
      Leaf* last = l;
      for (;;) {
        Leaf* nxt = last->next.load(std::memory_order_relaxed);
        if (nxt == nullptr) break;
        uint64_t pre = LockNode(nxt);
        locked.push_back(nxt);
        prevs.push_back(pre);
        last = nxt;
        uint32_t lcnt = last->count.load(std::memory_order_relaxed);
        if (lcnt > 0) {
          Entry* se = last->entries[0].load(std::memory_order_relaxed);
          has_next = true;
          next_page = last->page_id.load(std::memory_order_relaxed);
          next_slot_no = se->slot;
          break;
        }
      }
    }

    // Test-only forced restart: exercises the release-and-retry path
    // (probe already ran; no allocation or transfer must have happened).
    if (test_force_restarts_.load(std::memory_order_relaxed) > 0 &&
        test_force_restarts_.fetch_sub(1, std::memory_order_acq_rel) > 0) {
      if (hooks.probe) {
        std::vector<PageId> pages;
        for (Leaf* lf : locked) {
          pages.push_back(lf->page_id.load(std::memory_order_relaxed));
        }
        (void)hooks.probe(pages, has_next, next_page, next_slot_no);
      }
      UnlockAllUnchanged(locked, prevs);
      return Attempt::kRetry;
    }

    if (hooks.probe) {
      std::vector<PageId> pages;
      for (Leaf* lf : locked) {
        pages.push_back(lf->page_id.load(std::memory_order_relaxed));
      }
      if (!hooks.probe(pages, has_next, next_page, next_slot_no)) {
        UnlockAllUnchanged(locked, prevs);
        *out = InsertResult::kAborted;
        return Attempt::kDone;
      }
    }

    if (cnt + 1 > fanout_ && !may_split) {
      UnlockAllUnchanged(locked, prevs);
      return Attempt::kNeedSplit;
    }

    Entry* e = new Entry{key, tid, l->next_slot++};
    LeafInsertAt(l, pos, e);
    size_.fetch_add(1, std::memory_order_release);
    PageId landing = l->page_id.load(std::memory_order_relaxed);
    Leaf* right = nullptr;
    if (cnt + 1 > fanout_) {
      // Split (structure_mu_ held by the caller): the successor entry may
      // move to the new right leaf, so recapture its coordinates.
      Entry* succ = nullptr;
      if (has_next && locked.size() == 1) {
        succ = l->entries[pos + 1].load(std::memory_order_relaxed);
      }
      SplitAndInsert(l, pos, &landing, &right);
      if (succ != nullptr) {
        next_page = l->page_id.load(std::memory_order_relaxed);
        uint32_t lcnt = l->count.load(std::memory_order_relaxed);
        bool in_left = false;
        for (uint32_t i = 0; i < lcnt; i++) {
          if (l->entries[i].load(std::memory_order_relaxed) == succ) {
            in_left = true;
            break;
          }
        }
        if (!in_left) next_page = right->page_id.load(std::memory_order_relaxed);
      }
    }
    if (page) *page = landing;
    if (slot) *slot = e->slot;
    if (hooks.transfer && has_next) {
      hooks.transfer(next_page, next_slot_no, landing, e->slot);
    }
    if (right != nullptr) UnlockBump(right);
    UnlockBump(l);
    for (size_t i = 1; i < locked.size(); i++) {
      UnlockUnchanged(locked[i], prevs[i]);
    }
    *out = InsertResult::kInserted;
    return Attempt::kDone;
  };

  for (;;) {
    uint64_t v;
    Leaf* l = DescendToLeaf(key, &v);
    if (!TryLockFrom(l, v)) continue;
    if (l->dead.load(std::memory_order_relaxed)) {
      UnlockUnchanged(l, v);
      continue;
    }
    InsertResult out;
    Attempt a = attempt(l, v, /*may_split=*/false, &out);
    if (a == Attempt::kDone) return out;
    if (a == Attempt::kRetry) continue;
    // Full leaf: retry pessimistically under the structure lock (lock
    // order: structure_mu_ strictly before leaf locks).
    std::lock_guard<std::mutex> sg(structure_mu_);
    for (;;) {
      uint64_t v2;
      Leaf* l2 = DescendToLeaf(key, &v2);
      if (!TryLockFrom(l2, v2)) continue;
      if (l2->dead.load(std::memory_order_relaxed)) {
        UnlockUnchanged(l2, v2);
        continue;
      }
      Attempt a2 = attempt(l2, v2, /*may_split=*/true, &out);
      if (a2 == Attempt::kDone) return out;
      // kRetry (test hook) — loop again under the structure lock.
    }
  }
}

BTree::Leaf* BTree::AllocLeafLocked() {
  Leaf* r;
  if (!free_leaves_.empty()) {
    r = free_leaves_.back();
    free_leaves_.pop_back();
    LockNode(r);
    r->dead.store(false, std::memory_order_release);
    r->count.store(0, std::memory_order_release);
    r->next.store(nullptr, std::memory_order_release);
    r->next_slot = 0;
  } else {
    r = new Leaf(leaf_cap_);
    RegisterNode(r);
    LockNode(r);
  }
  // A fresh PageId per lifetime: granules of the previous incarnation
  // can never alias the new one.
  r->page_id.store(next_page_id_.fetch_add(1, std::memory_order_relaxed),
                   std::memory_order_release);
  return r;
}

void BTree::SplitAndInsert(Leaf* l, uint32_t pos, PageId* out_page,
                           Leaf** right_out) {
  uint32_t cnt = l->count.load(std::memory_order_relaxed);  // fanout_ + 1
  uint32_t mid = cnt / 2;
  Leaf* r = AllocLeafLocked();
  for (uint32_t i = mid; i < cnt; i++) {
    r->entries[i - mid].store(l->entries[i].load(std::memory_order_relaxed),
                              std::memory_order_release);
  }
  r->count.store(cnt - mid, std::memory_order_release);
  r->next_slot = l->next_slot;
  r->next.store(l->next.load(std::memory_order_relaxed),
                std::memory_order_release);
  l->count.store(mid, std::memory_order_release);
  l->next.store(r, std::memory_order_release);
  leaf_count_.fetch_add(1, std::memory_order_release);

  *out_page = (pos >= mid) ? r->page_id.load(std::memory_order_relaxed)
                           : l->page_id.load(std::memory_order_relaxed);

  if (split_listener_) {
    std::vector<uint32_t> moved;
    uint32_t rcnt = cnt - mid;
    moved.reserve(rcnt);
    for (uint32_t i = 0; i < rcnt; i++) {
      moved.push_back(r->entries[i].load(std::memory_order_relaxed)->slot);
    }
    split_listener_(l->page_id.load(std::memory_order_relaxed),
                    r->page_id.load(std::memory_order_relaxed), moved);
  }

  Entry* sep =
      new Entry{r->entries[0].load(std::memory_order_relaxed)->key, 0, 0};
  InsertIntoParent(l, sep, r);
  *right_out = r;
}

void BTree::InsertIntoParent(Node* left, Entry* sep, Node* right) {
  if (left == root_.load(std::memory_order_relaxed)) {
    Inner* nr = new Inner(inner_cap_);
    RegisterNode(nr);
    nr->keys[0].store(sep, std::memory_order_relaxed);
    nr->children[0].store(left, std::memory_order_relaxed);
    nr->children[1].store(right, std::memory_order_relaxed);
    nr->count.store(1, std::memory_order_relaxed);
    left->parent = nr;
    right->parent = nr;
    root_.store(nr, std::memory_order_release);
    return;
  }
  Inner* p = left->parent;
  LockNode(p);
  uint32_t cnt = p->count.load(std::memory_order_relaxed);
  uint32_t i = 0;
  while (i < cnt &&
         !(sep->key < p->keys[i].load(std::memory_order_relaxed)->key)) {
    i++;
  }
  for (uint32_t j = cnt; j > i; j--) {
    p->keys[j].store(p->keys[j - 1].load(std::memory_order_relaxed),
                     std::memory_order_release);
  }
  p->keys[i].store(sep, std::memory_order_release);
  for (uint32_t j = cnt + 1; j > i + 1; j--) {
    p->children[j].store(p->children[j - 1].load(std::memory_order_relaxed),
                         std::memory_order_release);
  }
  p->children[i + 1].store(right, std::memory_order_release);
  p->count.store(cnt + 1, std::memory_order_release);
  right->parent = p;

  if (cnt + 1 > fanout_) {
    uint32_t pcnt = cnt + 1;  // == fanout_ + 1 == inner_cap_
    uint32_t mid = pcnt / 2;
    Inner* r = new Inner(inner_cap_);
    RegisterNode(r);
    LockNode(r);
    Entry* up = p->keys[mid].load(std::memory_order_relaxed);
    for (uint32_t j = mid + 1; j < pcnt; j++) {
      r->keys[j - mid - 1].store(p->keys[j].load(std::memory_order_relaxed),
                                 std::memory_order_release);
    }
    for (uint32_t j = mid + 1; j <= pcnt; j++) {
      Node* c = p->children[j].load(std::memory_order_relaxed);
      r->children[j - mid - 1].store(c, std::memory_order_release);
      c->parent = r;
    }
    r->count.store(pcnt - mid - 1, std::memory_order_release);
    p->count.store(mid, std::memory_order_release);
    InsertIntoParent(p, up, r);
    UnlockBump(r);
  }
  UnlockBump(p);
}

// ---------------------------------------------------------------------------
// Erase + empty-leaf recycling
// ---------------------------------------------------------------------------

bool BTree::Erase(const std::string& key, TupleId expected_tid,
                  const EraseHooks& hooks) {
  for (;;) {
    uint64_t v;
    Leaf* l = DescendToLeaf(key, &v);
    if (!TryLockFrom(l, v)) continue;
    if (l->dead.load(std::memory_order_relaxed)) {
      UnlockUnchanged(l, v);
      continue;
    }
    uint32_t cnt = l->count.load(std::memory_order_relaxed);
    uint32_t pos = LowerBound(l->entries.get(), cnt, key);
    Entry* e = pos < cnt ? l->entries[pos].load(std::memory_order_relaxed)
                         : nullptr;
    if (e == nullptr || e->key != key || e->tid != expected_tid) {
      UnlockUnchanged(l, v);
      return false;
    }

    // Lock through the successor's leaf: the coverage transfer below and
    // any concurrent insert into the re-joined gap must serialize.
    std::vector<Leaf*> locked{l};
    std::vector<uint64_t> prevs{v};
    bool has_next = false;
    PageId next_page = 0;
    uint32_t next_slot_no = 0;
    if (pos + 1 < cnt) {
      Entry* se = l->entries[pos + 1].load(std::memory_order_relaxed);
      has_next = true;
      next_page = l->page_id.load(std::memory_order_relaxed);
      next_slot_no = se->slot;
    } else {
      Leaf* last = l;
      for (;;) {
        Leaf* nxt = last->next.load(std::memory_order_relaxed);
        if (nxt == nullptr) break;
        uint64_t pre = LockNode(nxt);
        locked.push_back(nxt);
        prevs.push_back(pre);
        last = nxt;
        uint32_t lcnt = last->count.load(std::memory_order_relaxed);
        if (lcnt > 0) {
          Entry* se = last->entries[0].load(std::memory_order_relaxed);
          has_next = true;
          next_page = last->page_id.load(std::memory_order_relaxed);
          next_slot_no = se->slot;
          break;
        }
      }
    }

    PageId erased_page = l->page_id.load(std::memory_order_relaxed);
    uint32_t erased_slot = e->slot;
    LeafEraseAt(l, pos);
    size_.fetch_sub(1, std::memory_order_release);
    RetireEntry(e);
    if (hooks.transfer) {
      hooks.transfer(erased_page, erased_slot, has_next, next_page,
                     next_slot_no);
    }
    bool now_empty = l->count.load(std::memory_order_relaxed) == 0;
    UnlockBump(l);
    for (size_t i = 1; i < locked.size(); i++) {
      UnlockUnchanged(locked[i], prevs[i]);
    }
    if (now_empty) TryRecycleLeaf(l, hooks);
    return true;
  }
}

BTree::Leaf* BTree::PrevLeafLocked(Leaf* l) const {
  Node* n = l;
  Inner* p = n->parent;
  while (p != nullptr) {
    uint32_t cnt = p->count.load(std::memory_order_relaxed);
    uint32_t i = 0;
    while (i <= cnt && p->children[i].load(std::memory_order_relaxed) != n) {
      i++;
    }
    if (i > cnt) return nullptr;  // inconsistent; skip recycling
    if (i > 0) {
      Node* c = p->children[i - 1].load(std::memory_order_relaxed);
      while (!c->leaf) {
        Inner* in = static_cast<Inner*>(c);
        c = in->children[in->count.load(std::memory_order_relaxed)].load(
            std::memory_order_relaxed);
      }
      return static_cast<Leaf*>(c);
    }
    n = p;
    p = n->parent;
  }
  return nullptr;  // l is the leftmost leaf
}

void BTree::TryRecycleLeaf(Leaf* l, const EraseHooks& hooks) {
  std::lock_guard<std::mutex> sg(structure_mu_);
  if (l->dead.load(std::memory_order_relaxed)) return;
  if (root_.load(std::memory_order_relaxed) == l) return;
  if (l->count.load(std::memory_order_acquire) != 0) return;  // refilled
  Leaf* prev = PrevLeafLocked(l);
  // The leftmost leaf is deliberately never recycled. It is the chain
  // anchor: every scan that starts below the first separator lands on
  // it, and the unlink protocol publishes an unlink by locking-and-
  // bumping the PREDECESSOR (that is how parked readers hopping the
  // chain detect it) — the head has no predecessor to publish through.
  // It is also the root's leftmost descent target, so splicing it out
  // would require re-seating children[0] along the whole left spine.
  // The cost of keeping it is one empty leaf per table, a constant; the
  // fanout-4 regression pins both properties (never recycled, bounded
  // leftover).
  if (prev == nullptr) return;
  uint64_t prev_pre = LockNode(prev);
  uint64_t l_pre = LockNode(l);
  if (l->count.load(std::memory_order_relaxed) != 0 ||
      prev->next.load(std::memory_order_relaxed) != l) {
    UnlockUnchanged(l, l_pre);
    UnlockUnchanged(prev, prev_pre);
    return;
  }
  Leaf* nxt = l->next.load(std::memory_order_relaxed);
  prev->next.store(nxt, std::memory_order_release);
  l->dead.store(true, std::memory_order_release);
  RemoveChildFromParent(l);
  leaf_count_.fetch_sub(1, std::memory_order_release);
  if (hooks.recycled) {
    hooks.recycled(l->page_id.load(std::memory_order_relaxed),
                   prev->page_id.load(std::memory_order_relaxed),
                   nxt != nullptr ? nxt->page_id.load(std::memory_order_relaxed)
                                  : 0);
  }
  UnlockBump(l);
  UnlockBump(prev);
  if (epoch_ != nullptr) {
    // Unlinked from the chain and the parent: hand it to the limbo.
    // Parked readers (pinned) may still traverse l->next until their pin
    // passes; the memory outlives them by the grace-period contract.
    RetireNode(l);
  } else {
    free_leaves_.push_back(l);
  }
}

void BTree::RemoveChildFromParent(Node* child) {
  Inner* p = child->parent;
  if (p == nullptr) return;
  LockNode(p);
  uint32_t cnt = p->count.load(std::memory_order_relaxed);
  uint32_t i = 0;
  while (i <= cnt && p->children[i].load(std::memory_order_relaxed) != child) {
    i++;
  }
  if (i > cnt || cnt == 0) {
    UnlockBump(p);
    return;
  }
  uint32_t ki = i > 0 ? i - 1 : 0;
  Entry* removed_sep = p->keys[ki].load(std::memory_order_relaxed);
  for (uint32_t j = ki; j + 1 < cnt; j++) {
    p->keys[j].store(p->keys[j + 1].load(std::memory_order_relaxed),
                     std::memory_order_release);
  }
  for (uint32_t j = i; j < cnt; j++) {
    p->children[j].store(p->children[j + 1].load(std::memory_order_relaxed),
                         std::memory_order_release);
  }
  p->count.store(cnt - 1, std::memory_order_release);
  RetireEntry(removed_sep);
  bool collapse = (cnt - 1 == 0);
  UnlockBump(p);
  if (collapse) {
    // p routes a single child: splice it out so descents stay shallow.
    Node* only = p->children[0].load(std::memory_order_relaxed);
    if (root_.load(std::memory_order_relaxed) == p) {
      only->parent = nullptr;
      root_.store(only, std::memory_order_release);
    } else {
      Inner* gp = p->parent;
      LockNode(gp);
      uint32_t gcnt = gp->count.load(std::memory_order_relaxed);
      for (uint32_t j = 0; j <= gcnt; j++) {
        if (gp->children[j].load(std::memory_order_relaxed) == p) {
          gp->children[j].store(only, std::memory_order_release);
          break;
        }
      }
      only->parent = gp;
      UnlockBump(gp);
    }
    // Invalidate parked optimistic readers inside the spliced-out node.
    p->version.fetch_add(2, std::memory_order_release);
    if (epoch_ != nullptr) {
      // p holds no keys (collapse means count hit 0) and its only child
      // was re-seated above, so nothing live is reachable through it;
      // legacy mode leaks it into all_nodes_ until destruction instead.
      RetireNode(p);
    }
  }
}

}  // namespace pgssi
