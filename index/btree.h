// In-memory key-ordered B+-tree.
//
// Leaves carry a stable PageId and per-entry slot numbers: the pair
// (page, slot) is the granule the SIREAD lock manager locks and probes.
// When a leaf splits, the tree reports which slots moved to the new page
// so the lock manager can transfer predicate locks (the Section 5.2.2
// page-split problem).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/types.h"

namespace pgssi {

class BTree {
 public:
  // Called after a leaf split, while the caller still holds whatever latch
  // serializes index writes: SIREAD locks on (old_page, slot) for each
  // moved slot must be transferred to (new_page, slot) — slot numbers
  // travel with their entries — and page locks on old_page must also
  // cover new_page.
  //
  // Reentrancy contract: the listener fires from inside Insert(), with
  // the caller's exclusive index latch held. It must not touch the tree
  // (no Lookup/Scan/Insert/Erase) and must not acquire the index latch —
  // it may only take locks that come *after* the index latch in the
  // engine's lock order (SIREAD partition locks, per-xact spinlocks).
  using SplitListener = std::function<void(
      PageId old_page, PageId new_page, const std::vector<uint32_t>& moved_slots)>;

  explicit BTree(uint32_t fanout = 64);
  ~BTree();
  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  void SetSplitListener(SplitListener fn) { split_listener_ = std::move(fn); }

  /// Inserts key -> tid. Returns false (and fills *page/*slot with the
  /// existing entry's location) if the key is already present.
  bool Insert(const std::string& key, TupleId tid, PageId* page,
              uint32_t* slot = nullptr);

  /// Returns true and fills outputs if the key exists.
  bool Lookup(const std::string& key, TupleId* tid, PageId* page,
              uint32_t* slot = nullptr) const;

  /// Removes the entry for `key`; returns false if absent. The leaf keeps
  /// its PageId and is never merged or rebalanced, and slot numbers are
  /// never reused, so granule coordinates of surviving entries — and of
  /// SIREAD locks held on the erased granule — stay stable.
  bool Erase(const std::string& key);

  /// The leaf page where `key` lives or would be inserted. Used for
  /// index-gap (phantom) locking of empty ranges and insert probes.
  PageId PageFor(const std::string& key) const;

  /// The pages a new-key insert of `key` must probe for page-granule
  /// predicate locks: the leaf `key` routes to and every following leaf
  /// up to and including the one holding `key`'s successor (to the end
  /// of the chain when no successor exists). A single page unless the
  /// gap spans a leaf boundary — in particular across leaves Erase left
  /// empty, where a reader's boundary page lock may sit on a later leaf
  /// than the one the insert lands on.
  void ProbePages(const std::string& key, std::vector<PageId>* pages) const;

  /// In-order scan of [lo, hi] (inclusive). fn returns false to stop early.
  void Scan(const std::string& lo, const std::string& hi,
            const std::function<bool(const std::string& key, TupleId tid,
                                     PageId page, uint32_t slot)>& fn) const;

  /// First entry with key strictly greater than `key` (next-key locking).
  bool NextKey(const std::string& key, std::string* next, TupleId* tid,
               PageId* page, uint32_t* slot) const;

  size_t size() const { return size_; }
  size_t LeafCount() const { return leaf_count_; }

 private:
  struct Node;
  struct Leaf;
  struct Inner;

  Leaf* FindLeaf(const std::string& key) const;
  void InsertIntoParent(Node* left, const std::string& sep, Node* right);
  void FreeNode(Node* n);

  Node* root_;
  uint32_t fanout_;
  PageId next_page_id_ = 1;
  size_t size_ = 0;
  size_t leaf_count_ = 1;
  SplitListener split_listener_;
};

}  // namespace pgssi
