// In-memory key-ordered B+-tree with optimistic lock coupling (OLC).
//
// Leaves carry a stable PageId and per-entry slot numbers: the pair
// (page, slot) is the granule the SIREAD lock manager locks and probes.
// When a leaf splits, the tree reports which slots moved to the new page
// so the lock manager can transfer predicate locks (the Section 5.2.2
// page-split problem).
//
// Concurrency design (version-stamped nodes, PostgreSQL-buffer-latch
// analogue for a main-memory tree):
//  - Every node carries an atomic version word (bit 0 = write-locked,
//    upper bits = modification counter). Readers descend LATCH-FREE:
//    read a node's version, read its contents (atomic entry slots),
//    validate the version, restart on mismatch. No reader ever blocks a
//    reader or holds a node lock.
//  - Writers lock only the touched leaf (CAS the version word). An
//    insert whose key's gap spans several leaves (erase can leave empty
//    leaves inside a gap) locks the whole span [landing leaf .. leaf of
//    the key's successor] in chain order, which serializes inserts into
//    the SAME gap while inserts into disjoint gaps run fully in
//    parallel. The SIREAD gap probe (InsertHooks::probe) runs under
//    those leaf locks, so a reader's predicate lock is either visible to
//    the probe or the reader's validation fails and it restarts.
//  - Splits (and empty-leaf recycling) additionally take structure_mu_,
//    which serializes all inner-node surgery; inner nodes are still
//    version-locked while mutated so optimistic descents validate.
//    A full leaf forces the insert to release its leaf locks and retry
//    pessimistically under structure_mu_ (lock order: structure_mu_
//    before leaf locks, leaf locks in chain order).
//  - Reclamation (EngineConfig::epoch_reclaim selects the mode by
//    whether an EpochManager is supplied). Legacy (no manager): entries
//    are retired, never freed, until the tree is destroyed (type-stable
//    memory) and fully empty leaves are unlinked from the chain and
//    recycled for future splits (with a fresh PageId) — a latch-free
//    reader can always dereference a pointer it loaded. Epoch mode:
//    erased entries, unlinked leaves, and spliced-out inner nodes are
//    handed to the grace-period limbo (util/epoch.h) and actually freed
//    once every thread has passed the epoch; callers must then hold an
//    EpochManager::Pin across any region that loads and dereferences
//    tree pointers — INCLUDING the span from a ReadView-producing call
//    to its final Validate(), which dereferences the witnessed nodes.
//    Either way a parked reader detects an unlink via the predecessor's
//    version bump.
//
// Validation protocol for SIREAD correctness (used by the database
// layer): resolve coordinates optimistically, ACQUIRE the SIREAD lock,
// then Validate() the ReadView and restart on failure. Acquiring before
// validating guarantees a concurrent insert either sees the lock in its
// under-leaf-lock probe or bumped a version the reader checks. Locks
// acquired on attempts that fail validation are conservative leftovers
// (never lost coverage).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/epoch.h"
#include "util/spinlock.h"
#include "util/types.h"

namespace pgssi {

class BTree {
 public:
  // Called after a leaf split, while the splitting insert holds
  // structure_mu_ and the write locks of both leaves: SIREAD locks on
  // (old_page, slot) for each moved slot must be transferred to
  // (new_page, slot) — slot numbers travel with their entries — and page
  // locks on old_page must also cover new_page.
  //
  // Reentrancy contract (OLC world): the listener fires from inside
  // Insert with the tree's structure lock and the affected leaf locks
  // held. It must not call back into the tree and may only take locks
  // that come *after* leaf locks in the engine's lock order (SIREAD
  // partition locks, per-xact spinlocks). It must NOT take heap stripes
  // or row locks.
  using SplitListener = std::function<void(
      PageId old_page, PageId new_page, const std::vector<uint32_t>& moved_slots)>;

  // Optimistic read witness: the chain of (node, version) pairs a read
  // operation depended on. Validate() returns true iff none of them has
  // been locked or modified since — i.e. the read's answer is still
  // current. Acquire SIREAD locks BEFORE validating (see file comment).
  struct ReadView {
    std::vector<std::pair<const void*, uint64_t>> nodes;
    void clear() { nodes.clear(); }
  };

  // Hooks a guarded insert runs while it holds every leaf lock of the
  // key's gap (the landing leaf through the leaf holding the key's
  // successor). Lock context: [structure lock,] leaf locks; the hooks
  // may take SIREAD partition locks (which order after leaf locks).
  struct InsertHooks {
    // Gap probe, run BEFORE any modification. probe_pages are the page
    // ids of every locked leaf the gap spans; (next_page, next_slot) is
    // the key's successor entry when has_next. Return false to abandon
    // the insert (tree unchanged). May run more than once: a descent
    // that raced a structural change restarts, and the probe runs again
    // on the retry — it must be idempotent.
    std::function<bool(const std::vector<PageId>& probe_pages, bool has_next,
                       PageId next_page, uint32_t next_slot)>
        probe;
    // Post-insert coverage transfer, run EXACTLY ONCE per successful
    // insert, still under the leaf locks: the new entry landed at
    // (new_page, new_slot); its successor — the granule whose holders'
    // gap coverage must now also reach the new entry — is at
    // (next_page, next_slot). Not called when the key has no successor.
    std::function<void(PageId next_page, uint32_t next_slot, PageId new_page,
                       uint32_t new_slot)>
        transfer;
  };

  // Hooks a guarded erase runs under the same leaf-lock regime.
  struct EraseHooks {
    // Coverage transfer for the erased granule, run while the gap's
    // leaf locks are held: holders of (erased_page, erased_slot) must
    // move onto the key's successor entry (has_next) or stay covered by
    // the landing page (the erased key still routes to erased_page).
    std::function<void(PageId erased_page, uint32_t erased_slot, bool has_next,
                       PageId next_page, uint32_t next_slot)>
        transfer;
    // A fully empty leaf was unlinked from the chain and recycled. Runs
    // under the structure lock and the locks of the dead leaf and its
    // predecessor: page-granule SIREAD coverage of dead_page must be
    // transferred onto prev_page and (when nonzero) next_page, because
    // future inserts' gap probes will no longer visit dead_page.
    std::function<void(PageId dead_page, PageId prev_page, PageId next_page)>
        recycled;
  };

  enum class InsertResult { kInserted, kExists, kAborted };

  // One leaf's worth of scan results (a consistent snapshot of that
  // leaf, witnessed by the accompanying ReadView).
  struct LeafBatch {
    PageId page = 0;
    std::vector<std::string> keys;
    std::vector<TupleId> tids;
    std::vector<uint32_t> slots;
    void clear() {
      page = 0;
      keys.clear();
      tids.clear();
      slots.clear();
    }
  };

  /// With a non-null `epoch`, erased entries and dead nodes retire
  /// through its grace-period limbo instead of the type-stable lists;
  /// see the reclamation notes in the file comment.
  explicit BTree(uint32_t fanout = 64, util::EpochManager* epoch = nullptr);
  ~BTree();
  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  void SetSplitListener(SplitListener fn) { split_listener_ = std::move(fn); }

  /// Inserts key -> tid. Returns false (and fills *page/*slot with the
  /// existing entry's location) if the key is already present.
  /// Thread-safe; equivalent to InsertGuarded with no hooks.
  bool Insert(const std::string& key, TupleId tid, PageId* page,
              uint32_t* slot = nullptr);

  /// Insert with gap-probe / coverage-transfer hooks (see InsertHooks).
  InsertResult InsertGuarded(const std::string& key, TupleId tid, PageId* page,
                             uint32_t* slot, const InsertHooks& hooks);

  /// Returns true and fills outputs if the key exists. `rv` (when given)
  /// witnesses the landing leaf for acquire-then-validate callers.
  bool Lookup(const std::string& key, TupleId* tid, PageId* page,
              uint32_t* slot = nullptr, ReadView* rv = nullptr) const;

  /// Removes the entry for `key` iff it still maps to expected_tid;
  /// returns false otherwise. Runs the erase hooks under the gap's leaf
  /// locks, then — when the leaf became empty — unlinks and recycles it
  /// (EraseHooks::recycled). Surviving entries' (page, slot) granules
  /// stay stable; slot numbers are never reused within a page lifetime.
  bool Erase(const std::string& key, TupleId expected_tid,
             const EraseHooks& hooks = {});

  /// The leaf page where `key` lives or would be inserted. Used for
  /// index-gap (phantom) locking of empty ranges.
  PageId PageFor(const std::string& key, ReadView* rv = nullptr) const;

  /// True iff every node the view witnessed is unlocked and unmodified
  /// since the view was taken. An empty view is trivially valid.
  bool Validate(const ReadView& rv) const;

  /// Fills `out` with the entries of the first leaf at-or-after `lo`
  /// that intersects [lo, hi], hopping (and witnessing) empty leaves.
  /// Returns false when no entry in [lo, hi] remains at-or-after lo; the
  /// ReadView then still witnesses the boundary leaf (the one holding
  /// the range's successor, or the chain tail), so a caller can install
  /// gap coverage and validate that the range end was quiescent.
  bool ScanLeaf(const std::string& lo, const std::string& hi, LeafBatch* out,
                ReadView* rv) const;

  /// In-order scan of [lo, hi] (inclusive). fn returns false to stop
  /// early. Point-in-time consistent per leaf (built on ScanLeaf); for
  /// SIREAD-tracked scans use ScanLeaf directly with the validation
  /// protocol.
  void Scan(const std::string& lo, const std::string& hi,
            const std::function<bool(const std::string& key, TupleId tid,
                                     PageId page, uint32_t slot)>& fn) const;

  /// First entry with key strictly greater than `key` (next-key locking).
  bool NextKey(const std::string& key, std::string* next, TupleId* tid,
               PageId* page, uint32_t* slot, ReadView* rv = nullptr) const;

  size_t size() const { return size_.load(std::memory_order_acquire); }
  size_t LeafCount() const { return leaf_count_.load(std::memory_order_acquire); }

  /// Objects this tree has retired but not freed: the type-stable
  /// retained lists (entries + recycled leaves). Always 0 in epoch mode,
  /// where retirees live in the shared EpochManager limbo (counted by
  /// its RetiredObjectCount) until the grace period frees them for real.
  size_t RetiredObjectCount() const;

  /// Test-only: force the next `n` guarded-insert attempts to restart
  /// after running the probe hook, exercising the restart cleanup path
  /// (lock release, no double allocation, no double transfer).
  void TestForceInsertRestarts(int n) {
    test_force_restarts_.store(n, std::memory_order_release);
  }

 private:
  struct Entry;
  struct Node;
  struct Leaf;
  struct Inner;

  // --- version-word protocol ---
  static uint64_t AwaitStable(const Node* n);
  static bool IsStable(uint64_t v) { return (v & 1) == 0; }
  static bool NodeValid(const Node* n, uint64_t v);
  static bool TryLockFrom(Node* n, uint64_t v);
  // Blocking write lock; returns the pre-lock (stable) version so the
  // caller can release with UnlockUnchanged when it modified nothing.
  static uint64_t LockNode(Node* n);
  static void UnlockBump(Node* n);
  static void UnlockUnchanged(Node* n, uint64_t pre_lock_version);

  Leaf* DescendToLeaf(const std::string& key, uint64_t* version) const;

  static void UnlockAllUnchanged(const std::vector<Leaf*>& locked,
                                 const std::vector<uint64_t>& pre_versions);

  // Entry array editing; the leaf must be write-locked by the caller.
  static void LeafInsertAt(Leaf* l, uint32_t pos, Entry* e);
  static void LeafEraseAt(Leaf* l, uint32_t pos);

  Leaf* AllocLeafLocked();  // structure_mu_ held; returns a LOCKED leaf
  // Splits the (over-full, locked) leaf `l`; the entry just inserted at
  // `pos` determines *out_page. *right_out is the new leaf, still LOCKED.
  void SplitAndInsert(Leaf* l, uint32_t pos, PageId* out_page,
                      Leaf** right_out);
  void InsertIntoParent(Node* left, Entry* sep, Node* right);
  void TryRecycleLeaf(Leaf* l, const EraseHooks& hooks);
  void RemoveChildFromParent(Node* child);
  Leaf* PrevLeafLocked(Leaf* l) const;  // structure_mu_ held
  void RetireEntry(Entry* e);
  void RegisterNode(Node* n);
  // Epoch mode only: unlink a node from all_nodes_ (so destruction does
  // not double-free it) before handing it to the limbo.
  void UnregisterNode(Node* n);
  void RetireNode(Node* n);  // epoch mode: unregister + limbo
  // Typed deleters the limbo invokes after the grace period.
  static void FreeEntryFn(void* p);
  static void FreeLeafFn(void* p);
  static void FreeInnerFn(void* p);

  const uint32_t fanout_;
  const uint32_t leaf_cap_;   // fanout_ + 1 (one transient overflow slot)
  const uint32_t inner_cap_;  // fanout_ + 1 separator slots
  util::EpochManager* const epoch_;  // null = legacy type-stable mode

  std::atomic<Node*> root_;
  std::atomic<uint64_t> next_page_id_{1};
  std::atomic<size_t> size_{0};
  std::atomic<size_t> leaf_count_{1};
  SplitListener split_listener_;

  // Serializes all structural surgery: leaf splits, inner-node edits,
  // empty-leaf unlink/recycle. Ordered BEFORE leaf locks.
  mutable std::mutex structure_mu_;
  // Recycled leaves awaiting reuse (structure_mu_). Legacy mode only:
  // epoch mode frees dead leaves through the limbo instead.
  std::vector<Leaf*> free_leaves_;

  // Every currently allocated node, freed on destruction. Legacy mode
  // never removes a node (type-stable memory: latch-free readers may
  // hold stale pointers); epoch mode unlinks nodes here when they retire
  // to the limbo.
  mutable SpinLock registry_mu_;
  std::vector<Node*> all_nodes_;
  std::vector<Entry*> retired_entries_;  // legacy mode only

  std::atomic<int> test_force_restarts_{0};
};

}  // namespace pgssi
